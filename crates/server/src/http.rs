//! A std-only HTTP/1.1 adapter over [`CmdlService`].
//!
//! No async runtime: a [`std::net::TcpListener`] accept loop hands
//! connections to a fixed pool of worker threads through a *bounded* queue.
//! When the queue is full the accept thread sheds the connection
//! immediately with a `429` + `Overloaded` envelope instead of queueing
//! unboundedly — admission control happens before a worker is ever
//! occupied. Workers speak a minimal HTTP/1.1 with keep-alive and
//! `Content-Length` framing (no chunked encoding; every body is JSON).
//!
//! Endpoints (all bodies JSON, responses are [`ServiceResponse`]
//! envelopes):
//!
//! | Route                   | Request body        | Envelope built            |
//! |-------------------------|---------------------|---------------------------|
//! | `POST /query`           | `DiscoveryQuery`    | `{"Query": …}`            |
//! | `POST /batch`           | `[DiscoveryQuery]`  | `{"QueryBatch": …}`       |
//! | `POST /ingest/table`    | `Table`             | `{"IngestTable": …}`      |
//! | `POST /ingest/document` | `Document`          | `{"IngestDocument": …}`   |
//! | `POST /remove/table`    | `{"name": …}`       | `{"RemoveTable": …}`      |
//! | `POST /remove/document` | `{"index": …}`      | `{"RemoveDocument": …}`   |
//! | `POST /compact`         | (none)              | `"Compact"`               |
//! | `GET /stats`            | (none)              | `"Stats"`                 |
//! | `GET /healthz`          | (none)              | `"Health"`                |
//! | `GET /metrics`          | (none)              | text exposition           |
//! | `POST /lakes/create`    | `{"name", "config"?, "quotas"?}` | `{"CreateLake": …}` |
//! | `POST /lakes/drop`      | `{"name": …}`       | `{"DropLake": …}`         |
//! | `GET /lakes`            | (none)              | `"ListLakes"`             |
//! | `POST /reconfigure`     | `CmdlConfig`        | `{"Reconfigure": …}`      |
//! | `POST /admin/recover`   | (none)              | `"Recover"`               |
//!
//! Every route can be prefixed with `/t/<name>` to address the lake
//! `<name>` in a multi-tenant hub (`POST /t/alpha/query`, ...); the
//! un-prefixed form addresses the
//! [`DEFAULT_TENANT`](crate::tenants::DEFAULT_TENANT) for backward
//! compatibility.
//!
//! The adapter does no interpretation of its own: each route splices the
//! body into the externally-tagged [`ServiceRequest`](crate::api::ServiceRequest)
//! envelope and calls
//! [`TenantHub::handle_json`] — the same bytes-in/bytes-out path the
//! in-process tests exercise, so HTTP cannot drift from the service
//! contract.

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use cmdl_core::ErrorCode;

use crate::api::{http_status, ServiceError, ServiceResponse};
use crate::reactor::parser::ParsedRequest;
use crate::service::{serialize_response, serialize_response_into, CmdlService};
use crate::tenants::{split_tenant, TenantHub};

/// Configuration of the HTTP adapter.
#[derive(Debug, Clone)]
pub struct HttpConfig {
    /// Address to bind (`127.0.0.1:0` picks an ephemeral loopback port).
    pub addr: String,
    /// Fixed number of worker threads.
    pub threads: usize,
    /// Bounded pending-connection queue; connections beyond this are shed
    /// with `429`.
    pub queue_capacity: usize,
    /// Per-connection read timeout (idle keep-alive connections are
    /// released back to the pool when it elapses).
    pub read_timeout: Duration,
}

impl Default for HttpConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            threads: 4,
            queue_capacity: 64,
            read_timeout: Duration::from_secs(10),
        }
    }
}

/// The bounded connection queue the accept loop feeds and workers drain.
struct ConnQueue {
    pending: Mutex<VecDeque<TcpStream>>,
    ready: Condvar,
    capacity: usize,
    shutdown: AtomicBool,
}

impl ConnQueue {
    /// Push a connection; a full queue hands the stream back so the caller
    /// can shed it.
    fn push(&self, stream: TcpStream) -> Result<(), TcpStream> {
        let mut pending = self.pending.lock().unwrap_or_else(|p| p.into_inner());
        if pending.len() >= self.capacity {
            return Err(stream);
        }
        pending.push_back(stream);
        drop(pending);
        self.ready.notify_one();
        Ok(())
    }

    /// Pop a connection, blocking until one arrives or shutdown.
    fn pop(&self) -> Option<TcpStream> {
        let mut pending = self.pending.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if let Some(stream) = pending.pop_front() {
                return Some(stream);
            }
            if self.shutdown.load(Ordering::Acquire) {
                return None;
            }
            pending = self
                .ready
                .wait_timeout(pending, Duration::from_millis(100))
                .unwrap_or_else(|p| p.into_inner())
                .0;
        }
    }
}

/// A running HTTP adapter. Dropping the handle without calling
/// [`shutdown`](HttpHandle::shutdown) leaves the threads running for the
/// process lifetime.
pub struct HttpHandle {
    addr: SocketAddr,
    queue: Arc<ConnQueue>,
    accept_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    hub: Arc<TenantHub>,
}

impl HttpHandle {
    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Graceful shutdown with a 30-second worker-join bound: see
    /// [`shutdown_within`](HttpHandle::shutdown_within).
    pub fn shutdown(self) {
        self.shutdown_within(Duration::from_secs(30));
    }

    /// Gracefully stop serving:
    ///
    /// 1. stop accepting (new connections are refused, already-queued ones
    ///    are still served);
    /// 2. drain in-flight connections — each worker finishes the request it
    ///    is on, answers it with `Connection: close`, and exits instead of
    ///    holding the keep-alive session;
    /// 3. join the workers, bounded by `timeout` (a worker stuck on a
    ///    misbehaving peer is detached rather than hanging shutdown);
    /// 4. flush the writer queue — every still-queued mutation is applied,
    ///    WAL-appended, and fsynced before this returns, so an acknowledged
    ///    mutation can never be lost to process exit.
    ///
    /// Returns `true` when every thread joined within the bound.
    pub fn shutdown_within(mut self, timeout: Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        self.queue.shutdown.store(true, Ordering::Release);
        // Wake the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        self.queue.ready.notify_all();
        if let Some(thread) = self.accept_thread.take() {
            let _ = thread.join();
        }
        let mut all_joined = true;
        for worker in self.workers.drain(..) {
            loop {
                if worker.is_finished() {
                    let _ = worker.join();
                    break;
                }
                if std::time::Instant::now() >= deadline {
                    // Detach the straggler (it exits with the process)
                    // instead of hanging shutdown on a slow peer.
                    all_joined = false;
                    break;
                }
                std::thread::sleep(Duration::from_millis(5));
            }
        }
        // With the workers quiesced, apply whatever mutations are still
        // queued (each appends + fsyncs its WAL record) and publish the
        // final snapshot — for every tenant.
        self.hub.flush_all();
        all_joined
    }
}

/// Bind and serve one [`CmdlService`] over HTTP/1.1 as the default tenant
/// of a single-lake hub — the backward-compatible entry point.
pub fn serve(service: Arc<CmdlService>, config: HttpConfig) -> std::io::Result<HttpHandle> {
    serve_hub(TenantHub::single(service), config)
}

/// Bind and serve a multi-tenant [`TenantHub`] over HTTP/1.1.
pub fn serve_hub(hub: Arc<TenantHub>, config: HttpConfig) -> std::io::Result<HttpHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let queue = Arc::new(ConnQueue {
        pending: Mutex::new(VecDeque::new()),
        ready: Condvar::new(),
        capacity: config.queue_capacity.max(1),
        shutdown: AtomicBool::new(false),
    });

    let mut workers = Vec::with_capacity(config.threads.max(1));
    for _ in 0..config.threads.max(1) {
        let queue = Arc::clone(&queue);
        let hub = Arc::clone(&hub);
        let read_timeout = config.read_timeout;
        workers.push(std::thread::spawn(move || {
            while let Some(stream) = queue.pop() {
                let _ = stream.set_read_timeout(Some(read_timeout));
                // Writes are bounded too: a client that sends requests but
                // never drains responses must not pin a pool worker in
                // write_all forever.
                let _ = stream.set_write_timeout(Some(read_timeout));
                let _ = stream.set_nodelay(true);
                // Panic isolation: a panicking request must cost one
                // connection, not permanently shrink the fixed pool (the
                // service's own locks already recover from poisoning).
                let hub = Arc::clone(&hub);
                let queue = Arc::clone(&queue);
                let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
                    serve_connection(stream, &hub, &queue.shutdown);
                }));
            }
        }));
    }

    let accept_queue = Arc::clone(&queue);
    let accept_hub = Arc::clone(&hub);
    let accept_thread = std::thread::spawn(move || {
        for stream in listener.incoming() {
            if accept_queue.shutdown.load(Ordering::Acquire) {
                break;
            }
            let Ok(stream) = stream else { continue };
            if let Err(rejected) = accept_queue.push(stream) {
                // Admission control: answer 429 from the accept thread and
                // close, instead of queueing unboundedly.
                accept_hub
                    .metrics()
                    .record_transport("shed", Some(ErrorCode::Overloaded));
                shed_connection(rejected);
            }
        }
    });

    Ok(HttpHandle {
        addr,
        queue,
        accept_thread: Some(accept_thread),
        workers,
        hub,
    })
}

/// Serve one connection: HTTP/1.1 requests with keep-alive until the peer
/// closes, asks to close, times out, sends something unframeable, or the
/// adapter starts draining (the current request is still answered, with
/// `Connection: close`).
fn serve_connection(stream: TcpStream, hub: &TenantHub, draining: &AtomicBool) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut writer = write_half;
    let mut reader = BufReader::new(stream);
    // One response buffer per connection, reused across keep-alive
    // requests: the streaming serializer writes every envelope straight
    // into it, so a serving loop in steady state allocates neither a `Json`
    // tree nor a fresh output buffer.
    let mut body = String::new();
    loop {
        if draining.load(Ordering::Acquire) {
            return;
        }
        match read_request(&mut reader, &mut writer) {
            Ok(Some(request)) => {
                body.clear();
                let (status, content_type) = route(hub, &request, &mut body);
                // Re-check after routing: a shutdown that began while this
                // request executed still gets its response, but the
                // keep-alive session ends here.
                let keep_alive = request.keep_alive && !draining.load(Ordering::Acquire);
                if write_response(
                    &mut writer,
                    status,
                    content_type,
                    body.as_bytes(),
                    keep_alive,
                )
                .is_err()
                    || !keep_alive
                {
                    return;
                }
                // One oversized response (e.g. a huge /batch) must not pin
                // its peak capacity on this pool worker for the rest of the
                // keep-alive connection.
                if body.capacity() > MAX_RETAINED_BODY_BYTES {
                    body.shrink_to(MAX_RETAINED_BODY_BYTES);
                }
            }
            Ok(None) => return, // clean EOF between requests
            Err(_) => return,   // timeout or malformed framing
        }
    }
}

/// The largest accepted start line / header line. Framing reads are
/// bounded so a peer streaming bytes without newlines cannot grow memory
/// past this (the body has its own cap, enforced against
/// `Content-Length`). Shared with the reactor's resumable parser so both
/// transports enforce identical framing limits.
pub const MAX_LINE_BYTES: u64 = 8 * 1024;

/// Maximum headers per request.
pub const MAX_HEADERS: usize = 100;

/// Cap on `Content-Length` bodies — far beyond any legitimate ingest
/// payload.
pub const MAX_BODY_BYTES: usize = 64 * 1024 * 1024;

/// Largest response-buffer capacity a keep-alive connection retains
/// between requests.
pub const MAX_RETAINED_BODY_BYTES: usize = 1024 * 1024;

/// `read_line` bounded to [`MAX_LINE_BYTES`]: a line that hits the cap
/// without a newline is an error, not an ever-growing buffer.
fn read_line_bounded<R: BufRead>(reader: &mut R, line: &mut String) -> std::io::Result<usize> {
    let read = reader.take(MAX_LINE_BYTES).read_line(line)?;
    if read as u64 >= MAX_LINE_BYTES && !line.ends_with('\n') {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "line too long",
        ));
    }
    Ok(read)
}

/// Read one request (start line, headers, `Content-Length` body). `Ok(None)`
/// is a clean EOF before a start line. `writer` is needed for the
/// `Expect: 100-continue` handshake (curl sends it for bodies over ~1 KiB
/// and stalls ~1 s if nobody answers).
///
/// Public (and generic over the stream halves) because this one-shot
/// blocking parser is the *reference semantics* for the reactor's
/// resumable [`RequestParser`](crate::reactor::parser::RequestParser):
/// the parser-parity property tests feed identical bytes to both and
/// require identical outcomes.
pub fn read_request<R: BufRead, W: Write>(
    reader: &mut R,
    writer: &mut W,
) -> std::io::Result<Option<ParsedRequest>> {
    let mut line = String::new();
    if read_line_bounded(reader, &mut line)? == 0 {
        return Ok(None);
    }
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or_default().to_string();
    let path = parts.next().unwrap_or_default().to_string();
    let version = parts.next().unwrap_or("HTTP/1.1").to_string();
    if method.is_empty() || path.is_empty() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "malformed start line",
        ));
    }

    let mut content_length = 0usize;
    // HTTP/1.1 defaults to keep-alive; HTTP/1.0 to close.
    let mut keep_alive = version != "HTTP/1.0";
    let mut expect_continue = false;
    let mut unsupported_encoding = false;
    for header_count in 0.. {
        if header_count > MAX_HEADERS {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "too many headers",
            ));
        }
        let mut header = String::new();
        if read_line_bounded(reader, &mut header)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "EOF inside headers",
            ));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            let value = value.trim();
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.parse().map_err(|_| {
                    std::io::Error::new(std::io::ErrorKind::InvalidData, "bad content-length")
                })?;
            } else if name.eq_ignore_ascii_case("connection") {
                keep_alive = !value.eq_ignore_ascii_case("close");
            } else if name.eq_ignore_ascii_case("expect") {
                expect_continue = value.eq_ignore_ascii_case("100-continue");
            } else if name.eq_ignore_ascii_case("transfer-encoding") {
                unsupported_encoding = true;
            }
        }
    }
    if unsupported_encoding {
        // Do not attempt to read the chunked payload; the caller answers
        // 400 and closes before the unread bytes can be misparsed as the
        // next request.
        return Ok(Some(ParsedRequest {
            method,
            path,
            body: Vec::new(),
            keep_alive: false,
            unsupported_encoding: true,
        }));
    }

    if content_length > MAX_BODY_BYTES {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "body too large",
        ));
    }
    if expect_continue && content_length > 0 {
        writer.write_all(b"HTTP/1.1 100 Continue\r\n\r\n")?;
        writer.flush()?;
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(Some(ParsedRequest {
        method,
        path,
        body,
        keep_alive,
        unsupported_encoding: false,
    }))
}

/// The externally-tagged [`ServiceRequest`](crate::api::ServiceRequest)
/// envelope a route splices its body into, or `None` when no endpoint
/// matches the method + path. Public so alternate transports — and the
/// smoke test's in-process fallback — reuse the exact same table instead
/// of copying it (copies could drift from the adapter).
pub fn route_envelope(method: &str, path: &str, body: &str) -> Option<String> {
    Some(match (method, path) {
        ("POST", "/query") => format!("{{\"Query\":{body}}}"),
        ("POST", "/batch") => format!("{{\"QueryBatch\":{body}}}"),
        ("POST", "/ingest/table") => format!("{{\"IngestTable\":{body}}}"),
        ("POST", "/ingest/document") => format!("{{\"IngestDocument\":{body}}}"),
        ("POST", "/remove/table") => format!("{{\"RemoveTable\":{body}}}"),
        ("POST", "/remove/document") => format!("{{\"RemoveDocument\":{body}}}"),
        ("POST", "/compact") => "\"Compact\"".to_string(),
        ("GET", "/stats") => "\"Stats\"".to_string(),
        ("GET", "/healthz") => "\"Health\"".to_string(),
        ("POST", "/lakes/create") => format!("{{\"CreateLake\":{body}}}"),
        ("POST", "/lakes/drop") => format!("{{\"DropLake\":{body}}}"),
        ("GET", "/lakes") => "\"ListLakes\"".to_string(),
        ("POST", "/reconfigure") => format!("{{\"Reconfigure\":{body}}}"),
        ("POST", "/admin/recover") => "\"Recover\"".to_string(),
        _ => return None,
    })
}

/// Route a request: split the tenant prefix off the path, splice the body
/// into the envelope, and run it through the hub's JSON path, streaming
/// the response into the connection's reusable `out` buffer. Returns
/// (status, content-type). Every outcome — including the transport-level
/// ones that never reach a handler — is recorded in the hub's global
/// metrics, so the labeled request counters always sum to the total.
fn route(hub: &TenantHub, request: &ParsedRequest, out: &mut String) -> (u16, &'static str) {
    if request.unsupported_encoding {
        let response = ServiceResponse::failure(ServiceError::with_subject(
            ErrorCode::MalformedRequest,
            "transfer-encoding is not supported; frame bodies with content-length",
        ));
        hub.metrics()
            .record_transport("malformed", Some(ErrorCode::MalformedRequest));
        serialize_response_into(&response, out);
        return (400, "application/json");
    }
    let (tenant, path) = split_tenant(&request.path);
    if (request.method.as_str(), path) == ("GET", "/metrics") {
        // The exposition is hub-wide (global + every tenant's labeled
        // series) regardless of any tenant prefix on the scrape path.
        out.push_str(&hub.render_metrics());
        hub.metrics().record_transport("metrics", None);
        return (200, "text/plain; version=0.0.4");
    }
    let body = String::from_utf8_lossy(&request.body);
    let Some(envelope) = route_envelope(&request.method, path, &body) else {
        let response = ServiceResponse::failure(ServiceError::with_subject(
            ErrorCode::UnknownRoute,
            format!("{} {}", request.method, request.path),
        ));
        hub.metrics()
            .record_transport("unknown_route", Some(ErrorCode::UnknownRoute));
        let status = http_status(ErrorCode::UnknownRoute);
        serialize_response_into(&response, out);
        return (status, "application/json");
    };
    let response = hub.handle_json(tenant, envelope.as_bytes());
    let status = response.error_code().map(http_status).unwrap_or(200);
    serialize_response_into(&response, out);
    (status, "application/json")
}

/// Compose the status line + headers for one framed response. Shared by
/// both transports so reactor responses are byte-identical to thread-pool
/// responses.
pub fn format_response_head(
    status: u16,
    content_type: &str,
    body_len: usize,
    keep_alive: bool,
) -> String {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        409 => "Conflict",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        _ => "Internal Server Error",
    };
    let connection = if keep_alive { "keep-alive" } else { "close" };
    format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {body_len}\r\nConnection: {connection}\r\n\r\n",
    )
}

/// Write one framed response.
fn write_response(
    writer: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
) -> std::io::Result<()> {
    let head = format_response_head(status, content_type, body.len(), keep_alive);
    writer.write_all(head.as_bytes())?;
    writer.write_all(body)?;
    writer.flush()
}

/// The response written to a shed connection (admission control).
fn shed_connection(mut stream: TcpStream) {
    let response = ServiceResponse::failure(ServiceError::with_subject(
        ErrorCode::Overloaded,
        "request queue full",
    ));
    let body = serialize_response(&response);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let _ = stream.set_write_timeout(Some(Duration::from_millis(50)));
    if write_response(&mut stream, 429, "application/json", &body, false).is_ok() {
        // Half-close and drain the in-flight request bytes: closing with
        // unread data in the receive buffer would turn into a TCP RST
        // that can destroy the 429 before the client reads it. This runs
        // on the accept thread, so the drain is strictly bounded (≤ 4
        // reads × 50 ms); an honest client's request is already buffered
        // and drains in one immediate read.
        let _ = stream.shutdown(std::net::Shutdown::Write);
        let mut sink = [0u8; 4096];
        for _ in 0..4 {
            match stream.read(&mut sink) {
                Ok(0) | Err(_) => break,
                Ok(_) => {}
            }
        }
    }
}
