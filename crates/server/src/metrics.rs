//! Service counters and latency tracking, rendered in a Prometheus-style
//! text format by [`ServiceMetrics::render`].
//!
//! Everything is lock-free (`AtomicU64`): requests and errors are counted
//! per kind/code, and request latencies land in a fixed log₂-bucketed
//! histogram from which p50/p99 are estimated at scrape time. The snapshot
//! generation and delta pressure are *not* stored here — they are read from
//! the published snapshot at render time so `/metrics` is always current.

use std::sync::atomic::{AtomicU64, Ordering};

use cmdl_core::ErrorCode;

/// Number of log₂ latency buckets: bucket `i` holds latencies in
/// `[2^i, 2^(i+1))` microseconds, with the last bucket open-ended
/// (≥ ~34 seconds — effectively "timeout").
const LATENCY_BUCKETS: usize = 36;

/// Request kinds tracked per-counter: the `ServiceRequest::kind` values
/// plus the transport-level pseudo-kinds — `malformed` (unparseable or
/// unframeable request), `shed` (admission control), `unknown_route`, and
/// `metrics` scrapes — so the labeled counters always sum to
/// `cmdl_requests_total`.
const KINDS: [&str; 13] = [
    "query",
    "query_batch",
    "ingest_table",
    "ingest_document",
    "remove_table",
    "remove_document",
    "compact",
    "stats",
    "health",
    "malformed",
    "shed",
    "unknown_route",
    "metrics",
];

/// Lock-free service counters.
#[derive(Debug)]
pub struct ServiceMetrics {
    requests_total: AtomicU64,
    requests_by_kind: [AtomicU64; KINDS.len()],
    errors_total: AtomicU64,
    errors_by_code: [AtomicU64; ErrorCode::ALL.len()],
    shed_total: AtomicU64,
    latency: [AtomicU64; LATENCY_BUCKETS],
}

impl Default for ServiceMetrics {
    fn default() -> Self {
        Self {
            requests_total: AtomicU64::new(0),
            requests_by_kind: std::array::from_fn(|_| AtomicU64::new(0)),
            errors_total: AtomicU64::new(0),
            errors_by_code: std::array::from_fn(|_| AtomicU64::new(0)),
            shed_total: AtomicU64::new(0),
            latency: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl ServiceMetrics {
    /// Record one handled request: its kind, latency, and error code (if it
    /// failed).
    pub fn record(&self, kind: &str, elapsed_micros: u64, error: Option<ErrorCode>) {
        self.count(kind, error);
        let bucket =
            (64 - elapsed_micros.max(1).leading_zeros() as usize - 1).min(LATENCY_BUCKETS - 1);
        self.latency[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Record a transport-level pseudo-request (metrics scrape, shed
    /// connection, unroutable or unframeable request). Counted, but kept
    /// *out* of the latency histogram — near-zero transport samples would
    /// otherwise drag the exported p50/p99 down to nothing on a
    /// low-traffic service.
    pub fn record_transport(&self, kind: &str, error: Option<ErrorCode>) {
        self.count(kind, error);
    }

    fn count(&self, kind: &str, error: Option<ErrorCode>) {
        self.requests_total.fetch_add(1, Ordering::Relaxed);
        if let Some(i) = KINDS.iter().position(|k| *k == kind) {
            self.requests_by_kind[i].fetch_add(1, Ordering::Relaxed);
        }
        if let Some(code) = error {
            self.errors_total.fetch_add(1, Ordering::Relaxed);
            self.errors_by_code[code.index()].fetch_add(1, Ordering::Relaxed);
            if code == ErrorCode::Overloaded {
                self.shed_total.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Total requests handled.
    pub fn requests_total(&self) -> u64 {
        self.requests_total.load(Ordering::Relaxed)
    }

    /// Total failed requests.
    pub fn errors_total(&self) -> u64 {
        self.errors_total.load(Ordering::Relaxed)
    }

    /// Requests shed under admission control.
    pub fn shed_total(&self) -> u64 {
        self.shed_total.load(Ordering::Relaxed)
    }

    /// Estimate a latency quantile (0.0..=1.0) from the histogram, in
    /// microseconds. Returns the *upper edge* of the bucket the quantile
    /// falls in (a conservative estimate); 0 when nothing was recorded.
    pub fn latency_quantile_micros(&self, quantile: f64) -> u64 {
        let counts: Vec<u64> = self
            .latency
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((total as f64) * quantile.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, count) in counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return 1u64 << (i + 1);
            }
        }
        1u64 << LATENCY_BUCKETS
    }

    /// Render the text exposition: counters, per-code errors, latency
    /// quantiles, plus the caller-supplied snapshot gauges.
    ///
    /// The request and error counters are emitted *only* in labeled form —
    /// the per-kind/per-code series sum exactly to the totals, and mixing
    /// a bare series under the same name would double-count in any
    /// label-aggregating query.
    pub fn render(&self, generation: u64, delta_pressure: f64) -> String {
        let mut out = String::with_capacity(1024);
        for (i, kind) in KINDS.iter().enumerate() {
            out.push_str(&format!(
                "cmdl_requests_total{{kind=\"{kind}\"}} {}\n",
                self.requests_by_kind[i].load(Ordering::Relaxed)
            ));
        }
        for code in ErrorCode::ALL {
            out.push_str(&format!(
                "cmdl_errors_total{{code=\"{}\"}} {}\n",
                code.as_str(),
                self.errors_by_code[code.index()].load(Ordering::Relaxed)
            ));
        }
        out.push_str(&format!("cmdl_shed_total {}\n", self.shed_total()));
        out.push_str(&format!(
            "cmdl_latency_p50_micros {}\n",
            self.latency_quantile_micros(0.50)
        ));
        out.push_str(&format!(
            "cmdl_latency_p99_micros {}\n",
            self.latency_quantile_micros(0.99)
        ));
        out.push_str(&format!("cmdl_snapshot_generation {generation}\n"));
        out.push_str(&format!("cmdl_delta_pressure {delta_pressure}\n"));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_renders_counters() {
        let metrics = ServiceMetrics::default();
        metrics.record("query", 100, None);
        metrics.record("query", 200, None);
        metrics.record("remove_table", 50, Some(ErrorCode::UnknownTable));
        metrics.record("query", 10, Some(ErrorCode::Overloaded));
        metrics.record_transport("malformed", Some(ErrorCode::MalformedRequest));
        metrics.record_transport("shed", Some(ErrorCode::Overloaded));
        assert_eq!(metrics.requests_total(), 6);
        assert_eq!(metrics.errors_total(), 4);
        assert_eq!(metrics.shed_total(), 2);
        // Every recorded kind has a label, so the labeled counters sum to
        // the total.
        let by_kind: u64 = metrics
            .requests_by_kind
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum();
        assert_eq!(by_kind, metrics.requests_total());
        let text = metrics.render(7, 0.125);
        // Only labeled request/error series are exposed (a bare series
        // under the same name would double-count in label aggregations).
        for line in text.lines() {
            for name in ["cmdl_requests_total", "cmdl_errors_total"] {
                if let Some(rest) = line.strip_prefix(name) {
                    assert!(rest.starts_with('{'), "bare series leaked: {line}");
                }
            }
        }
        assert!(text.contains("cmdl_requests_total{kind=\"query\"} 3"));
        assert!(text.contains("cmdl_requests_total{kind=\"malformed\"} 1"));
        assert!(text.contains("cmdl_requests_total{kind=\"shed\"} 1"));
        assert!(text.contains("cmdl_errors_total{code=\"unknown_table\"} 1"));
        assert!(text.contains("cmdl_errors_total{code=\"overloaded\"} 2"));
        assert!(text.contains("cmdl_snapshot_generation 7"));
        assert!(text.contains("cmdl_delta_pressure 0.125"));
    }

    #[test]
    fn quantiles_are_ordered_and_bucketed() {
        let metrics = ServiceMetrics::default();
        assert_eq!(metrics.latency_quantile_micros(0.5), 0);
        for _ in 0..99 {
            metrics.record("query", 100, None); // bucket [64, 128)
        }
        metrics.record("query", 1_000_000, None); // ~1s outlier
        let p50 = metrics.latency_quantile_micros(0.50);
        let p99 = metrics.latency_quantile_micros(0.99);
        let p100 = metrics.latency_quantile_micros(1.0);
        assert_eq!(p50, 128, "p50 reports the [64,128) bucket's upper edge");
        assert!(p50 <= p99 && p99 <= p100);
        assert!(p100 >= 1_048_576, "the outlier lands in a >=2^20 bucket");
    }
}
