//! Service counters and latency tracking, rendered in a Prometheus-style
//! text format by [`ServiceMetrics::render`].
//!
//! Everything is lock-free (`AtomicU64`): requests and errors are counted
//! per kind/code, and request latencies land in a fixed log₂-bucketed
//! histogram from which p50/p99 are estimated at scrape time. The snapshot
//! generation and delta pressure are *not* stored here — they are read from
//! the published snapshot at render time so `/metrics` is always current.

use std::sync::atomic::{AtomicU64, Ordering};

use cmdl_core::{ErrorCode, ReplicaStatus};

/// Number of log₂ latency buckets: bucket `i` holds latencies in
/// `[2^i, 2^(i+1))` microseconds, with the last bucket open-ended
/// (≥ ~34 seconds — effectively "timeout").
const LATENCY_BUCKETS: usize = 36;

/// Request kinds tracked per-counter: the `ServiceRequest::kind` values
/// plus the transport-level pseudo-kinds — `malformed` (unparseable or
/// unframeable request), `shed` (admission control), `unknown_route`, and
/// `metrics` scrapes — so the labeled counters always sum to
/// `cmdl_requests_total`.
const KINDS: [&str; 18] = [
    "query",
    "query_batch",
    "ingest_table",
    "ingest_document",
    "remove_table",
    "remove_document",
    "compact",
    "stats",
    "health",
    "malformed",
    "shed",
    "unknown_route",
    "metrics",
    "create_lake",
    "drop_lake",
    "list_lakes",
    "reconfigure",
    "recover",
];

/// Number of log₂ coalesced-batch-size buckets: bucket `i` counts batches
/// of size in `[2^i, 2^(i+1))`, with the last bucket open-ended (≥ 2048
/// queries in one tick).
const COALESCE_BUCKETS: usize = 12;

/// Lock-free service counters.
#[derive(Debug)]
pub struct ServiceMetrics {
    requests_total: AtomicU64,
    requests_by_kind: [AtomicU64; KINDS.len()],
    errors_total: AtomicU64,
    errors_by_code: [AtomicU64; ErrorCode::ALL.len()],
    shed_total: AtomicU64,
    latency: [AtomicU64; LATENCY_BUCKETS],
    /// Reactor gauge: currently open reactor connections.
    reactor_connections: AtomicU64,
    /// Reactor counter: connections reaped by a deadline (slow-loris read
    /// deadline, write deadline, or idle timeout).
    reactor_reaped: AtomicU64,
    /// Histogram of coalesced `/query` batch sizes (one sample per
    /// `execute_coalesced` call).
    coalesce_batches: [AtomicU64; COALESCE_BUCKETS],
    /// Sum of all coalesced batch sizes (the histogram `_sum`).
    coalesce_queries: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    cache_evicted: AtomicU64,
    cache_invalidated: AtomicU64,
}

impl Default for ServiceMetrics {
    fn default() -> Self {
        Self {
            requests_total: AtomicU64::new(0),
            requests_by_kind: std::array::from_fn(|_| AtomicU64::new(0)),
            errors_total: AtomicU64::new(0),
            errors_by_code: std::array::from_fn(|_| AtomicU64::new(0)),
            shed_total: AtomicU64::new(0),
            latency: std::array::from_fn(|_| AtomicU64::new(0)),
            reactor_connections: AtomicU64::new(0),
            reactor_reaped: AtomicU64::new(0),
            coalesce_batches: std::array::from_fn(|_| AtomicU64::new(0)),
            coalesce_queries: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            cache_evicted: AtomicU64::new(0),
            cache_invalidated: AtomicU64::new(0),
        }
    }
}

impl ServiceMetrics {
    /// Record one handled request: its kind, latency, and error code (if it
    /// failed).
    pub fn record(&self, kind: &str, elapsed_micros: u64, error: Option<ErrorCode>) {
        self.count(kind, error);
        let bucket =
            (64 - elapsed_micros.max(1).leading_zeros() as usize - 1).min(LATENCY_BUCKETS - 1);
        self.latency[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Record a transport-level pseudo-request (metrics scrape, shed
    /// connection, unroutable or unframeable request). Counted, but kept
    /// *out* of the latency histogram — near-zero transport samples would
    /// otherwise drag the exported p50/p99 down to nothing on a
    /// low-traffic service.
    pub fn record_transport(&self, kind: &str, error: Option<ErrorCode>) {
        self.count(kind, error);
    }

    fn count(&self, kind: &str, error: Option<ErrorCode>) {
        self.requests_total.fetch_add(1, Ordering::Relaxed);
        if let Some(i) = KINDS.iter().position(|k| *k == kind) {
            self.requests_by_kind[i].fetch_add(1, Ordering::Relaxed);
        }
        if let Some(code) = error {
            self.errors_total.fetch_add(1, Ordering::Relaxed);
            self.errors_by_code[code.index()].fetch_add(1, Ordering::Relaxed);
            if code == ErrorCode::Overloaded {
                self.shed_total.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Total requests handled.
    pub fn requests_total(&self) -> u64 {
        self.requests_total.load(Ordering::Relaxed)
    }

    /// Total failed requests.
    pub fn errors_total(&self) -> u64 {
        self.errors_total.load(Ordering::Relaxed)
    }

    /// Requests shed under admission control.
    pub fn shed_total(&self) -> u64 {
        self.shed_total.load(Ordering::Relaxed)
    }

    /// A reactor connection was accepted and registered.
    pub fn reactor_conn_opened(&self) {
        self.reactor_connections.fetch_add(1, Ordering::Relaxed);
    }

    /// A reactor connection was closed (any reason).
    pub fn reactor_conn_closed(&self) {
        self.reactor_connections.fetch_sub(1, Ordering::Relaxed);
    }

    /// Currently open reactor connections.
    pub fn reactor_connections(&self) -> u64 {
        self.reactor_connections.load(Ordering::Relaxed)
    }

    /// A reactor connection was reaped by a deadline (slow-loris read
    /// deadline, write deadline, or idle timeout).
    pub fn reactor_conn_reaped(&self) {
        self.reactor_reaped.fetch_add(1, Ordering::Relaxed);
    }

    /// Total reactor connections reaped by deadlines.
    pub fn reactor_reaped_total(&self) -> u64 {
        self.reactor_reaped.load(Ordering::Relaxed)
    }

    /// Record one coalesced `/query` batch of `size` queries.
    pub fn record_coalesce(&self, size: usize) {
        let bucket =
            (64 - (size.max(1) as u64).leading_zeros() as usize - 1).min(COALESCE_BUCKETS - 1);
        self.coalesce_batches[bucket].fetch_add(1, Ordering::Relaxed);
        self.coalesce_queries
            .fetch_add(size as u64, Ordering::Relaxed);
    }

    /// Total coalesced batches recorded (the histogram `_count`).
    pub fn coalesce_batches_total(&self) -> u64 {
        self.coalesce_batches
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// Total queries that went through coalesced batches (the histogram
    /// `_sum`).
    pub fn coalesce_queries_total(&self) -> u64 {
        self.coalesce_queries.load(Ordering::Relaxed)
    }

    /// A result-cache hit.
    pub fn record_cache_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// A result-cache miss.
    pub fn record_cache_miss(&self) {
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// `n` entries evicted under the cache's entry/byte budget.
    pub fn record_cache_evicted(&self, n: usize) {
        self.cache_evicted.fetch_add(n as u64, Ordering::Relaxed);
    }

    /// `n` entries dropped wholesale on a generation publish.
    pub fn record_cache_invalidated(&self, n: usize) {
        self.cache_invalidated
            .fetch_add(n as u64, Ordering::Relaxed);
    }

    /// Total result-cache hits.
    pub fn cache_hits_total(&self) -> u64 {
        self.cache_hits.load(Ordering::Relaxed)
    }

    /// Total result-cache misses.
    pub fn cache_misses_total(&self) -> u64 {
        self.cache_misses.load(Ordering::Relaxed)
    }

    /// Total entries evicted under the cache budget.
    pub fn cache_evicted_total(&self) -> u64 {
        self.cache_evicted.load(Ordering::Relaxed)
    }

    /// Total entries invalidated by generation publishes.
    pub fn cache_invalidated_total(&self) -> u64 {
        self.cache_invalidated.load(Ordering::Relaxed)
    }

    /// Estimate a latency quantile (0.0..=1.0) from the histogram, in
    /// microseconds. Returns the *upper edge* of the bucket the quantile
    /// falls in (a conservative estimate); 0 when nothing was recorded.
    pub fn latency_quantile_micros(&self, quantile: f64) -> u64 {
        let counts: Vec<u64> = self
            .latency
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((total as f64) * quantile.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, count) in counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return 1u64 << (i + 1);
            }
        }
        1u64 << LATENCY_BUCKETS
    }

    /// Render the text exposition: counters, per-code errors, latency
    /// quantiles, plus the caller-supplied snapshot gauges.
    ///
    /// The request and error counters are emitted *only* in labeled form —
    /// the per-kind/per-code series sum exactly to the totals, and mixing
    /// a bare series under the same name would double-count in any
    /// label-aggregating query.
    pub fn render(&self, generation: u64, delta_pressure: f64) -> String {
        let mut out = String::with_capacity(1024);
        for (i, kind) in KINDS.iter().enumerate() {
            out.push_str(&format!(
                "cmdl_requests_total{{kind=\"{kind}\"}} {}\n",
                self.requests_by_kind[i].load(Ordering::Relaxed)
            ));
        }
        for code in ErrorCode::ALL {
            out.push_str(&format!(
                "cmdl_errors_total{{code=\"{}\"}} {}\n",
                code.as_str(),
                self.errors_by_code[code.index()].load(Ordering::Relaxed)
            ));
        }
        out.push_str(&format!("cmdl_shed_total {}\n", self.shed_total()));
        out.push_str(&format!(
            "cmdl_latency_p50_micros {}\n",
            self.latency_quantile_micros(0.50)
        ));
        out.push_str(&format!(
            "cmdl_latency_p99_micros {}\n",
            self.latency_quantile_micros(0.99)
        ));
        out.push_str(&format!("cmdl_snapshot_generation {generation}\n"));
        out.push_str(&format!("cmdl_delta_pressure {delta_pressure}\n"));
        // Reactor transport series (all zero when the thread-pool adapter
        // serves alone — emitting them unconditionally keeps scrapes
        // schema-stable across transports).
        out.push_str(&format!(
            "cmdl_reactor_open_connections {}\n",
            self.reactor_connections()
        ));
        out.push_str(&format!(
            "cmdl_reactor_reaped_total {}\n",
            self.reactor_reaped_total()
        ));
        let mut cumulative = 0u64;
        for (i, bucket) in self.coalesce_batches.iter().enumerate() {
            cumulative += bucket.load(Ordering::Relaxed);
            // Bucket `i` holds integer batch sizes in [2^i, 2^(i+1)), so its
            // inclusive upper bound is 2^(i+1)-1; the last bucket is +Inf.
            if i + 1 == COALESCE_BUCKETS {
                out.push_str(&format!(
                    "cmdl_coalesce_batch_size_bucket{{le=\"+Inf\"}} {cumulative}\n"
                ));
            } else {
                out.push_str(&format!(
                    "cmdl_coalesce_batch_size_bucket{{le=\"{}\"}} {cumulative}\n",
                    (1u64 << (i + 1)) - 1
                ));
            }
        }
        out.push_str(&format!(
            "cmdl_coalesce_batch_size_sum {}\n",
            self.coalesce_queries_total()
        ));
        out.push_str(&format!(
            "cmdl_coalesce_batch_size_count {}\n",
            self.coalesce_batches_total()
        ));
        out.push_str(&format!(
            "cmdl_cache_hits_total {}\n",
            self.cache_hits_total()
        ));
        out.push_str(&format!(
            "cmdl_cache_misses_total {}\n",
            self.cache_misses_total()
        ));
        out.push_str(&format!(
            "cmdl_cache_evicted_total {}\n",
            self.cache_evicted_total()
        ));
        out.push_str(&format!(
            "cmdl_cache_invalidated_total {}\n",
            self.cache_invalidated_total()
        ));
        out
    }

    /// Render this counter set as one tenant's `tenant`-labeled series —
    /// the per-tenant half of the hub exposition. The metric names are
    /// distinct from the un-labeled globals (`cmdl_tenant_*` vs `cmdl_*`),
    /// so dashboards aggregating the existing names never double-count,
    /// and a label-aggregation over `cmdl_tenant_requests_total` sums to
    /// each tenant's own traffic.
    pub fn render_tenant(&self, tenant: &str) -> String {
        let mut out = String::with_capacity(1024);
        for (i, kind) in KINDS.iter().enumerate() {
            out.push_str(&format!(
                "cmdl_tenant_requests_total{{tenant=\"{tenant}\",kind=\"{kind}\"}} {}\n",
                self.requests_by_kind[i].load(Ordering::Relaxed)
            ));
        }
        for code in ErrorCode::ALL {
            out.push_str(&format!(
                "cmdl_tenant_errors_total{{tenant=\"{tenant}\",code=\"{}\"}} {}\n",
                code.as_str(),
                self.errors_by_code[code.index()].load(Ordering::Relaxed)
            ));
        }
        out.push_str(&format!(
            "cmdl_tenant_latency_p50_micros{{tenant=\"{tenant}\"}} {}\n",
            self.latency_quantile_micros(0.50)
        ));
        out.push_str(&format!(
            "cmdl_tenant_latency_p99_micros{{tenant=\"{tenant}\"}} {}\n",
            self.latency_quantile_micros(0.99)
        ));
        out
    }
}

/// Append the per-replica series for one replica set to an exposition
/// buffer. With `tenant` set the names gain the `cmdl_tenant_` prefix and
/// the `tenant` label (mirroring [`ServiceMetrics::render_tenant`], so
/// replica series from different lakes in one hub never collide); bare
/// `cmdl_replica_*` otherwise. Emits nothing for an empty set, so the
/// single and sharded backends' expositions are byte-identical to before
/// replication existed.
pub fn render_replica_series(out: &mut String, statuses: &[ReplicaStatus], tenant: Option<&str>) {
    let prefix = if tenant.is_some() {
        "cmdl_tenant_replica"
    } else {
        "cmdl_replica"
    };
    for status in statuses {
        let labels = match tenant {
            Some(tenant) => format!("tenant=\"{tenant}\",replica=\"{}\"", status.name),
            None => format!("replica=\"{}\"", status.name),
        };
        out.push_str(&format!(
            "{prefix}_generation{{{labels}}} {}\n",
            status.generation
        ));
        out.push_str(&format!(
            "{prefix}_lag_generations{{{labels}}} {}\n",
            status.lag
        ));
        out.push_str(&format!(
            "{prefix}_applied_batches_total{{{labels}}} {}\n",
            status.applied_batches
        ));
        out.push_str(&format!(
            "{prefix}_resyncs_total{{{labels}}} {}\n",
            status.resyncs
        ));
        // The state label makes dashboards readable; the gauge value (0-4,
        // see `ReplicaHealth::gauge`) makes alerts thresholdable.
        out.push_str(&format!(
            "{prefix}_health_state{{{labels},health=\"{}\"}} {}\n",
            status.health,
            status.health_gauge()
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_renders_counters() {
        let metrics = ServiceMetrics::default();
        metrics.record("query", 100, None);
        metrics.record("query", 200, None);
        metrics.record("remove_table", 50, Some(ErrorCode::UnknownTable));
        metrics.record("query", 10, Some(ErrorCode::Overloaded));
        metrics.record_transport("malformed", Some(ErrorCode::MalformedRequest));
        metrics.record_transport("shed", Some(ErrorCode::Overloaded));
        assert_eq!(metrics.requests_total(), 6);
        assert_eq!(metrics.errors_total(), 4);
        assert_eq!(metrics.shed_total(), 2);
        // Every recorded kind has a label, so the labeled counters sum to
        // the total.
        let by_kind: u64 = metrics
            .requests_by_kind
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum();
        assert_eq!(by_kind, metrics.requests_total());
        let text = metrics.render(7, 0.125);
        // Only labeled request/error series are exposed (a bare series
        // under the same name would double-count in label aggregations).
        for line in text.lines() {
            for name in ["cmdl_requests_total", "cmdl_errors_total"] {
                if let Some(rest) = line.strip_prefix(name) {
                    assert!(rest.starts_with('{'), "bare series leaked: {line}");
                }
            }
        }
        assert!(text.contains("cmdl_requests_total{kind=\"query\"} 3"));
        assert!(text.contains("cmdl_requests_total{kind=\"malformed\"} 1"));
        assert!(text.contains("cmdl_requests_total{kind=\"shed\"} 1"));
        assert!(text.contains("cmdl_errors_total{code=\"unknown_table\"} 1"));
        assert!(text.contains("cmdl_errors_total{code=\"overloaded\"} 2"));
        assert!(text.contains("cmdl_snapshot_generation 7"));
        assert!(text.contains("cmdl_delta_pressure 0.125"));
    }

    #[test]
    fn tenant_series_carry_the_label_and_stay_off_the_global_names() {
        let metrics = ServiceMetrics::default();
        metrics.record("query", 100, None);
        metrics.record("ingest_table", 50, Some(ErrorCode::QuotaExceeded));
        metrics.record("reconfigure", 900, None);
        let text = metrics.render_tenant("alpha");
        assert!(text.contains("cmdl_tenant_requests_total{tenant=\"alpha\",kind=\"query\"} 1"));
        assert!(
            text.contains("cmdl_tenant_requests_total{tenant=\"alpha\",kind=\"ingest_table\"} 1")
        );
        assert!(
            text.contains("cmdl_tenant_requests_total{tenant=\"alpha\",kind=\"reconfigure\"} 1")
        );
        assert!(
            text.contains("cmdl_tenant_errors_total{tenant=\"alpha\",code=\"quota_exceeded\"} 1")
        );
        assert!(text.contains("cmdl_tenant_latency_p50_micros{tenant=\"alpha\"}"));
        assert!(text.contains("cmdl_tenant_latency_p99_micros{tenant=\"alpha\"}"));
        // Every per-tenant line carries the tenant label, and none reuses
        // an un-labeled global metric name (`cmdl_requests_total` etc.),
        // so existing dashboards never double-count.
        for line in text.lines() {
            assert!(
                line.starts_with("cmdl_tenant_"),
                "unexpected series name: {line}"
            );
            assert!(
                line.contains("tenant=\"alpha\""),
                "missing tenant label: {line}"
            );
        }
    }

    #[test]
    fn reactor_series_render_in_exposition_format() {
        let metrics = ServiceMetrics::default();
        metrics.reactor_conn_opened();
        metrics.reactor_conn_opened();
        metrics.reactor_conn_closed();
        metrics.reactor_conn_reaped();
        metrics.record_coalesce(1);
        metrics.record_coalesce(3); // [2,4) bucket → le="3"
        metrics.record_coalesce(5); // [4,8) bucket → le="7"
        metrics.record_cache_hit();
        metrics.record_cache_hit();
        metrics.record_cache_miss();
        metrics.record_cache_evicted(4);
        metrics.record_cache_invalidated(9);

        assert_eq!(metrics.reactor_connections(), 1);
        assert_eq!(metrics.reactor_reaped_total(), 1);
        assert_eq!(metrics.coalesce_batches_total(), 3);
        assert_eq!(metrics.coalesce_queries_total(), 9);

        let text = metrics.render(0, 0.0);
        assert!(text.contains("cmdl_reactor_open_connections 1"));
        assert!(text.contains("cmdl_reactor_reaped_total 1"));
        // Cumulative histogram: le="1" sees the size-1 batch, le="3" adds
        // the size-3 batch, le="7" adds the size-5 batch, +Inf sees all.
        assert!(text.contains("cmdl_coalesce_batch_size_bucket{le=\"1\"} 1"));
        assert!(text.contains("cmdl_coalesce_batch_size_bucket{le=\"3\"} 2"));
        assert!(text.contains("cmdl_coalesce_batch_size_bucket{le=\"7\"} 3"));
        assert!(text.contains("cmdl_coalesce_batch_size_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("cmdl_coalesce_batch_size_sum 9"));
        assert!(text.contains("cmdl_coalesce_batch_size_count 3"));
        assert!(text.contains("cmdl_cache_hits_total 2"));
        assert!(text.contains("cmdl_cache_misses_total 1"));
        assert!(text.contains("cmdl_cache_evicted_total 4"));
        assert!(text.contains("cmdl_cache_invalidated_total 9"));
        // Histogram buckets stay cumulative (monotonically non-decreasing).
        let mut last = 0u64;
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("cmdl_coalesce_batch_size_bucket") {
                let value: u64 = rest.split(' ').next_back().unwrap().parse().unwrap();
                assert!(value >= last, "bucket counts must be cumulative: {line}");
                last = value;
            }
        }
    }

    #[test]
    fn replica_series_render_in_exposition_format() {
        let statuses = vec![
            ReplicaStatus {
                name: "r0".into(),
                health: "healthy".into(),
                generation: 12,
                lag: 0,
                applied_batches: 7,
                resyncs: 0,
            },
            ReplicaStatus {
                name: "r1".into(),
                health: "down".into(),
                generation: 9,
                lag: 3,
                applied_batches: 5,
                resyncs: 2,
            },
        ];
        let mut text = String::new();
        render_replica_series(&mut text, &statuses, None);
        assert!(text.contains("cmdl_replica_generation{replica=\"r0\"} 12"));
        assert!(text.contains("cmdl_replica_lag_generations{replica=\"r1\"} 3"));
        assert!(text.contains("cmdl_replica_applied_batches_total{replica=\"r0\"} 7"));
        assert!(text.contains("cmdl_replica_resyncs_total{replica=\"r1\"} 2"));
        assert!(text.contains("cmdl_replica_health_state{replica=\"r0\",health=\"healthy\"} 0"));
        assert!(text.contains("cmdl_replica_health_state{replica=\"r1\",health=\"down\"} 3"));
        // Exposition shape: every line is `name{labels} value` with a
        // parseable integer value and the cmdl_replica_ family name.
        for line in text.lines() {
            assert!(line.starts_with("cmdl_replica_"), "bad series name: {line}");
            let (series, value) = line.rsplit_once(' ').unwrap();
            assert!(series.contains("{replica=\"r"), "missing label: {line}");
            assert!(series.ends_with('}'), "unclosed label set: {line}");
            value.parse::<u64>().unwrap();
        }

        let mut tenant_text = String::new();
        render_replica_series(&mut tenant_text, &statuses, Some("alpha"));
        assert!(tenant_text
            .contains("cmdl_tenant_replica_lag_generations{tenant=\"alpha\",replica=\"r1\"} 3"));
        for line in tenant_text.lines() {
            assert!(
                line.starts_with("cmdl_tenant_replica_"),
                "per-tenant replica series must stay off the global names: {line}"
            );
            assert!(line.contains("tenant=\"alpha\""), "missing tenant: {line}");
        }

        // An empty set emits nothing — non-replicated expositions are
        // unchanged byte-for-byte.
        let mut empty = String::new();
        render_replica_series(&mut empty, &[], None);
        assert!(empty.is_empty());
    }

    #[test]
    fn quantiles_are_ordered_and_bucketed() {
        let metrics = ServiceMetrics::default();
        assert_eq!(metrics.latency_quantile_micros(0.5), 0);
        for _ in 0..99 {
            metrics.record("query", 100, None); // bucket [64, 128)
        }
        metrics.record("query", 1_000_000, None); // ~1s outlier
        let p50 = metrics.latency_quantile_micros(0.50);
        let p99 = metrics.latency_quantile_micros(0.99);
        let p100 = metrics.latency_quantile_micros(1.0);
        assert_eq!(p50, 128, "p50 reports the [64,128) bucket's upper edge");
        assert!(p50 <= p99 && p99 <= p100);
        assert!(p100 >= 1_048_576, "the outlier lands in a >=2^20 bucket");
    }
}
