//! The transport-agnostic CMDL service.
//!
//! [`CmdlService`] routes every [`ServiceRequest`] to a [`ServiceResponse`]
//! over one of three backends, chosen by `config.shards` / `config.replicas`
//! at construction ([`CmdlService::build`]):
//!
//! * **Single** (`shards <= 1`) — one [`Cmdl`] behind a writer gate.
//!   Reads never block behind writers: the service keeps a *published*
//!   [`CatalogSnapshot`] under a lock that is only ever held for a handful
//!   of `Arc` clones, and query execution happens entirely outside any
//!   lock. Writes serialize through a flat-combining mutation queue:
//!   whichever thread wins the gate drains the *whole* queue, applies the
//!   deltas in arrival order, and publishes one fresh snapshot per drained
//!   batch. [`Cmdl`]'s own `delta_pressure` policy triggers `compact()`
//!   inside the gate.
//! * **Sharded** (`shards > 1`) — a [`ShardedCmdl`] router over N
//!   catalogs. Reads pin a published [`ShardedSnapshot`] the same way;
//!   queries scatter across shards and merge under the single-catalog
//!   total order (bit parity — see [`cmdl_core::shard`]). Mutations go
//!   straight to the router, whose per-shard writer gates let table
//!   ingests routed to different shards profile concurrently — a single
//!   flat-combining queue here would serialize exactly the work sharding
//!   parallelizes. The sharded backend is in-memory only (no WAL).
//! * **Replicated** (`replicas > 0`, `shards <= 1`) — the single-catalog
//!   writer gate plus a [`ReplicationGroup`] of N read replicas. Every
//!   drained mutation is also captured as a [`DeltaRecord`]; after each
//!   drain the gate ships the accumulated records as one checksummed
//!   [`DeltaBatch`](cmdl_core::DeltaBatch), pumps the replicas, and tends
//!   their health. Reads route round-robin to replicas within the lag
//!   bound and fall back to the writer's snapshot when none qualify —
//!   degradation, never an error. Ship failures retry with jittered
//!   exponential [`Backoff`]; a replica whose stream is poisoned (checksum
//!   mismatch, generation discontinuity, delivery gap) or too far behind
//!   is resynced from the writer's checkpoint
//!   ([`Cmdl::resync_clone`]).
//!
//! The wire contract is bytes-in/bytes-out JSON
//! ([`handle_json_bytes`](CmdlService::handle_json_bytes)), so every
//! handler is testable in-process without sockets and the HTTP adapter in
//! [`crate::http`] is nothing but framing.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

use cmdl_core::replicate::{DeltaRecord, ReplicaStatus, ReplicationConfig, ReplicationGroup};
use cmdl_core::{
    CatalogSnapshot, Cmdl, CmdlConfig, CmdlError, CmdlStats, DiscoveryQuery, ErrorCode,
    QueryResponse, ShardedCmdl, ShardedSnapshot, WalRecord,
};
use cmdl_datalake::{DataLake, Document, Table};

use crate::api::{
    BatchOutcome, HealthReport, ResponsePayload, ServiceError, ServiceRequest, ServiceResponse,
};
use crate::backoff::Backoff;
use crate::metrics::ServiceMetrics;

/// One queued mutation, paired with the slot its result lands in.
struct PendingMutation {
    request: ServiceRequest,
    result: Arc<Mutex<Option<ServiceResponse>>>,
}

/// The single-catalog backend: one [`Cmdl`] behind the flat-combining
/// writer gate.
struct SingleGate {
    /// The writer gate: the catalog is only ever mutated while this lock is
    /// held, so mutations (and the compactions they trigger) are serialized.
    writer: Mutex<Cmdl>,
    /// The published snapshot readers pin. Held only for `Arc` clones —
    /// never across query execution — so readers do not block behind
    /// writers applying a batch.
    published: RwLock<CatalogSnapshot>,
    /// The mutation queue drained (flat-combining) by whichever writer
    /// holds the gate.
    queue: Mutex<VecDeque<PendingMutation>>,
    /// Set when a panicked mutation on a persistent catalog could not be
    /// reconciled with disk ([`Cmdl::recover_after_panic`] failed): the
    /// in-memory state may diverge from the WAL/segment, so accepting
    /// further mutations would compound the damage. Reads keep serving
    /// the last published snapshot; mutations are refused and health
    /// reports `degraded`.
    wedged: AtomicBool,
    /// While a background reconfiguration is rebuilding the catalog,
    /// `Some(log)`: every mutation the gate successfully applies is also
    /// recorded here (in apply order) so the rebuilt catalog can replay
    /// the deltas it missed before being swapped in. `None` otherwise.
    /// Only ever locked while holding (or inside) the writer gate, so the
    /// lock order writer → recording is global.
    recording: Mutex<Option<Vec<ServiceRequest>>>,
    /// Guards the one-reconfiguration-at-a-time invariant: set by CAS when
    /// a `Reconfigure` starts, cleared when it swaps or aborts. A second
    /// request while set gets `ReconfigurePending`.
    reconfiguring: AtomicBool,
    /// `Some` when this gate feeds a replication group: every successfully
    /// applied mutation is also captured as a [`DeltaRecord`] stamped with
    /// the catalog generation it produced, for the shipper to batch. Only
    /// ever locked while holding the writer gate (drain) or the ship lock
    /// (take), so the order writer → feed is global. `None` on a plain
    /// single backend — zero overhead.
    replica_feed: Mutex<Option<Vec<(DeltaRecord, u64)>>>,
}

/// The sharded backend: the internally-synchronized [`ShardedCmdl`]
/// router plus the published snapshot readers pin.
struct ShardedGate {
    router: ShardedCmdl,
    published: RwLock<ShardedSnapshot>,
    /// Set when a mutation panicked inside the router: its internal locks
    /// may be poisoned mid-update, so further mutations are refused and
    /// health reports `degraded` while reads keep serving the last
    /// published snapshot. (The sharded backend has no WAL, so there is no
    /// disk state to reconcile — wedging is the whole recovery story.)
    wedged: AtomicBool,
}

/// The replicated backend: the single-catalog writer gate plus a
/// [`ReplicationGroup`] the gate's delta feed is shipped to.
struct ReplicatedGate {
    single: SingleGate,
    group: ReplicationGroup,
    /// Serializes shippers: whichever mutator reaches `sync_replicas`
    /// first ships the whole accumulated feed (mirroring the
    /// flat-combining drain). Lock order is ship → writer → feed;
    /// `submit_mutation` never holds writer and ship at once.
    ship_lock: Mutex<()>,
    /// Per-ship backoff decorrelation on top of the configured seed.
    ship_count: AtomicU64,
}

// One Backend exists per service (never in collections), so the size skew
// between the gate variants costs nothing.
#[allow(clippy::large_enum_variant)]
enum Backend {
    Single(SingleGate),
    Sharded(ShardedGate),
    Replicated(Box<ReplicatedGate>),
}

/// A pinned read view over either backend — the common surface
/// `handle_read` executes against.
enum View {
    Single(CatalogSnapshot),
    Sharded(ShardedSnapshot),
}

impl View {
    fn execute(&self, query: &DiscoveryQuery) -> Result<QueryResponse, CmdlError> {
        match self {
            View::Single(snapshot) => snapshot.execute(query),
            View::Sharded(snapshot) => snapshot.execute(query),
        }
    }

    fn execute_many(&self, queries: &[DiscoveryQuery]) -> Vec<Result<QueryResponse, CmdlError>> {
        match self {
            View::Single(snapshot) => snapshot.execute_many(queries),
            View::Sharded(snapshot) => snapshot.execute_many(queries),
        }
    }

    fn stats(&self) -> CmdlStats {
        match self {
            View::Single(snapshot) => snapshot.stats(),
            View::Sharded(snapshot) => snapshot.stats(),
        }
    }

    fn generation(&self) -> u64 {
        match self {
            View::Single(snapshot) => snapshot.generation,
            View::Sharded(snapshot) => snapshot.generation,
        }
    }
}

/// The transport-agnostic service façade over one catalog — single or
/// sharded (see the module docs).
pub struct CmdlService {
    backend: Backend,
    metrics: Arc<ServiceMetrics>,
}

impl CmdlService {
    /// Wrap a built catalog as a single-backend service.
    pub fn new(cmdl: Cmdl) -> Self {
        Self {
            backend: Backend::Single(SingleGate::around(cmdl, false)),
            metrics: Arc::new(ServiceMetrics::default()),
        }
    }

    /// Wrap a built catalog and a pre-built replication group (normally
    /// [`ReplicationGroup::new`] over the same catalog) as a
    /// replicated-backend service. Tests build the group first so they can
    /// keep chaos-plan and replica handles; [`build`](Self::build) does the
    /// wiring from config.
    pub fn replicated(cmdl: Cmdl, group: ReplicationGroup) -> Self {
        Self {
            backend: Backend::Replicated(Box::new(ReplicatedGate {
                single: SingleGate::around(cmdl, true),
                group,
                ship_lock: Mutex::new(()),
                ship_count: AtomicU64::new(0),
            })),
            metrics: Arc::new(ServiceMetrics::default()),
        }
    }

    /// Wrap a built shard router as a sharded-backend service.
    pub fn sharded(router: ShardedCmdl) -> Self {
        let published = RwLock::new(router.snapshot());
        Self {
            backend: Backend::Sharded(ShardedGate {
                router,
                published,
                wedged: AtomicBool::new(false),
            }),
            metrics: Arc::new(ServiceMetrics::default()),
        }
    }

    /// Build a service from a lake, dispatching on the config: a
    /// [`ShardedCmdl`] router when `shards > 1`, a writer plus
    /// `config.replicas` read replicas when `replicas > 0` (sharding
    /// wins if both are set), and one plain catalog otherwise.
    /// This is the config-driven server entry point.
    ///
    /// ```no_run
    /// use cmdl_core::CmdlConfig;
    /// use cmdl_datalake::synth;
    /// use cmdl_server::CmdlService;
    ///
    /// let mut config = CmdlConfig::fast();
    /// config.shards = 4;
    /// let service = CmdlService::build(synth::pharma().lake, config);
    /// assert_eq!(service.num_shards(), 4);
    /// ```
    pub fn build(lake: DataLake, config: CmdlConfig) -> Self {
        if config.shards > 1 {
            Self::sharded(ShardedCmdl::build(lake, config))
        } else if config.replicas > 0 {
            let replication = ReplicationConfig {
                replicas: config.replicas,
                lag_bound: config.replica_lag_bound,
                ..ReplicationConfig::default()
            };
            let cmdl = Cmdl::build(lake, config);
            let group = ReplicationGroup::new(&cmdl, replication);
            Self::replicated(cmdl, group)
        } else {
            Self::new(Cmdl::build(lake, config))
        }
    }

    /// Open (or recover) a durable catalog at `dir` and wrap it as a
    /// single-backend service — the server-startup entry point. Recovery
    /// is logged: a loaded segment reports its replayed WAL tail, a
    /// damaged directory reports why it degraded to rebuild-from-source.
    /// (Sharded serving is in-memory only; it has no durable form to
    /// open.)
    pub fn open(
        dir: &std::path::Path,
        config: CmdlConfig,
        source: impl FnOnce() -> DataLake,
    ) -> Result<Self, CmdlError> {
        let cmdl = Cmdl::open(dir, config, source)?;
        if let Some(report) = cmdl.recovery_report() {
            eprintln!("cmdl: catalog at {} recovered: {report:?}", dir.display());
        }
        Ok(Self::new(cmdl))
    }

    /// How many shards serve this catalog (`1` for the single backend).
    pub fn num_shards(&self) -> usize {
        match &self.backend {
            Backend::Single(_) | Backend::Replicated(_) => 1,
            Backend::Sharded(gate) => gate.router.num_shards(),
        }
    }

    /// How many read replicas serve this catalog (`0` for the single and
    /// sharded backends).
    pub fn num_replicas(&self) -> usize {
        match &self.backend {
            Backend::Replicated(gate) => gate.group.len(),
            _ => 0,
        }
    }

    /// Drain the writer queue and publish the resulting snapshot — the
    /// graceful-shutdown flush. Every mutation applied here appends and
    /// fsyncs its WAL record before being acknowledged, so after `flush`
    /// returns there is no acknowledged-but-volatile state left. On the
    /// sharded backend mutations apply synchronously (nothing is queued),
    /// so this is a no-op.
    pub fn flush(&self) {
        match &self.backend {
            Backend::Single(gate) => gate.flush(),
            Backend::Sharded(_) => {}
            Backend::Replicated(gate) => {
                // Flush the writer, then ship the flushed feed and pump so
                // a graceful shutdown leaves the replicas converged.
                gate.single.flush();
                gate.sync_replicas();
            }
        }
    }

    /// Pin the currently published single-catalog generation (cheap: a few
    /// `Arc` clones).
    ///
    /// # Panics
    ///
    /// Panics on a sharded service — a sharded generation is not one
    /// [`CatalogSnapshot`]; pin it with
    /// [`sharded_snapshot`](Self::sharded_snapshot) instead.
    pub fn snapshot(&self) -> CatalogSnapshot {
        match &self.backend {
            Backend::Single(gate) => gate
                .published
                .read()
                .unwrap_or_else(|poison| poison.into_inner())
                .clone(),
            // The writer's own published snapshot — the authoritative
            // generation, regardless of replica lag.
            Backend::Replicated(gate) => gate
                .single
                .published
                .read()
                .unwrap_or_else(|poison| poison.into_inner())
                .clone(),
            Backend::Sharded(_) => {
                panic!("CmdlService::snapshot on a sharded service; use sharded_snapshot")
            }
        }
    }

    /// Pin the currently published sharded generation, or `None` on a
    /// single-backend service.
    pub fn sharded_snapshot(&self) -> Option<ShardedSnapshot> {
        match &self.backend {
            Backend::Single(_) | Backend::Replicated(_) => None,
            Backend::Sharded(gate) => Some(
                gate.published
                    .read()
                    .unwrap_or_else(|poison| poison.into_inner())
                    .clone(),
            ),
        }
    }

    /// Pin the published generation of whichever backend is active. On the
    /// replicated backend this is where read routing happens: round-robin
    /// over the replicas within the lag bound, writer snapshot when none
    /// qualifies.
    fn view(&self) -> View {
        match &self.backend {
            Backend::Single(gate) => View::Single(
                gate.published
                    .read()
                    .unwrap_or_else(|poison| poison.into_inner())
                    .clone(),
            ),
            Backend::Sharded(gate) => View::Sharded(
                gate.published
                    .read()
                    .unwrap_or_else(|poison| poison.into_inner())
                    .clone(),
            ),
            Backend::Replicated(gate) => View::Single(gate.read_snapshot()),
        }
    }

    /// Whether the writer gate is wedged: mutations are refused while
    /// reads keep serving the last published snapshot, and health reports
    /// `degraded`. The tenant hub surfaces this per lake.
    pub fn is_wedged(&self) -> bool {
        match &self.backend {
            Backend::Single(gate) => gate.wedged.load(Ordering::SeqCst),
            Backend::Sharded(gate) => gate.wedged.load(Ordering::SeqCst),
            Backend::Replicated(gate) => gate.single.wedged.load(Ordering::SeqCst),
        }
    }

    /// Whether a background reconfiguration is currently rebuilding this
    /// catalog (always `false` on the sharded backend).
    pub fn is_reconfiguring(&self) -> bool {
        match &self.backend {
            Backend::Single(gate) => gate.reconfiguring.load(Ordering::SeqCst),
            Backend::Sharded(_) | Backend::Replicated(_) => false,
        }
    }

    /// Introspection statistics of the currently published generation.
    pub fn stats(&self) -> CmdlStats {
        self.view().stats()
    }

    /// The service counters.
    pub fn metrics(&self) -> &ServiceMetrics {
        &self.metrics
    }

    /// The shared counter handle (the tenant hub aliases this as the
    /// global metrics sink in single-tenant compatibility mode).
    pub(crate) fn metrics_arc(&self) -> &Arc<ServiceMetrics> {
        &self.metrics
    }

    /// The published generation and delta pressure — the two gauges the
    /// text exposition carries next to the counters.
    pub(crate) fn generation_and_pressure(&self) -> (u64, f64) {
        match self.view() {
            View::Single(snapshot) => (snapshot.generation, snapshot.indexes.delta_pressure()),
            View::Sharded(snapshot) => {
                let pressure = snapshot
                    .shards
                    .iter()
                    .map(|shard| shard.indexes.delta_pressure())
                    .fold(0.0_f64, f64::max);
                (snapshot.generation, pressure)
            }
        }
    }

    /// Render the metrics text exposition (counters plus the published
    /// snapshot's generation and delta pressure, and — on the replicated
    /// backend — the per-replica `cmdl_replica_*` series).
    pub fn render_metrics(&self) -> String {
        let (generation, pressure) = self.generation_and_pressure();
        let mut out = self.metrics.render(generation, pressure);
        crate::metrics::render_replica_series(&mut out, &self.replica_status(), None);
        out
    }

    /// The generation of the currently published snapshot, without cloning
    /// it — the reactor's result cache keys on this before deciding whether
    /// a cached response is still current.
    pub fn published_generation(&self) -> u64 {
        match &self.backend {
            Backend::Single(gate) => {
                gate.published
                    .read()
                    .unwrap_or_else(|poison| poison.into_inner())
                    .generation
            }
            Backend::Sharded(gate) => {
                gate.published
                    .read()
                    .unwrap_or_else(|poison| poison.into_inner())
                    .generation
            }
            // The writer's published generation: strictly ahead of (or
            // equal to) every replica, so a cache entry tagged with an
            // older replica generation can never be mistaken for current.
            Backend::Replicated(gate) => {
                gate.single
                    .published
                    .read()
                    .unwrap_or_else(|poison| poison.into_inner())
                    .generation
            }
        }
    }

    /// Execute a batch of *independent single queries* — gathered by the
    /// reactor from concurrent connections in one readiness tick — against
    /// **one** pinned snapshot, and wrap each outcome in its own
    /// [`ServiceResponse`] envelope exactly as [`handle`](Self::handle)
    /// would for a `Query` request.
    ///
    /// This is the coalescing half of the event-driven front end: N
    /// requests pay one snapshot pin and one `execute_many` sweep (which
    /// amortizes per-weight-profile candidate generation across the batch)
    /// instead of N independent `execute` calls. Per-query metrics are
    /// recorded under the `query` kind with the batch elapsed time
    /// apportioned evenly, plus one sample in the coalesced-batch-size
    /// histogram.
    ///
    /// Returns the pinned generation (for result-cache tagging) alongside
    /// the responses, which are index-aligned with `queries`.
    pub fn execute_coalesced(&self, queries: &[DiscoveryQuery]) -> (u64, Vec<ServiceResponse>) {
        let started = Instant::now();
        let view = self.view();
        let generation = view.generation();
        let outcomes = view.execute_many(queries);
        let per_query_micros =
            (started.elapsed().as_micros() as u64) / (queries.len().max(1) as u64);
        self.metrics.record_coalesce(queries.len());
        let responses = outcomes
            .into_iter()
            .map(|outcome| {
                let response = match outcome {
                    Ok(inner) => ServiceResponse::success(ResponsePayload::Query(inner)),
                    Err(error) => ServiceResponse::failure(error.into()),
                };
                self.metrics
                    .record("query", per_query_micros, response.error_code());
                response
            })
            .collect();
        (generation, responses)
    }

    /// Route one typed request. Reads execute against a pinned snapshot;
    /// mutations go through the active backend's writer path.
    pub fn handle(&self, request: ServiceRequest) -> ServiceResponse {
        let started = Instant::now();
        let kind = request.kind();
        let response = match request {
            request if request.is_mutation() => self.submit_mutation(request),
            ServiceRequest::Reconfigure(config) => self.reconfigure(config),
            ServiceRequest::Recover => self.recover(),
            request => self.handle_read(request),
        };
        self.metrics.record(
            kind,
            started.elapsed().as_micros() as u64,
            response.error_code(),
        );
        response
    }

    /// Parse a [`ServiceRequest`] from JSON bytes and route it.
    /// Unparseable input yields a `MalformedRequest` envelope (also counted
    /// in the metrics).
    pub fn handle_json(&self, request: &[u8]) -> ServiceResponse {
        match std::str::from_utf8(request)
            .map_err(|e| e.to_string())
            .and_then(|text| {
                serde_json::from_str::<ServiceRequest>(text).map_err(|e| e.to_string())
            }) {
            Ok(request) => self.handle(request),
            Err(detail) => {
                let response = ServiceResponse::failure(ServiceError::with_subject(
                    ErrorCode::MalformedRequest,
                    detail,
                ));
                self.metrics
                    .record_transport("malformed", response.error_code());
                response
            }
        }
    }

    /// The bytes-in/bytes-out wire contract:
    /// [`handle_json`](Self::handle_json) with the envelope serialized back
    /// to JSON bytes.
    pub fn handle_json_bytes(&self, request: &[u8]) -> Vec<u8> {
        let mut out = String::new();
        self.handle_json_into(request, &mut out);
        out.into_bytes()
    }

    /// [`handle_json`](Self::handle_json) streaming the response envelope
    /// into a caller-owned buffer (appended, not cleared) — the
    /// allocation-free form of the wire contract a per-connection serving
    /// loop reuses its buffer with. The envelope is written by the zero-DOM
    /// streaming serializer; no intermediate `Json` tree is built.
    pub fn handle_json_into(&self, request: &[u8], out: &mut String) {
        serialize_response_into(&self.handle_json(request), out);
    }

    fn handle_read(&self, request: ServiceRequest) -> ServiceResponse {
        let view = self.view();
        match request {
            ServiceRequest::Query(query) => match view.execute(&query) {
                Ok(response) => ServiceResponse::success(ResponsePayload::Query(response)),
                Err(error) => ServiceResponse::failure(error.into()),
            },
            ServiceRequest::QueryBatch(queries) => {
                let outcomes = view
                    .execute_many(&queries)
                    .into_iter()
                    .map(|outcome| match outcome {
                        Ok(response) => BatchOutcome {
                            response: Some(response),
                            error: None,
                        },
                        Err(error) => BatchOutcome {
                            response: None,
                            error: Some(error.into()),
                        },
                    })
                    .collect();
                ServiceResponse::success(ResponsePayload::QueryBatch(outcomes))
            }
            ServiceRequest::Stats => {
                // `wedged`/`reconfiguring` are gate properties, not snapshot
                // properties: stamp them in here, where the gate is visible.
                let mut stats = view.stats();
                stats.wedged = self.is_wedged();
                stats.reconfiguring = self.is_reconfiguring();
                stats.replicas = self.replica_status();
                ServiceResponse::success(ResponsePayload::Stats(stats))
            }
            ServiceRequest::Health => {
                let wedged = self.is_wedged();
                let status = if wedged { "degraded" } else { "ok" };
                ServiceResponse::success(ResponsePayload::Health(HealthReport {
                    status: status.to_string(),
                    generation: view.generation(),
                    wedged,
                    reconfiguring: self.is_reconfiguring(),
                    replicas: self.replica_status(),
                }))
            }
            ServiceRequest::CreateLake { .. }
            | ServiceRequest::DropLake { .. }
            | ServiceRequest::ListLakes => ServiceResponse::failure(ServiceError::with_subject(
                ErrorCode::InvalidQuery,
                "lake management requires the multi-tenant hub; this server hosts a single lake",
            )),
            mutation => {
                // Unreachable through `handle` (routed by `is_mutation`);
                // keep a defensive envelope rather than a panic.
                debug_assert!(false, "mutation {} routed to read path", mutation.kind());
                ServiceResponse::failure(ServiceError::new(ErrorCode::Internal))
            }
        }
    }

    fn submit_mutation(&self, request: ServiceRequest) -> ServiceResponse {
        match &self.backend {
            Backend::Single(gate) => gate.submit_mutation(request),
            Backend::Sharded(gate) => gate.submit_mutation(request),
            Backend::Replicated(gate) => {
                let response = gate.single.submit_mutation(request);
                // Ship the feed (ours and anything other drains left
                // behind), pump the replicas, and tend their health —
                // whether or not this particular mutation succeeded.
                gate.sync_replicas();
                response
            }
        }
    }

    /// Re-run the wedged gate's reconciliation
    /// ([`Cmdl::recover_after_panic`]) and clear the wedged flag on
    /// success, so a wedged lake no longer requires a process restart. On
    /// a healthy gate this is a cheap no-op success (`was_wedged: false`);
    /// when reconciliation still fails the gate stays wedged and the
    /// caller gets the typed `Persist` error. The sharded backend has no
    /// WAL to reconcile from, so a wedged shard router reports a typed
    /// error instead.
    pub fn recover(&self) -> ServiceResponse {
        match &self.backend {
            Backend::Single(gate) => gate.recover(),
            Backend::Replicated(gate) => {
                let response = gate.single.recover();
                // Only a real un-wedge can have rolled the writer back
                // behind what was already shipped, which is what forces
                // every replica back to a checkpoint-consistent copy; a
                // healthy no-op recover must not churn the replicas
                // through needless resyncs.
                if matches!(
                    response.payload,
                    Some(ResponsePayload::Recovered {
                        was_wedged: true,
                        ..
                    })
                ) {
                    gate.resync_all();
                }
                response
            }
            Backend::Sharded(gate) => {
                if gate.wedged.load(Ordering::SeqCst) {
                    ServiceResponse::failure(ServiceError::with_subject(
                        ErrorCode::Internal,
                        "sharded backend has no WAL to reconcile a wedged writer from; \
                         restart to recover",
                    ))
                } else {
                    let generation = self.published_generation();
                    ServiceResponse::success(ResponsePayload::Recovered {
                        generation,
                        was_wedged: false,
                    })
                }
            }
        }
    }

    /// Rebuild the catalog under `config` in the background and atomically
    /// swap it into the next published generation (see
    /// `SingleGate::reconfigure` for the protocol). Queries keep hitting
    /// the old published snapshot throughout; ingests keep landing (they
    /// are recorded and replayed onto the rebuilt catalog before the
    /// swap). The sharded backend has no online-rebuild path — its shard
    /// count and layout are fixed at construction — so it reports a typed
    /// error instead.
    pub fn reconfigure(&self, config: CmdlConfig) -> ServiceResponse {
        match &self.backend {
            Backend::Single(gate) => gate.reconfigure(config),
            Backend::Sharded(_) => ServiceResponse::failure(ServiceError::with_subject(
                ErrorCode::InvalidQuery,
                "online reconfiguration is unsupported on the sharded backend; \
                 restart with the new config",
            )),
            // A rebuilt writer under a new config would strand every
            // replica (their catalogs were bootstrapped under the old one
            // and the delta stream is only meaningful between identically
            // configured catalogs), so refuse rather than half-apply.
            Backend::Replicated(_) => ServiceResponse::failure(ServiceError::with_subject(
                ErrorCode::InvalidQuery,
                "online reconfiguration is unsupported on the replicated backend; \
                 restart with the new config",
            )),
        }
    }

    /// Per-replica status (name, health, generation, lag, applied batches,
    /// resyncs), lag measured against the last shipped generation. Empty on
    /// the single and sharded backends. Surfaced through `/healthz`,
    /// `/stats`, and the `cmdl_replica_*` metric series.
    pub fn replica_status(&self) -> Vec<ReplicaStatus> {
        match &self.backend {
            Backend::Replicated(gate) => {
                // Refresh silence-driven health first so a probe observes
                // Suspect/Down transitions without waiting for a mutation.
                gate.group.tick();
                gate.group.status()
            }
            _ => Vec::new(),
        }
    }

    /// Convenience: ingest a document without building an envelope (used by
    /// tests and benches; routes through the same writer gate).
    pub fn ingest_document(&self, document: Document) -> ServiceResponse {
        self.handle(ServiceRequest::IngestDocument(document))
    }

    /// Convenience: ingest a table through the service envelope.
    pub fn ingest_table(&self, table: Table) -> ServiceResponse {
        self.handle(ServiceRequest::IngestTable(table))
    }

    /// The single-catalog gate, for tests that reach into the queue.
    #[cfg(test)]
    fn single_gate(&self) -> &SingleGate {
        match &self.backend {
            Backend::Single(gate) => gate,
            Backend::Replicated(gate) => &gate.single,
            Backend::Sharded(_) => panic!("test expects the single backend"),
        }
    }
}

impl SingleGate {
    /// Wrap a built catalog in a gate. With `feed` set, every successfully
    /// applied mutation is also captured for a replication shipper (see
    /// `replica_feed`).
    fn around(cmdl: Cmdl, feed: bool) -> Self {
        let published = RwLock::new(cmdl.snapshot());
        Self {
            writer: Mutex::new(cmdl),
            published,
            queue: Mutex::new(VecDeque::new()),
            wedged: AtomicBool::new(false),
            recording: Mutex::new(None),
            reconfiguring: AtomicBool::new(false),
            replica_feed: Mutex::new(feed.then(Vec::new)),
        }
    }

    /// Drain the writer queue and publish the resulting snapshot (the
    /// graceful-shutdown flush of this gate).
    fn flush(&self) {
        let mut cmdl = self
            .writer
            .lock()
            .unwrap_or_else(|poison| poison.into_inner());
        self.drain_queue(&mut cmdl);
        let snapshot = cmdl.snapshot();
        *self
            .published
            .write()
            .unwrap_or_else(|poison| poison.into_inner()) = snapshot;
    }

    /// Take everything the drains have fed since the last take (empty when
    /// the feed is inactive). Callers hold the ship lock, never the writer.
    fn take_feed(&self) -> Vec<(DeltaRecord, u64)> {
        self.replica_feed
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
            .as_mut()
            .map(std::mem::take)
            .unwrap_or_default()
    }

    /// Re-run panic reconciliation for a wedged gate (the `Recover`
    /// request): abort any danglingly-logged records and reload memory
    /// from the segment + WAL tail, exactly as the in-gate compensation
    /// attempted. Success clears the wedged flag and republishes; failure
    /// leaves the gate wedged and reports the typed `Persist` error. On a
    /// healthy gate this is a drain-and-publish no-op success.
    fn recover(&self) -> ServiceResponse {
        let mut cmdl = self
            .writer
            .lock()
            .unwrap_or_else(|poison| poison.into_inner());
        self.drain_queue(&mut cmdl);
        let was_wedged = self.wedged.load(Ordering::SeqCst);
        if was_wedged {
            let mark = cmdl.wal_mark();
            if let Err(error) = cmdl.recover_after_panic(mark) {
                return ServiceResponse::failure(ServiceError::with_subject(
                    ErrorCode::Persist,
                    format!("recovery failed; the writer gate stays wedged: {error}"),
                ));
            }
            self.wedged.store(false, Ordering::SeqCst);
        }
        let snapshot = cmdl.snapshot();
        let generation = snapshot.generation;
        *self
            .published
            .write()
            .unwrap_or_else(|poison| poison.into_inner()) = snapshot;
        ServiceResponse::success(ResponsePayload::Recovered {
            generation,
            was_wedged,
        })
    }

    /// Enqueue a mutation, then compete for the writer gate. The winner
    /// drains the whole queue (flat combining) and publishes one snapshot
    /// for the batch; losers find their result already filled in.
    fn submit_mutation(&self, request: ServiceRequest) -> ServiceResponse {
        if self.wedged.load(Ordering::SeqCst) {
            return ServiceResponse::failure(ServiceError::with_subject(
                ErrorCode::Internal,
                "writer gate wedged: in-memory state could not be reconciled with \
                 disk after a panic; restart to recover"
                    .to_string(),
            ));
        }
        let slot = Arc::new(Mutex::new(None));
        self.queue
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
            .push_back(PendingMutation {
                request,
                result: Arc::clone(&slot),
            });

        {
            let mut cmdl = self
                .writer
                .lock()
                .unwrap_or_else(|poison| poison.into_inner());
            // A previous gate holder may have drained our mutation already.
            let already_done = slot
                .lock()
                .unwrap_or_else(|poison| poison.into_inner())
                .is_some();
            if !already_done {
                self.drain_queue(&mut cmdl);
                let snapshot = cmdl.snapshot();
                *self
                    .published
                    .write()
                    .unwrap_or_else(|poison| poison.into_inner()) = snapshot;
            }
        }

        let response = slot
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
            .take();
        response.unwrap_or_else(|| ServiceResponse::failure(ServiceError::new(ErrorCode::Internal)))
    }

    /// Apply every queued mutation in arrival order (including mutations
    /// that enqueue *while* we drain — they join this batch instead of
    /// waiting a full gate cycle).
    ///
    /// Each mutation is applied under `catch_unwind`: a panicking mutation
    /// marks *its own* slot failed with a stable `Internal` code and the
    /// drain keeps going, so one poisoned request cannot take down every
    /// writer behind it. (The gate mutex is already re-entered through
    /// `into_inner` on poison, so the catalog keeps serving either way —
    /// this just turns "all writers see a broken gate" into "one writer
    /// gets one typed error".)
    ///
    /// On a *persistent* catalog a caught panic is not enough by itself:
    /// the mutation's WAL record was fsynced before the in-memory apply
    /// tore, so disk says "applied" while the caller was told "failed" and
    /// memory is half-mutated. [`Cmdl::recover_after_panic`] compensates —
    /// it marks the record aborted in the WAL and reloads memory from
    /// disk, so all three agree the mutation never happened. If even that
    /// fails, the gate is wedged: further mutations are refused rather
    /// than served from unreconcilable state.
    fn drain_queue(&self, cmdl: &mut Cmdl) {
        loop {
            let Some(pending) = self
                .queue
                .lock()
                .unwrap_or_else(|poison| poison.into_inner())
                .pop_front()
            else {
                return;
            };
            let kind = pending.request.kind();
            let wal_mark = cmdl.wal_mark();
            // While a background reconfiguration is in flight, keep a copy
            // of the request so the rebuilt catalog can replay it. Cloned
            // before the apply (which consumes the request); recorded after
            // only if the apply succeeded.
            let replay_copy = self
                .recording
                .lock()
                .unwrap_or_else(|poison| poison.into_inner())
                .is_some()
                .then(|| pending.request.clone());
            // When this gate feeds a replication group, derive the delta
            // record the writer's WAL path logs (or would log) for this
            // mutation — cloned before the apply consumes the request,
            // kept only if the apply succeeds.
            let feed_copy = self
                .replica_feed
                .lock()
                .unwrap_or_else(|poison| poison.into_inner())
                .is_some()
                .then(|| match &pending.request {
                    ServiceRequest::IngestTable(table) => {
                        Some(DeltaRecord::Wal(WalRecord::IngestTable(table.clone())))
                    }
                    ServiceRequest::IngestDocument(document) => Some(DeltaRecord::Wal(
                        WalRecord::IngestDocument(document.clone()),
                    )),
                    ServiceRequest::RemoveTable { name } => {
                        Some(DeltaRecord::Wal(WalRecord::RemoveTable {
                            name: name.clone(),
                        }))
                    }
                    ServiceRequest::RemoveDocument { index } => {
                        Some(DeltaRecord::Wal(WalRecord::RemoveDocument {
                            index: *index,
                        }))
                    }
                    ServiceRequest::Compact => Some(DeltaRecord::Compact),
                    _ => None,
                })
                .flatten();
            let response = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                Self::apply_mutation(&mut *cmdl, pending.request)
            }))
            .unwrap_or_else(|panic| {
                let detail = panic
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "mutation panicked".to_string());
                eprintln!("cmdl: {kind} mutation panicked in the writer gate: {detail}");
                if cmdl.is_persistent() {
                    if let Err(e) = cmdl.recover_after_panic(wal_mark) {
                        eprintln!(
                            "cmdl: panic compensation failed ({e}); wedging the writer \
                             gate — mutations disabled until restart"
                        );
                        self.wedged.store(true, Ordering::SeqCst);
                    }
                }
                ServiceResponse::failure(ServiceError::with_subject(ErrorCode::Internal, detail))
            });
            if response.ok {
                if let Some(request) = replay_copy {
                    if let Some(log) = self
                        .recording
                        .lock()
                        .unwrap_or_else(|poison| poison.into_inner())
                        .as_mut()
                    {
                        log.push(request);
                    }
                }
                if let Some(record) = feed_copy {
                    if let Some(feed) = self
                        .replica_feed
                        .lock()
                        .unwrap_or_else(|poison| poison.into_inner())
                        .as_mut()
                    {
                        // Stamped with the generation the mutation landed
                        // at; the shipper uses the last stamp in a batch as
                        // the target generation.
                        feed.push((record, cmdl.generation()));
                    }
                }
            }
            *pending
                .result
                .lock()
                .unwrap_or_else(|poison| poison.into_inner()) = Some(response);
        }
    }

    /// Online reconfiguration — the Polynesia-style "build the new layout
    /// off the critical path, then propagate" protocol, in three phases:
    ///
    /// 1. **Pin** (brief writer hold): drain the queue, publish, snapshot
    ///    the *lake* (source tuples, not indexes) as the rebuild base, and
    ///    start recording every mutation the gate applies from here on.
    /// 2. **Rebuild** (no locks): `Cmdl::build(base, new_config)` — the
    ///    expensive part. Queries keep hitting the published snapshot;
    ///    ingests keep landing on the live catalog (and the recording).
    ///    A joint model is carried over (re-embedded, not retrained) when
    ///    the new config keeps its dimensionality.
    /// 3. **Swap** (brief writer hold): drain once more, stop recording,
    ///    replay the recorded deltas onto the rebuilt catalog, raise its
    ///    generation above the retiring catalog's (so generation-keyed
    ///    caches invalidate), hand over the persistence layer (checkpoint
    ///    under the new config), and publish the rebuilt catalog as the
    ///    next generation.
    ///
    /// Any failure aborts: the live catalog — which kept serving and
    /// absorbing mutations throughout — stays in place untouched.
    fn reconfigure(&self, config: CmdlConfig) -> ServiceResponse {
        if self.wedged.load(Ordering::SeqCst) {
            return ServiceResponse::failure(ServiceError::with_subject(
                ErrorCode::Internal,
                "writer gate wedged: in-memory state could not be reconciled with \
                 disk after a panic; restart to recover",
            ));
        }
        if config.shards > 1 {
            return ServiceResponse::failure(ServiceError::with_subject(
                ErrorCode::InvalidQuery,
                "reconfigure cannot change the shard count; restart with a sharded config",
            ));
        }
        if self
            .reconfiguring
            .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
            .is_err()
        {
            return ServiceResponse::failure(ServiceError::with_subject(
                ErrorCode::ReconfigurePending,
                "a background reconfiguration is already in flight for this lake",
            ));
        }

        // Phase 1: pin the rebuild base and start recording deltas.
        let (base_lake, carried_joint) = {
            let mut cmdl = self
                .writer
                .lock()
                .unwrap_or_else(|poison| poison.into_inner());
            self.drain_queue(&mut cmdl);
            let snapshot = cmdl.snapshot();
            *self
                .published
                .write()
                .unwrap_or_else(|poison| poison.into_inner()) = snapshot;
            *self
                .recording
                .lock()
                .unwrap_or_else(|poison| poison.into_inner()) = Some(Vec::new());
            let carry = (cmdl.config.embedding_dim == config.embedding_dim
                && cmdl.config.joint_dim == config.joint_dim)
                .then(|| cmdl.joint_model_arc())
                .flatten();
            (cmdl.profiled.lake.clone(), carry)
        };

        // Phase 2: the expensive rebuild, entirely outside the gate.
        let built = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut shadow = Cmdl::build(base_lake, config);
            if let Some(model) = carried_joint {
                shadow.adopt_joint(model);
            }
            shadow
        }));
        let mut shadow = match built {
            Ok(shadow) => shadow,
            Err(panic) => {
                let detail = panic
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "background rebuild panicked".to_string());
                eprintln!("cmdl: reconfigure rebuild panicked: {detail}");
                return self
                    .abort_reconfigure(ServiceError::with_subject(ErrorCode::Internal, detail));
            }
        };

        // Phase 3: replay the recorded deltas and swap.
        let mut cmdl = self
            .writer
            .lock()
            .unwrap_or_else(|poison| poison.into_inner());
        self.drain_queue(&mut cmdl);
        let recorded = self
            .recording
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
            .take()
            .unwrap_or_default();
        for request in recorded {
            let kind = request.kind();
            let outcome = Self::apply_mutation(&mut shadow, request);
            if !outcome.ok {
                drop(cmdl);
                return self.abort_reconfigure(ServiceError::with_subject(
                    ErrorCode::Internal,
                    format!(
                        "reconfigure aborted: replaying a recorded {kind} onto the \
                         rebuilt catalog failed; the old catalog keeps serving"
                    ),
                ));
            }
        }
        // Strictly above the retiring catalog's generation, so
        // generation-keyed result caches observe the swap.
        shadow.set_generation_floor(cmdl.generation() + 1);
        if cmdl.is_persistent() {
            let handle = cmdl
                .take_persistence()
                .expect("persistent catalog has a handle");
            shadow.install_persistence(handle);
            if let Err(error) = shadow.checkpoint() {
                // Undo the handoff: the directory still describes the old
                // catalog, which keeps both the handle and the traffic.
                let handle = shadow.take_persistence().expect("just installed");
                cmdl.install_persistence(handle);
                drop(cmdl);
                return self.abort_reconfigure(ServiceError::from(error));
            }
        }
        *cmdl = shadow;
        let snapshot = cmdl.snapshot();
        let generation = snapshot.generation;
        *self
            .published
            .write()
            .unwrap_or_else(|poison| poison.into_inner()) = snapshot;
        drop(cmdl);
        self.reconfiguring.store(false, Ordering::SeqCst);
        ServiceResponse::success(ResponsePayload::Reconfigured { generation })
    }

    /// Tear down an in-flight reconfiguration (recording off, flag
    /// cleared) and wrap `error` in a failure envelope. The live catalog
    /// is untouched by construction — aborts never mutate it.
    fn abort_reconfigure(&self, error: ServiceError) -> ServiceResponse {
        *self
            .recording
            .lock()
            .unwrap_or_else(|poison| poison.into_inner()) = None;
        self.reconfiguring.store(false, Ordering::SeqCst);
        ServiceResponse::failure(error)
    }

    fn apply_mutation(cmdl: &mut Cmdl, request: ServiceRequest) -> ServiceResponse {
        match request {
            ServiceRequest::IngestTable(table) => match cmdl.ingest_table(table) {
                Ok(table) => ServiceResponse::success(ResponsePayload::IngestedTable {
                    table,
                    generation: cmdl.generation(),
                }),
                Err(error) => ServiceResponse::failure(error.into()),
            },
            ServiceRequest::IngestDocument(document) => match cmdl.ingest_document(document) {
                Ok(document) => ServiceResponse::success(ResponsePayload::IngestedDocument {
                    document,
                    generation: cmdl.generation(),
                }),
                Err(error) => ServiceResponse::failure(error.into()),
            },
            ServiceRequest::RemoveTable { name } => match cmdl.remove_table(&name) {
                Ok(elements) => ServiceResponse::success(ResponsePayload::RemovedTable {
                    elements,
                    generation: cmdl.generation(),
                }),
                Err(error) => ServiceResponse::failure(error.into()),
            },
            ServiceRequest::RemoveDocument { index } => match cmdl.remove_document(index) {
                Ok(()) => ServiceResponse::success(ResponsePayload::RemovedDocument {
                    generation: cmdl.generation(),
                }),
                Err(error) => ServiceResponse::failure(error.into()),
            },
            ServiceRequest::Compact => {
                cmdl.compact();
                ServiceResponse::success(ResponsePayload::Compacted {
                    generation: cmdl.generation(),
                })
            }
            other => {
                debug_assert!(false, "read {} routed to writer gate", other.kind());
                ServiceResponse::failure(ServiceError::new(ErrorCode::Internal))
            }
        }
    }
}

impl ReplicatedGate {
    /// Route a read: a replica within the lag bound when one qualifies,
    /// the writer's own published snapshot otherwise (degraded, never an
    /// error).
    fn read_snapshot(&self) -> CatalogSnapshot {
        match self.group.route() {
            Some((_, snapshot)) => snapshot,
            None => self
                .single
                .published
                .read()
                .unwrap_or_else(|poison| poison.into_inner())
                .clone(),
        }
    }

    /// Ship the accumulated delta feed, pump every replica, resync the
    /// ones whose stream is beyond in-place repair, and advance the
    /// heartbeat sweep. Called after every mutation drain and on flush;
    /// the ship lock serializes shippers so batches stay densely
    /// sequenced (a mutator that finds the lock held simply leaves its
    /// feed entry for the current holder's next take).
    fn sync_replicas(&self) {
        let _ship = self
            .ship_lock
            .lock()
            .unwrap_or_else(|poison| poison.into_inner());
        self.ship_feed();
        for i in self.group.pump_all() {
            self.resync_replica(i);
        }
        self.group.tick();
    }

    /// Take whatever the drains accumulated and ship it as one batch,
    /// retrying failed ships with jittered exponential backoff. Caller
    /// holds the ship lock.
    fn ship_feed(&self) {
        let feed = self.single.take_feed();
        let Some(target) = feed.last().map(|(_, generation)| *generation) else {
            return;
        };
        let records: Vec<DeltaRecord> = feed.into_iter().map(|(record, _)| record).collect();
        let config = self.group.config();
        // Deterministic per config seed, decorrelated per ship and per
        // replica.
        let base_seed = config
            .seed
            .wrapping_add(self.ship_count.fetch_add(1, Ordering::SeqCst) << 8);
        let mut backoffs: Vec<Backoff> = (0..self.group.len())
            .map(|i| {
                Backoff::seeded(
                    config.retry_base,
                    config.retry_cap,
                    base_seed.wrapping_add(i as u64),
                )
            })
            .collect();
        self.group.ship(&records, target, &mut |replica, _attempt| {
            backoffs[replica].sleep();
        });
    }

    /// Resync replica `i` from the writer's checkpoint. Caller holds the
    /// ship lock; the writer gate is held across drain → ship → clone so
    /// the installed catalog's generation equals the shipped generation
    /// and every batch the replica sees afterwards applies cleanly on top.
    fn resync_replica(&self, i: usize) {
        self.group.mark_recovering(i);
        let clone = {
            let mut cmdl = self
                .single
                .writer
                .lock()
                .unwrap_or_else(|poison| poison.into_inner());
            self.single.drain_queue(&mut cmdl);
            let snapshot = cmdl.snapshot();
            *self
                .single
                .published
                .write()
                .unwrap_or_else(|poison| poison.into_inner()) = snapshot;
            // Ship what that drain fed (lock order writer → feed holds —
            // the ship lock is already ours) so the stream position read
            // below matches the clone.
            self.ship_feed();
            match cmdl.resync_clone() {
                // The durable-state clone is only installable if it caught
                // all the way up to the in-memory catalog (the WAL tail can
                // trail pure-compaction generations, which are not logged).
                Ok(clone) if clone.generation() == cmdl.generation() => clone,
                Ok(_) | Err(_) => Cmdl::from_snapshot(cmdl.snapshot()),
            }
        };
        self.group
            .install_resynced(i, clone, self.group.current_seq());
    }

    /// Resync every live replica (after a writer-side recovery rewound
    /// acknowledged state, the delta stream is no longer trustworthy).
    fn resync_all(&self) {
        let _ship = self
            .ship_lock
            .lock()
            .unwrap_or_else(|poison| poison.into_inner());
        for i in 0..self.group.len() {
            if self.group.replica(i).is_alive() {
                self.resync_replica(i);
            }
        }
    }
}

impl ShardedGate {
    /// Apply a mutation straight on the router (its per-shard gates do the
    /// serialization, so concurrent ingests to different shards
    /// parallelize) and publish a fresh snapshot.
    ///
    /// A panicking mutation wedges the whole gate: the router's internal
    /// locks may be poisoned mid-update and there is no WAL to reconcile
    /// from, so refusing further mutations (while reads keep serving the
    /// last published snapshot) is the safe degraded mode.
    fn submit_mutation(&self, request: ServiceRequest) -> ServiceResponse {
        if self.wedged.load(Ordering::SeqCst) {
            return ServiceResponse::failure(ServiceError::with_subject(
                ErrorCode::Internal,
                "sharded writer wedged after a panicked mutation; restart to recover".to_string(),
            ));
        }
        let kind = request.kind();
        let response = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            Self::apply_mutation(&self.router, request)
        }))
        .unwrap_or_else(|panic| {
            let detail = panic
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "mutation panicked".to_string());
            eprintln!("cmdl: {kind} mutation panicked in the shard router: {detail}");
            self.wedged.store(true, Ordering::SeqCst);
            ServiceResponse::failure(ServiceError::with_subject(ErrorCode::Internal, detail))
        });
        if response.ok {
            // Publish monotonically: a slower writer must not clobber a
            // newer generation another writer already published.
            let snapshot = self.router.snapshot();
            let mut published = self
                .published
                .write()
                .unwrap_or_else(|poison| poison.into_inner());
            if snapshot.generation >= published.generation {
                *published = snapshot;
            }
        }
        response
    }

    fn apply_mutation(router: &ShardedCmdl, request: ServiceRequest) -> ServiceResponse {
        match request {
            ServiceRequest::IngestTable(table) => match router.ingest_table(table) {
                Ok(table) => ServiceResponse::success(ResponsePayload::IngestedTable {
                    table,
                    generation: router.generation(),
                }),
                Err(error) => ServiceResponse::failure(error.into()),
            },
            ServiceRequest::IngestDocument(document) => match router.ingest_document(document) {
                Ok(document) => ServiceResponse::success(ResponsePayload::IngestedDocument {
                    document,
                    generation: router.generation(),
                }),
                Err(error) => ServiceResponse::failure(error.into()),
            },
            ServiceRequest::RemoveTable { name } => match router.remove_table(&name) {
                Ok(elements) => ServiceResponse::success(ResponsePayload::RemovedTable {
                    elements,
                    generation: router.generation(),
                }),
                Err(error) => ServiceResponse::failure(error.into()),
            },
            ServiceRequest::RemoveDocument { index } => match router.remove_document(index) {
                Ok(()) => ServiceResponse::success(ResponsePayload::RemovedDocument {
                    generation: router.generation(),
                }),
                Err(error) => ServiceResponse::failure(error.into()),
            },
            ServiceRequest::Compact => {
                router.compact();
                ServiceResponse::success(ResponsePayload::Compacted {
                    generation: router.generation(),
                })
            }
            other => {
                debug_assert!(false, "read {} routed to writer gate", other.kind());
                ServiceResponse::failure(ServiceError::new(ErrorCode::Internal))
            }
        }
    }
}

/// Serialize an envelope with the zero-DOM streaming serializer.
pub(crate) fn serialize_response(response: &ServiceResponse) -> Vec<u8> {
    let mut out = String::new();
    serialize_response_into(response, &mut out);
    out.into_bytes()
}

/// Stream an envelope into a reusable buffer (appended). The streaming
/// serializer is infallible and byte-identical to the DOM path, which the
/// round-trip fuzz suite asserts.
pub(crate) fn serialize_response_into(response: &ServiceResponse, out: &mut String) {
    serde_json::write_to_string(response, out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmdl_core::{CmdlConfig, QueryBuilder};
    use cmdl_datalake::{synth, Column};

    fn service() -> CmdlService {
        let lake = synth::pharma::generate(&synth::PharmaConfig::tiny()).lake;
        CmdlService::new(Cmdl::build(lake, CmdlConfig::fast()))
    }

    fn sharded_service(shards: usize) -> CmdlService {
        let lake = synth::pharma::generate(&synth::PharmaConfig::tiny()).lake;
        let mut config = CmdlConfig::fast();
        config.shards = shards;
        CmdlService::build(lake, config)
    }

    #[test]
    fn reads_pin_published_snapshot() {
        let service = service();
        let snap = service.snapshot();
        service.ingest_document(Document::new("n", "s", "a note about pharmacology"));
        assert!(service.snapshot().generation > snap.generation);
        // The earlier pin is untouched.
        assert_eq!(snap.generation, 0);
    }

    #[test]
    fn query_routes_to_envelope() {
        let service = service();
        let response = service.handle(ServiceRequest::Query(QueryBuilder::keyword("drug").build()));
        assert!(response.ok);
        match response.payload {
            Some(ResponsePayload::Query(inner)) => assert!(!inner.hits.is_empty()),
            other => panic!("wrong payload: {other:?}"),
        }
        assert_eq!(service.metrics().requests_total(), 1);
    }

    #[test]
    fn mutations_publish_new_generations_in_order() {
        let service = service();
        let r1 = service.ingest_table(Table::new(
            "Gate_A",
            vec![Column::from_texts("v", ["x", "y"])],
        ));
        let r2 = service.ingest_table(Table::new(
            "Gate_B",
            vec![Column::from_texts("v", ["p", "q"])],
        ));
        let (g1, g2) = match (r1.payload, r2.payload) {
            (
                Some(ResponsePayload::IngestedTable { generation: g1, .. }),
                Some(ResponsePayload::IngestedTable { generation: g2, .. }),
            ) => (g1, g2),
            other => panic!("wrong payloads: {other:?}"),
        };
        assert!(g2 > g1);
        assert_eq!(service.snapshot().generation, g2);
        let stats = service.snapshot().stats();
        assert!(stats.tables >= 2);
    }

    #[test]
    fn duplicate_table_surfaces_stable_code() {
        let service = service();
        let table = Table::new("Dup", vec![Column::from_texts("v", ["x"])]);
        assert!(service.ingest_table(table.clone()).ok);
        let response = service.ingest_table(table);
        assert!(!response.ok);
        assert_eq!(response.error_code(), Some(ErrorCode::DuplicateTable));
        assert_eq!(
            response.error.unwrap().subject.as_deref(),
            Some("Dup"),
            "subject carries the identifier, not prose"
        );
    }

    #[test]
    fn panicking_mutation_fails_alone_and_gate_keeps_serving() {
        let service = service();
        // Smuggle a read request into the writer queue: `apply_mutation`
        // debug-asserts on it (a panic under `cargo test`), exercising the
        // catch_unwind isolation in `drain_queue`. In release builds the
        // same arm returns the Internal envelope directly, so the
        // assertions hold in both profiles.
        let slot = Arc::new(Mutex::new(None));
        service
            .single_gate()
            .queue
            .lock()
            .unwrap()
            .push_back(PendingMutation {
                request: ServiceRequest::Stats,
                result: Arc::clone(&slot),
            });
        service.flush();
        let response = slot.lock().unwrap().take().expect("slot filled by drain");
        assert!(!response.ok);
        assert_eq!(response.error_code(), Some(ErrorCode::Internal));
        // The gate survives: later mutations still succeed.
        assert!(
            service
                .ingest_document(Document::new("n", "s", "still serving"))
                .ok
        );
    }

    #[test]
    fn panicking_mutation_on_persistent_catalog_reconciles_with_disk() {
        let dir = std::env::temp_dir().join(format!(
            "cmdl-service-panic-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let lake = synth::pharma::generate(&synth::PharmaConfig::tiny()).lake;
        let service =
            CmdlService::open(&dir, CmdlConfig::fast(), move || lake).expect("durable open");
        // An acked mutation whose only durable home is the WAL.
        assert!(
            service
                .ingest_document(Document::new("n", "s", "durable note"))
                .ok
        );
        // Smuggle a read into the writer queue: `apply_mutation`
        // debug-asserts on it, so under `cargo test` the drain catches a
        // panic on a *persistent* catalog and must compensate — abort the
        // (zero) WAL records of the failed mutation and reload memory from
        // disk — instead of serving half-applied state. In release the
        // same arm returns the Internal envelope without panicking.
        let slot = Arc::new(Mutex::new(None));
        service
            .single_gate()
            .queue
            .lock()
            .unwrap()
            .push_back(PendingMutation {
                request: ServiceRequest::Stats,
                result: Arc::clone(&slot),
            });
        service.flush();
        let response = slot.lock().unwrap().take().expect("slot filled by drain");
        assert!(!response.ok);
        // Compensation succeeded: the gate is not wedged and health is ok.
        match service.handle(ServiceRequest::Health).payload {
            Some(ResponsePayload::Health(h)) => assert_eq!(h.status, "ok"),
            other => panic!("wrong payload: {other:?}"),
        }
        // The reload kept the acked mutation and the gate keeps serving.
        let stats = service.snapshot().stats();
        assert!(stats.documents >= 1);
        assert!(
            service
                .ingest_document(Document::new("n2", "s", "still serving"))
                .ok
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn malformed_bytes_yield_malformed_request() {
        let service = service();
        let out = service.handle_json_bytes(b"{not json");
        let response: ServiceResponse =
            serde_json::from_str(std::str::from_utf8(&out).unwrap()).unwrap();
        assert_eq!(response.error_code(), Some(ErrorCode::MalformedRequest));
        assert!(service.metrics().errors_total() >= 1);
    }

    #[test]
    fn sharded_service_answers_the_same_contract() {
        let single = service();
        let sharded = sharded_service(3);
        assert_eq!(sharded.num_shards(), 3);
        assert!(sharded.sharded_snapshot().is_some());
        assert!(single.sharded_snapshot().is_none());
        let request = ServiceRequest::Query(QueryBuilder::keyword("drug").top_k(5).build());
        let (a, b) = (single.handle(request.clone()), sharded.handle(request));
        match (a.payload, b.payload) {
            (Some(ResponsePayload::Query(qa)), Some(ResponsePayload::Query(qb))) => {
                assert_eq!(qa.hits, qb.hits, "sharded service must keep bit parity");
            }
            other => panic!("wrong payloads: {other:?}"),
        }
        // Health and stats flow through the same envelopes.
        match sharded.handle(ServiceRequest::Health).payload {
            Some(ResponsePayload::Health(h)) => assert_eq!(h.status, "ok"),
            other => panic!("wrong payload: {other:?}"),
        }
        match sharded.handle(ServiceRequest::Stats).payload {
            Some(ResponsePayload::Stats(stats)) => assert!(stats.tables > 0),
            other => panic!("wrong payload: {other:?}"),
        }
        assert!(!sharded.render_metrics().is_empty());
    }

    #[test]
    fn sharded_mutations_publish_and_errors_stay_typed() {
        let sharded = sharded_service(2);
        let gen0 = match sharded.handle(ServiceRequest::Health).payload {
            Some(ResponsePayload::Health(h)) => h.generation,
            other => panic!("wrong payload: {other:?}"),
        };
        let table = Table::new("Shard_T", vec![Column::from_texts("v", ["x", "y"])]);
        assert!(sharded.ingest_table(table.clone()).ok);
        let dup = sharded.ingest_table(table);
        assert_eq!(dup.error_code(), Some(ErrorCode::DuplicateTable));
        let doc = sharded.ingest_document(Document::new("n", "s", "sharded note"));
        let doc_index = match doc.payload {
            Some(ResponsePayload::IngestedDocument { document, .. }) => document,
            other => panic!("wrong payload: {other:?}"),
        };
        let gen1 = match sharded.handle(ServiceRequest::Health).payload {
            Some(ResponsePayload::Health(h)) => h.generation,
            other => panic!("wrong payload: {other:?}"),
        };
        assert!(gen1 > gen0, "mutations must publish new generations");
        // The published snapshot serves the new table.
        let response = sharded.handle(ServiceRequest::Query(
            QueryBuilder::keyword("sharded note").top_k(5).build(),
        ));
        assert!(response.ok);
        assert!(
            sharded
                .handle(ServiceRequest::RemoveDocument { index: doc_index })
                .ok
        );
        assert!(
            sharded
                .handle(ServiceRequest::RemoveTable {
                    name: "Shard_T".into()
                })
                .ok
        );
        assert_eq!(
            sharded
                .handle(ServiceRequest::RemoveTable {
                    name: "Shard_T".into()
                })
                .error_code(),
            Some(ErrorCode::UnknownTable)
        );
        assert!(sharded.handle(ServiceRequest::Compact).ok);
    }

    fn replicated_service(replicas: usize) -> CmdlService {
        let lake = synth::pharma::generate(&synth::PharmaConfig::tiny()).lake;
        let mut config = CmdlConfig::fast();
        config.replicas = replicas;
        CmdlService::build(lake, config)
    }

    #[test]
    fn replicated_service_keeps_bit_parity_with_single() {
        let single = service();
        let replicated = replicated_service(2);
        assert_eq!(replicated.num_replicas(), 2);
        assert_eq!(single.num_replicas(), 0);
        // Same mutations against both backends.
        for service in [&single, &replicated] {
            assert!(
                service
                    .ingest_table(Table::new(
                        "Parity_T",
                        vec![Column::from_texts("v", ["alpha", "beta"])],
                    ))
                    .ok
            );
            assert!(
                service
                    .ingest_document(Document::new("n", "s", "replicated parity note"))
                    .ok
            );
        }
        let request = ServiceRequest::Query(QueryBuilder::keyword("parity").top_k(5).build());
        let (a, b) = (single.handle(request.clone()), replicated.handle(request));
        match (a.payload, b.payload) {
            (Some(ResponsePayload::Query(qa)), Some(ResponsePayload::Query(qb))) => {
                assert_eq!(qa.hits, qb.hits, "replica reads must keep bit parity");
            }
            other => panic!("wrong payloads: {other:?}"),
        }
    }

    #[test]
    fn replicated_health_stats_and_metrics_report_replicas() {
        let replicated = replicated_service(2);
        assert!(
            replicated
                .ingest_document(Document::new("n", "s", "replica visible"))
                .ok
        );
        match replicated.handle(ServiceRequest::Health).payload {
            Some(ResponsePayload::Health(h)) => {
                assert_eq!(h.status, "ok");
                assert_eq!(h.replicas.len(), 2);
                for replica in &h.replicas {
                    assert_eq!(replica.health, "healthy");
                    assert_eq!(replica.lag, 0, "synchronous shipping leaves no lag");
                }
            }
            other => panic!("wrong payload: {other:?}"),
        }
        match replicated.handle(ServiceRequest::Stats).payload {
            Some(ResponsePayload::Stats(stats)) => {
                assert_eq!(stats.replicas.len(), 2);
                assert!(stats.replicas.iter().all(|r| r.applied_batches >= 1));
            }
            other => panic!("wrong payload: {other:?}"),
        }
        let text = replicated.render_metrics();
        assert!(text.contains("cmdl_replica_health_state{replica=\"r0\""));
        assert!(text.contains("cmdl_replica_lag_generations{replica=\"r1\"}"));
        // The non-replicated backends expose no replica series at all.
        assert!(!service().render_metrics().contains("cmdl_replica_"));
    }

    #[test]
    fn replicated_backend_rejects_online_reconfiguration() {
        let replicated = replicated_service(1);
        let response = replicated.handle(ServiceRequest::Reconfigure(CmdlConfig::fast()));
        assert_eq!(response.error_code(), Some(ErrorCode::InvalidQuery));
    }

    #[test]
    fn recover_on_healthy_gates_is_a_noop_success() {
        for service in [service(), replicated_service(1), sharded_service(2)] {
            let response = service.handle(ServiceRequest::Recover);
            assert!(response.ok, "healthy gates recover as a no-op");
            match response.payload {
                Some(ResponsePayload::Recovered { was_wedged, .. }) => {
                    assert!(!was_wedged);
                }
                other => panic!("wrong payload: {other:?}"),
            }
            // A no-op recover must not churn healthy replicas through
            // needless resync-from-checkpoint cycles.
            assert!(
                service.replica_status().iter().all(|r| r.resyncs == 0),
                "healthy recover forced a resync: {:?}",
                service.replica_status()
            );
        }
    }

    #[test]
    fn recover_rewedges_until_the_manifest_returns() {
        if !cfg!(debug_assertions) {
            // The wedge is induced by the debug assertion on a smuggled
            // read request; release builds answer it without panicking.
            return;
        }
        let dir = std::env::temp_dir().join(format!(
            "cmdl-service-recover-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let lake = synth::pharma::generate(&synth::PharmaConfig::tiny()).lake;
        let service =
            CmdlService::open(&dir, CmdlConfig::fast(), move || lake).expect("durable open");
        assert!(
            service
                .ingest_document(Document::new("n", "s", "durable note"))
                .ok
        );
        // Hide the manifest so the in-gate compensation (and any later
        // reconciliation) cannot reload from the checkpoint.
        let manifest = dir.join("MANIFEST");
        let aside = dir.join("MANIFEST.aside");
        std::fs::rename(&manifest, &aside).expect("move manifest aside");
        let slot = Arc::new(Mutex::new(None));
        service
            .single_gate()
            .queue
            .lock()
            .unwrap()
            .push_back(PendingMutation {
                request: ServiceRequest::Stats,
                result: Arc::clone(&slot),
            });
        service.flush();
        assert!(!slot.lock().unwrap().take().expect("slot filled").ok);
        assert!(service.is_wedged(), "failed compensation wedges the gate");
        // Recover re-runs reconciliation; with the manifest still missing
        // it fails with a typed persistence error and stays wedged.
        let failed = service.handle(ServiceRequest::Recover);
        assert_eq!(failed.error_code(), Some(ErrorCode::Persist));
        assert!(service.is_wedged());
        assert_eq!(
            service
                .ingest_document(Document::new("n2", "s", "refused"))
                .error_code(),
            Some(ErrorCode::Internal),
            "a wedged gate refuses mutations"
        );
        // Repair the directory and recover for real.
        std::fs::rename(&aside, &manifest).expect("restore manifest");
        let recovered = service.handle(ServiceRequest::Recover);
        assert!(recovered.ok, "recover succeeds once the manifest is back");
        match recovered.payload {
            Some(ResponsePayload::Recovered { was_wedged, .. }) => assert!(was_wedged),
            other => panic!("wrong payload: {other:?}"),
        }
        assert!(!service.is_wedged());
        // The acked mutation survived and the gate serves writes again.
        assert!(service.snapshot().stats().documents >= 1);
        assert!(
            service
                .ingest_document(Document::new("n3", "s", "serving again"))
                .ok
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
