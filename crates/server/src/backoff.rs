//! The one retry policy: jittered exponential backoff.
//!
//! Every retry loop in the serving stack — the replication shipper, the
//! bench clients backing off 429 sheds — pulls its delays from [`Backoff`]
//! instead of hand-rolling a sleep, so retry behavior is tuned (and tested)
//! in exactly one place.
//!
//! The jitter is the "equal jitter" variant: each delay is drawn uniformly
//! from `[ceiling/2, ceiling]` where the ceiling doubles per attempt up to
//! `cap`. Half the ceiling is always honored (a floor of zero would defeat
//! the point of backing off), while the random half decorrelates a
//! thundering herd of retriers. The randomness is a tiny xorshift* PRNG:
//! no clock or OS entropy involved, so a seeded instance replays the exact
//! same delay sequence — tests assert on delays directly.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Process-wide counter so unseeded instances decorrelate from each other
/// without consulting a clock.
static INSTANCES: AtomicU64 = AtomicU64::new(0x9E37_79B9);

/// A jittered exponential backoff schedule. Create one per retry loop;
/// call [`next_delay`](Self::next_delay) (or [`sleep`](Self::sleep)) before
/// each retry and [`reset`](Self::reset) after a success.
#[derive(Debug, Clone)]
pub struct Backoff {
    base: Duration,
    cap: Duration,
    attempt: u32,
    state: u64,
}

impl Backoff {
    /// A backoff growing from `base` and saturating at `cap`, jittered
    /// with a per-instance seed (instances decorrelate automatically).
    pub fn new(base: Duration, cap: Duration) -> Self {
        Self::seeded(base, cap, INSTANCES.fetch_add(1, Ordering::Relaxed))
    }

    /// A deterministically seeded backoff: the same seed replays the same
    /// delay sequence. This is what tests (and the replication shipper,
    /// whose seed comes from its config) use.
    pub fn seeded(base: Duration, cap: Duration, seed: u64) -> Self {
        Self {
            base,
            cap,
            attempt: 0,
            // xorshift* must not start at zero; splash the seed through a
            // couple of multiplies so adjacent seeds diverge immediately.
            state: seed
                .wrapping_mul(0x2545_F491_4F6C_DD1D)
                .wrapping_add(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// How many delays have been drawn since construction or the last
    /// [`reset`](Self::reset).
    pub fn attempt(&self) -> u32 {
        self.attempt
    }

    /// Draw the next delay: uniform in `[ceiling/2, ceiling]`, where
    /// `ceiling = min(base << attempt, cap)`.
    pub fn next_delay(&mut self) -> Duration {
        let shift = self.attempt.min(20);
        self.attempt = self.attempt.saturating_add(1);
        let ceiling = self
            .base
            .saturating_mul(1u32 << shift)
            .min(self.cap)
            .max(self.base);
        let half = ceiling / 2;
        let span = ceiling.saturating_sub(half).as_nanos() as u64;
        let jitter = if span == 0 {
            0
        } else {
            self.next_rand() % (span + 1)
        };
        half + Duration::from_nanos(jitter)
    }

    /// Draw the next delay and sleep it; returns the delay slept.
    pub fn sleep(&mut self) -> Duration {
        let delay = self.next_delay();
        std::thread::sleep(delay);
        delay
    }

    /// Back to the first attempt (call after a success).
    pub fn reset(&mut self) {
        self.attempt = 0;
    }

    /// xorshift* step.
    fn next_rand(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_backoff_is_deterministic() {
        let mut a = Backoff::seeded(Duration::from_millis(1), Duration::from_millis(64), 42);
        let mut b = Backoff::seeded(Duration::from_millis(1), Duration::from_millis(64), 42);
        let delays_a: Vec<Duration> = (0..10).map(|_| a.next_delay()).collect();
        let delays_b: Vec<Duration> = (0..10).map(|_| b.next_delay()).collect();
        assert_eq!(delays_a, delays_b, "same seed, same schedule");

        let mut c = Backoff::seeded(Duration::from_millis(1), Duration::from_millis(64), 43);
        let delays_c: Vec<Duration> = (0..10).map(|_| c.next_delay()).collect();
        assert_ne!(delays_a, delays_c, "different seed, different jitter");
    }

    #[test]
    fn delays_grow_exponentially_within_bounds() {
        let base = Duration::from_millis(2);
        let cap = Duration::from_millis(100);
        let mut backoff = Backoff::seeded(base, cap, 7);
        let mut previous_ceiling = Duration::ZERO;
        for attempt in 0..12 {
            let ceiling = base.saturating_mul(1u32 << attempt.min(20)).min(cap);
            let delay = backoff.next_delay();
            assert!(
                delay >= ceiling / 2 && delay <= ceiling,
                "attempt {attempt}: {delay:?} outside [{:?}, {ceiling:?}]",
                ceiling / 2
            );
            assert!(ceiling >= previous_ceiling, "ceiling is monotone");
            previous_ceiling = ceiling;
        }
        // Saturated at the cap: every later delay still honors the bounds.
        let late = backoff.next_delay();
        assert!(late >= cap / 2 && late <= cap);
    }

    #[test]
    fn reset_restarts_the_schedule() {
        let mut backoff = Backoff::seeded(Duration::from_millis(4), Duration::from_secs(1), 9);
        for _ in 0..6 {
            backoff.next_delay();
        }
        assert_eq!(backoff.attempt(), 6);
        backoff.reset();
        assert_eq!(backoff.attempt(), 0);
        let first = backoff.next_delay();
        assert!(
            first <= Duration::from_millis(4),
            "after reset the ceiling is back to base, got {first:?}"
        );
    }

    #[test]
    fn unseeded_instances_decorrelate() {
        let mut a = Backoff::new(Duration::from_millis(1), Duration::from_secs(1));
        let mut b = Backoff::new(Duration::from_millis(1), Duration::from_secs(1));
        let delays_a: Vec<Duration> = (0..8).map(|_| a.next_delay()).collect();
        let delays_b: Vec<Duration> = (0..8).map(|_| b.next_delay()).collect();
        assert_ne!(delays_a, delays_b);
    }
}
