//! A resumable HTTP/1.1 request parser.
//!
//! The thread-pool adapter parses with blocking reads
//! ([`read_request`](crate::http::read_request)): a worker thread sits in
//! `read_line` until bytes arrive, so the parse state lives on its stack.
//! The reactor cannot afford a stack per connection — [`RequestParser`] is
//! the same framing logic (bounded start/header lines, header count cap,
//! `Content-Length` bodies with a 64 MiB cap, `Expect: 100-continue`,
//! `Transfer-Encoding` rejection, keep-alive defaulting by HTTP version)
//! restructured as a push parser: feed whatever bytes the socket had,
//! collect zero or more completed requests, and the in-between state is a
//! few integers plus the buffered partial line. Ten thousand idle
//! connections therefore cost ten thousand small structs, not ten thousand
//! stacks.
//!
//! Byte-split invariance — feeding a request stream one byte at a time
//! parses identically to feeding it whole, and identically to the
//! one-shot parser — is enforced by the proptest suite in
//! `tests/parser_fuzz.rs`.

use std::collections::VecDeque;

use crate::http::{MAX_BODY_BYTES, MAX_HEADERS, MAX_LINE_BYTES};

/// One fully framed request, plus the flags the serving loop needs.
/// Field-for-field the reactor's analogue of the thread-pool adapter's
/// internal request struct.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedRequest {
    /// Request method (`GET`, `POST`, …), as sent.
    pub method: String,
    /// Request path, as sent.
    pub path: String,
    /// The `Content-Length`-framed body bytes.
    pub body: Vec<u8>,
    /// Whether the connection survives this request (HTTP/1.1 defaults to
    /// keep-alive, HTTP/1.0 to close, `Connection: close` forces close).
    pub keep_alive: bool,
    /// The request declared `Transfer-Encoding`: the body was *not* read —
    /// answer `400` and close before the unread payload desyncs framing.
    pub unsupported_encoding: bool,
}

/// Events produced while feeding bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseEvent {
    /// Headers carried `Expect: 100-continue` with a non-empty body: write
    /// `HTTP/1.1 100 Continue` before the peer will send the body.
    Continue100,
    /// One complete request.
    Request(ParsedRequest),
}

/// A framing violation. The connection is beyond recovery — answer nothing
/// (the stream position is undefined) and close.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseError {
    /// Stable description of the violated bound.
    pub reason: &'static str,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.reason)
    }
}

fn err(reason: &'static str) -> ParseError {
    ParseError { reason }
}

#[derive(Debug)]
enum State {
    /// Waiting for the request line.
    StartLine,
    /// Reading header lines. `lines_read` mirrors the one-shot parser's
    /// loop counter: the bound trips when more than [`MAX_HEADERS`] + 1
    /// lines (headers plus the blank terminator) have been consumed.
    Headers { lines_read: usize },
    /// Accumulating `remaining` body bytes.
    Body { remaining: usize },
    /// A close-forcing request (`Connection: close`, unsupported encoding)
    /// was emitted: this connection serves nothing further, so all later
    /// bytes are discarded unparsed — the one-shot adapter never reads
    /// them at all, and attempting to parse pipelined bytes behind a
    /// close would diverge from it.
    Stopped,
    /// A fatal framing error was reported; every further feed re-reports it.
    Failed(ParseError),
}

/// The per-connection resumable parser. See the module docs.
#[derive(Debug)]
pub struct RequestParser {
    state: State,
    /// Unconsumed input. `pos` marks how far the state machine has eaten;
    /// the prefix is compacted away once it grows past a line's worth.
    buf: Vec<u8>,
    pos: usize,
    /// Fields of the request currently being framed.
    method: String,
    path: String,
    keep_alive: bool,
    content_length: usize,
    expect_continue: bool,
    unsupported_encoding: bool,
    body: Vec<u8>,
    events: VecDeque<ParseEvent>,
}

impl Default for RequestParser {
    fn default() -> Self {
        Self::new()
    }
}

impl RequestParser {
    /// A parser at a request boundary.
    pub fn new() -> Self {
        Self {
            state: State::StartLine,
            buf: Vec::new(),
            pos: 0,
            method: String::new(),
            path: String::new(),
            keep_alive: true,
            content_length: 0,
            expect_continue: false,
            unsupported_encoding: false,
            body: Vec::new(),
            events: VecDeque::new(),
        }
    }

    /// Feed freshly read bytes and advance the state machine. Completed
    /// requests (and `100 Continue` obligations) queue as events; pop them
    /// with [`next_event`](Self::next_event). A returned error is sticky.
    pub fn feed(&mut self, bytes: &[u8]) -> Result<(), ParseError> {
        if let State::Failed(e) = &self.state {
            return Err(*e);
        }
        self.buf.extend_from_slice(bytes);
        match self.advance() {
            Ok(()) => Ok(()),
            Err(e) => {
                self.state = State::Failed(e);
                Err(e)
            }
        }
    }

    /// Pop the next queued event, if any.
    pub fn next_event(&mut self) -> Option<ParseEvent> {
        self.events.pop_front()
    }

    /// `true` when the parser sits at a request boundary with nothing
    /// buffered — the state in which a peer EOF is a clean close rather
    /// than a truncated request. A stopped parser (past a close-forcing
    /// request) always counts as a boundary.
    pub fn at_boundary(&self) -> bool {
        matches!(self.state, State::StartLine | State::Stopped) && self.pos >= self.buf.len()
    }

    /// `true` when a request is mid-frame (a read deadline should be
    /// ticking) — the inverse of [`at_boundary`](Self::at_boundary) except
    /// that queued-but-unserved events do not count as "in progress".
    pub fn mid_request(&self) -> bool {
        !self.at_boundary()
    }

    /// Bytes currently buffered but not yet consumed by the state machine.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn advance(&mut self) -> Result<(), ParseError> {
        loop {
            match self.state {
                State::StartLine => {
                    let Some(line) = self.take_line()? else {
                        break;
                    };
                    // A blank line between requests is not tolerated by the
                    // one-shot parser either: split_whitespace on "" yields
                    // no method, which is a malformed start line.
                    let mut parts = line.split_whitespace();
                    self.method = parts.next().unwrap_or_default().to_string();
                    self.path = parts.next().unwrap_or_default().to_string();
                    let version = parts.next().unwrap_or("HTTP/1.1");
                    if self.method.is_empty() || self.path.is_empty() {
                        return Err(err("malformed start line"));
                    }
                    // HTTP/1.1 defaults to keep-alive; HTTP/1.0 to close.
                    self.keep_alive = version != "HTTP/1.0";
                    self.content_length = 0;
                    self.expect_continue = false;
                    self.unsupported_encoding = false;
                    self.state = State::Headers { lines_read: 0 };
                }
                State::Headers { lines_read } => {
                    if lines_read > MAX_HEADERS {
                        return Err(err("too many headers"));
                    }
                    let Some(line) = self.take_line()? else {
                        break;
                    };
                    self.state = State::Headers {
                        lines_read: lines_read + 1,
                    };
                    let header = line.trim_end();
                    if header.is_empty() {
                        self.finish_headers()?;
                        continue;
                    }
                    if let Some((name, value)) = header.split_once(':') {
                        let value = value.trim();
                        if name.eq_ignore_ascii_case("content-length") {
                            self.content_length =
                                value.parse().map_err(|_| err("bad content-length"))?;
                        } else if name.eq_ignore_ascii_case("connection") {
                            self.keep_alive = !value.eq_ignore_ascii_case("close");
                        } else if name.eq_ignore_ascii_case("expect") {
                            self.expect_continue = value.eq_ignore_ascii_case("100-continue");
                        } else if name.eq_ignore_ascii_case("transfer-encoding") {
                            self.unsupported_encoding = true;
                        }
                    }
                }
                State::Body { remaining } => {
                    let available = self.buf.len() - self.pos;
                    let take = available.min(remaining);
                    self.body
                        .extend_from_slice(&self.buf[self.pos..self.pos + take]);
                    self.pos += take;
                    self.compact();
                    if take == remaining {
                        self.emit_request();
                    } else {
                        self.state = State::Body {
                            remaining: remaining - take,
                        };
                        break;
                    }
                }
                State::Stopped => {
                    self.pos = self.buf.len();
                    self.compact();
                    break;
                }
                State::Failed(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Headers are complete: decide between the unsupported-encoding
    /// short-circuit, the body cap, the `100 Continue` obligation, and
    /// moving on to the body (or straight to emission when empty).
    fn finish_headers(&mut self) -> Result<(), ParseError> {
        if self.unsupported_encoding {
            // Do not attempt to read the chunked payload: the request is
            // emitted body-less with keep_alive forced off, exactly like
            // the one-shot parser, so the 400 goes out before the unread
            // bytes can be misparsed as the next request.
            self.keep_alive = false;
            self.emit_request();
            return Ok(());
        }
        if self.content_length > MAX_BODY_BYTES {
            return Err(err("body too large"));
        }
        if self.expect_continue && self.content_length > 0 {
            self.events.push_back(ParseEvent::Continue100);
        }
        if self.content_length == 0 {
            self.emit_request();
        } else {
            self.state = State::Body {
                remaining: self.content_length,
            };
        }
        Ok(())
    }

    fn emit_request(&mut self) {
        let request = ParsedRequest {
            method: std::mem::take(&mut self.method),
            path: std::mem::take(&mut self.path),
            body: std::mem::take(&mut self.body),
            keep_alive: self.keep_alive,
            unsupported_encoding: self.unsupported_encoding,
        };
        let stops = !request.keep_alive;
        self.events.push_back(ParseEvent::Request(request));
        self.state = if stops {
            State::Stopped
        } else {
            State::StartLine
        };
    }

    /// Consume one `\n`-terminated line (CR retained for the caller's
    /// `trim_end`, matching `read_line`), validated as UTF-8 and bounded by
    /// [`MAX_LINE_BYTES`] — a line that hits the cap without a newline is
    /// an error, not an ever-growing buffer. `None` means more bytes are
    /// needed.
    fn take_line(&mut self) -> Result<Option<String>, ParseError> {
        let pending = &self.buf[self.pos..];
        let cap = MAX_LINE_BYTES as usize;
        let window = &pending[..pending.len().min(cap)];
        match window.iter().position(|&b| b == b'\n') {
            Some(idx) => {
                let line_bytes = &pending[..=idx];
                let line = std::str::from_utf8(line_bytes)
                    .map_err(|_| err("header bytes are not UTF-8"))?
                    .to_string();
                self.pos += idx + 1;
                self.compact();
                Ok(Some(line))
            }
            None if pending.len() >= cap => Err(err("line too long")),
            None => Ok(None),
        }
    }

    /// Drop the consumed prefix once it outgrows a line's worth, keeping
    /// the buffer small on long-lived connections.
    fn compact(&mut self) {
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        } else if self.pos > MAX_LINE_BYTES as usize {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed_all(parser: &mut RequestParser, bytes: &[u8]) -> Vec<ParseEvent> {
        parser.feed(bytes).expect("feed");
        let mut events = Vec::new();
        while let Some(e) = parser.next_event() {
            events.push(e);
        }
        events
    }

    #[test]
    fn whole_request_in_one_feed() {
        let mut parser = RequestParser::new();
        let events = feed_all(
            &mut parser,
            b"POST /query HTTP/1.1\r\nContent-Length: 4\r\n\r\nbody",
        );
        assert_eq!(events.len(), 1);
        let ParseEvent::Request(req) = &events[0] else {
            panic!("expected a request");
        };
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/query");
        assert_eq!(req.body, b"body");
        assert!(req.keep_alive);
        assert!(parser.at_boundary());
    }

    #[test]
    fn byte_at_a_time_matches() {
        let stream = b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n";
        let mut parser = RequestParser::new();
        let mut events = Vec::new();
        for b in stream {
            parser.feed(std::slice::from_ref(b)).expect("feed");
            while let Some(e) = parser.next_event() {
                events.push(e);
            }
        }
        assert_eq!(events.len(), 1);
        let ParseEvent::Request(req) = &events[0] else {
            panic!("expected a request");
        };
        assert_eq!(req.path, "/healthz");
        assert!(!req.keep_alive);
    }

    #[test]
    fn pipelined_requests_emit_in_order() {
        let mut parser = RequestParser::new();
        let events = feed_all(
            &mut parser,
            b"GET /a HTTP/1.1\r\n\r\nPOST /b HTTP/1.1\r\nContent-Length: 2\r\n\r\nhi",
        );
        let paths: Vec<&str> = events
            .iter()
            .map(|e| match e {
                ParseEvent::Request(r) => r.path.as_str(),
                other => panic!("unexpected event {other:?}"),
            })
            .collect();
        assert_eq!(paths, ["/a", "/b"]);
    }

    #[test]
    fn expect_continue_precedes_the_request() {
        let mut parser = RequestParser::new();
        let events = feed_all(
            &mut parser,
            b"POST /q HTTP/1.1\r\nExpect: 100-continue\r\nContent-Length: 2\r\n\r\nok",
        );
        assert_eq!(events[0], ParseEvent::Continue100);
        assert!(matches!(events[1], ParseEvent::Request(_)));
    }

    #[test]
    fn transfer_encoding_forces_close_without_body() {
        let mut parser = RequestParser::new();
        let events = feed_all(
            &mut parser,
            b"POST /q HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n5\r\nhello\r\n0\r\n\r\n",
        );
        let ParseEvent::Request(req) = &events[0] else {
            panic!("expected a request");
        };
        assert!(req.unsupported_encoding);
        assert!(!req.keep_alive);
        assert!(req.body.is_empty());
    }

    #[test]
    fn oversized_line_and_body_are_rejected() {
        let mut parser = RequestParser::new();
        let long = vec![b'a'; MAX_LINE_BYTES as usize + 1];
        assert!(parser.feed(&long).is_err());
        // Sticky: the error persists.
        assert!(parser.feed(b"\r\n").is_err());

        let mut parser = RequestParser::new();
        let huge = format!(
            "POST /q HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(parser.feed(huge.as_bytes()).is_err());
    }

    #[test]
    fn bad_content_length_and_start_line_are_rejected() {
        let mut parser = RequestParser::new();
        assert!(parser
            .feed(b"POST /q HTTP/1.1\r\nContent-Length: nope\r\n\r\n")
            .is_err());
        let mut parser = RequestParser::new();
        assert!(parser.feed(b"\r\n").is_err());
        let mut parser = RequestParser::new();
        assert!(parser.feed(b"GET\r\n").is_err());
    }

    #[test]
    fn header_count_cap_matches_the_one_shot_loop() {
        // MAX_HEADERS header lines plus the blank terminator parse; one
        // more header line trips the bound before the terminator is ever
        // read — the same line count at which the one-shot loop errors.
        let mut ok = String::from("GET / HTTP/1.1\r\n");
        for i in 0..MAX_HEADERS {
            ok.push_str(&format!("X-H{i}: v\r\n"));
        }
        ok.push_str("\r\n");
        let mut parser = RequestParser::new();
        assert_eq!(feed_all(&mut parser, ok.as_bytes()).len(), 1);

        let mut over = String::from("GET / HTTP/1.1\r\n");
        for i in 0..(MAX_HEADERS + 1) {
            over.push_str(&format!("X-H{i}: v\r\n"));
        }
        over.push_str("\r\n");
        let mut parser = RequestParser::new();
        assert!(parser.feed(over.as_bytes()).is_err());
    }

    #[test]
    fn bytes_after_a_close_forcing_request_are_discarded() {
        // The one-shot adapter never reads past a `Connection: close`
        // request; the resumable parser matches by discarding instead of
        // parsing (pipelined garbage behind a close must not error).
        let mut parser = RequestParser::new();
        let events = feed_all(
            &mut parser,
            b"GET /a HTTP/1.1\r\nConnection: close\r\n\r\nnot an http request at all",
        );
        assert_eq!(events.len(), 1);
        assert!(parser.at_boundary(), "discarded bytes leave a boundary");
        assert!(parser.feed(b"more garbage \x00\xff").is_ok());
        assert!(parser.next_event().is_none());
        assert_eq!(parser.buffered(), 0);
    }

    #[test]
    fn mid_request_tracks_framing_progress() {
        let mut parser = RequestParser::new();
        assert!(!parser.mid_request());
        parser.feed(b"GET /x HT").expect("feed");
        assert!(parser.mid_request());
        parser.feed(b"TP/1.1\r\n\r\n").expect("feed");
        assert!(matches!(parser.next_event(), Some(ParseEvent::Request(_))));
        assert!(!parser.mid_request());
    }
}
