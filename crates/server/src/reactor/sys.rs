//! A thin vendored epoll shim: raw `epoll_create1`/`epoll_ctl`/`epoll_wait`
//! (plus `eventfd` for cross-thread wakeups) declared directly against the
//! C runtime the Rust standard library already links on Linux. No `libc`
//! crate — the four symbols below are the entire foreign surface of the
//! reactor, and file-descriptor lifetimes are owned by
//! [`std::os::fd::OwnedFd`] so closing stays in safe std code.

use std::io;
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};

/// Readable readiness (`EPOLLIN`).
pub const EPOLLIN: u32 = 0x001;
/// Writable readiness (`EPOLLOUT`).
pub const EPOLLOUT: u32 = 0x004;
/// Error condition (`EPOLLERR`) — always reported, never needs arming.
pub const EPOLLERR: u32 = 0x008;
/// Peer hangup (`EPOLLHUP`) — always reported, never needs arming.
pub const EPOLLHUP: u32 = 0x010;
/// Peer closed its write side (`EPOLLRDHUP`).
pub const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;
const EPOLL_CLOEXEC: i32 = 0o2000000;
const EFD_CLOEXEC: i32 = 0o2000000;
const EFD_NONBLOCK: i32 = 0o4000;

/// One `struct epoll_event`. On x86-64 the kernel ABI packs it (no padding
/// between `events` and `data`); other architectures use natural layout.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    /// Readiness bitmask (`EPOLLIN | …`).
    pub events: u32,
    /// Caller-owned token, echoed back verbatim by `epoll_wait`.
    pub data: u64,
}

impl EpollEvent {
    /// The event's readiness mask (copied out of the possibly-packed field).
    pub fn readiness(&self) -> u32 {
        self.events
    }

    /// The event's token (copied out of the possibly-packed field).
    pub fn token(&self) -> u64 {
        self.data
    }
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout_ms: i32) -> i32;
    fn eventfd(initval: u32, flags: i32) -> i32;
}

fn check(ret: i32) -> io::Result<i32> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// An owned epoll instance.
pub struct Epoll {
    fd: OwnedFd,
}

impl Epoll {
    /// `epoll_create1(EPOLL_CLOEXEC)`.
    pub fn new() -> io::Result<Self> {
        let raw = check(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        // SAFETY: `epoll_create1` returned a fresh fd we now own.
        Ok(Self {
            fd: unsafe { OwnedFd::from_raw_fd(raw) },
        })
    }

    fn ctl(&self, op: i32, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        let mut event = EpollEvent {
            events: interest,
            data: token,
        };
        let event_ptr = if op == EPOLL_CTL_DEL {
            std::ptr::null_mut()
        } else {
            &mut event
        };
        check(unsafe { epoll_ctl(self.fd.as_raw_fd(), op, fd, event_ptr) }).map(drop)
    }

    /// Register `fd` with the given interest mask and token.
    pub fn add(&self, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, interest, token)
    }

    /// Change the interest mask of a registered `fd`.
    pub fn modify(&self, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, interest, token)
    }

    /// Deregister `fd`.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Wait for readiness, filling `events` and returning how many fired.
    /// `timeout` of `None` blocks forever; `Some(d)` is rounded up to whole
    /// milliseconds so a 1 ns deadline does not spin at timeout 0.
    pub fn wait(
        &self,
        events: &mut [EpollEvent],
        timeout: Option<std::time::Duration>,
    ) -> io::Result<usize> {
        let timeout_ms = match timeout {
            None => -1,
            Some(d) => {
                let ms = d.as_millis();
                let rounded = if d.subsec_nanos() % 1_000_000 != 0 {
                    ms + 1
                } else {
                    ms
                };
                rounded.min(i32::MAX as u128) as i32
            }
        };
        loop {
            let ret = unsafe {
                epoll_wait(
                    self.fd.as_raw_fd(),
                    events.as_mut_ptr(),
                    events.len().min(i32::MAX as usize) as i32,
                    timeout_ms,
                )
            };
            if ret < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    continue;
                }
                return Err(err);
            }
            return Ok(ret as usize);
        }
    }
}

/// An owned `eventfd` used to wake the reactor loop from executor threads.
/// Reads and writes go through [`std::fs::File`] so no foreign read/write
/// symbols are needed.
pub struct EventFd {
    file: std::fs::File,
}

impl EventFd {
    /// `eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK)`.
    pub fn new() -> io::Result<Self> {
        let raw = check(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
        // SAFETY: `eventfd` returned a fresh fd; File takes ownership.
        Ok(Self {
            file: unsafe { std::fs::File::from_raw_fd(raw) },
        })
    }

    /// The raw fd, for epoll registration.
    pub fn raw_fd(&self) -> RawFd {
        self.file.as_raw_fd()
    }

    /// Signal the eventfd (adds 1 to the counter, waking any epoll waiter).
    /// Infallible from the caller's view: a full counter (`EAGAIN`) already
    /// means the waiter has a pending wakeup.
    pub fn signal(&self) {
        use std::io::Write;
        let _ = (&self.file).write_all(&1u64.to_ne_bytes());
    }

    /// Drain the counter so the next `signal` re-arms readiness.
    pub fn drain(&self) {
        use std::io::Read;
        let mut buf = [0u8; 8];
        let _ = (&self.file).read(&mut buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn eventfd_wakes_epoll() {
        let epoll = Epoll::new().expect("epoll_create1");
        let efd = EventFd::new().expect("eventfd");
        epoll.add(efd.raw_fd(), EPOLLIN, 42).expect("add");

        let mut events = [EpollEvent { events: 0, data: 0 }; 4];
        // Nothing signalled yet: times out empty.
        let n = epoll
            .wait(&mut events, Some(Duration::from_millis(10)))
            .expect("wait");
        assert_eq!(n, 0);

        efd.signal();
        let n = epoll
            .wait(&mut events, Some(Duration::from_millis(1000)))
            .expect("wait");
        assert_eq!(n, 1);
        assert_eq!(events[0].token(), 42);
        assert_ne!(events[0].readiness() & EPOLLIN, 0);

        // Drained, the readiness clears (level-triggered).
        efd.drain();
        let n = epoll
            .wait(&mut events, Some(Duration::from_millis(10)))
            .expect("wait");
        assert_eq!(n, 0);

        // Deregistered fds never fire.
        efd.signal();
        epoll.delete(efd.raw_fd()).expect("del");
        let n = epoll
            .wait(&mut events, Some(Duration::from_millis(10)))
            .expect("wait");
        assert_eq!(n, 0);
    }

    #[test]
    fn modify_switches_interest() {
        let epoll = Epoll::new().expect("epoll_create1");
        let efd = EventFd::new().expect("eventfd");
        epoll.add(efd.raw_fd(), EPOLLIN, 7).expect("add");
        efd.signal();
        // Re-arm for EPOLLOUT only: an eventfd below its max counter is
        // always writable, so the event fires with the new token.
        epoll.modify(efd.raw_fd(), EPOLLOUT, 8).expect("mod");
        let mut events = [EpollEvent { events: 0, data: 0 }; 4];
        let n = epoll
            .wait(&mut events, Some(Duration::from_millis(1000)))
            .expect("wait");
        assert_eq!(n, 1);
        assert_eq!(events[0].token(), 8);
        assert_ne!(events[0].readiness() & EPOLLOUT, 0);
    }
}
