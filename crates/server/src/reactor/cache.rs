//! The generation-keyed result cache.
//!
//! Every `/query` response is a pure function of (canonical request bytes,
//! catalog generation): snapshots are immutable, so a response computed
//! against generation *g* stays correct for as long as *g* is the
//! published generation — and becomes garbage the instant a mutation
//! publishes *g+1*. That makes invalidation trivial: the cache is tagged
//! with one generation and dropped **wholesale** when it sees another. No
//! per-key invalidation, no TTLs, no stale reads.
//!
//! Entries are keyed by `xxh64(request bytes)` (the same hash the
//! durability layer checksums segments with) and guarded against hash
//! collisions by comparing the stored request bytes on every hit. The
//! store is a bounded LRU — an intrusive doubly-linked list over a slab,
//! O(1) touch/insert/evict — with both an entry cap and a *byte budget*
//! covering request and response bytes, so a burst of giant envelopes
//! evicts proportionally more than a burst of small ones.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use cmdl_core::persist::xxh64;
use cmdl_core::ErrorCode;

/// Seed for the request-byte hash (any fixed value; distinct from the
/// durability layer's seeds so accidental cross-use is visible).
const CACHE_HASH_SEED: u64 = 0x434d_444c_5143; // "CMDLQC"

/// Configuration of the [`ResultCache`].
#[derive(Debug, Clone)]
pub struct CacheConfig {
    /// Master switch; a disabled cache never hits and never stores.
    pub enabled: bool,
    /// Upper bound on cached bytes (request keys + response bodies).
    pub byte_budget: usize,
    /// Upper bound on cached entries.
    pub max_entries: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        Self {
            enabled: true,
            byte_budget: 64 * 1024 * 1024,
            max_entries: 65_536,
        }
    }
}

/// One cached response: the HTTP status plus the serialized envelope
/// bytes, shared so a hit is an `Arc` clone, not a copy.
#[derive(Debug)]
pub struct CachedResponse {
    /// The HTTP status the original computation mapped to.
    pub status: u16,
    /// The error code of the original response (if it failed) — replayed
    /// into the metrics on every hit so error counters stay truthful for
    /// cached failures (e.g. a cached `InvalidQuery`).
    pub error: Option<ErrorCode>,
    /// The serialized [`ServiceResponse`](crate::api::ServiceResponse)
    /// envelope, byte-for-byte as first computed.
    pub body: Arc<[u8]>,
}

/// Outcome of a [`ResultCache::lookup`].
#[derive(Debug)]
pub enum CacheOutcome {
    /// The exact request bytes were cached under the current generation.
    Hit(Arc<CachedResponse>),
    /// Nothing cached (or the cache was just invalidated); `invalidated`
    /// reports how many entries a generation change dropped on the way.
    Miss {
        /// Entries dropped wholesale because the generation moved.
        invalidated: usize,
    },
}

struct Entry {
    hash: u64,
    request: Box<[u8]>,
    response: Arc<CachedResponse>,
    /// Accounted size: request + response bytes.
    bytes: usize,
    prev: usize,
    next: usize,
}

const NIL: usize = usize::MAX;

/// Slab-backed LRU state under the lock.
struct Inner {
    /// The generation every entry is valid for.
    generation: u64,
    map: HashMap<u64, usize>,
    slots: Vec<Option<Entry>>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    bytes: usize,
}

impl Inner {
    fn new() -> Self {
        Self {
            generation: 0,
            map: HashMap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            bytes: 0,
        }
    }

    fn unlink(&mut self, slot: usize) {
        let (prev, next) = {
            let entry = self.slots[slot].as_ref().expect("linked slot");
            (entry.prev, entry.next)
        };
        match prev {
            NIL => self.head = next,
            p => self.slots[p].as_mut().expect("prev slot").next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.slots[n].as_mut().expect("next slot").prev = prev,
        }
    }

    fn push_front(&mut self, slot: usize) {
        {
            let entry = self.slots[slot].as_mut().expect("slot to link");
            entry.prev = NIL;
            entry.next = self.head;
        }
        match self.head {
            NIL => self.tail = slot,
            h => self.slots[h].as_mut().expect("head slot").prev = slot,
        }
        self.head = slot;
    }

    /// Remove the least-recently-used entry. Returns `false` on empty.
    fn evict_tail(&mut self) -> bool {
        let tail = self.tail;
        if tail == NIL {
            return false;
        }
        self.unlink(tail);
        let entry = self.slots[tail].take().expect("tail slot");
        self.map.remove(&entry.hash);
        self.bytes -= entry.bytes;
        self.free.push(tail);
        true
    }

    fn clear(&mut self) -> usize {
        let dropped = self.map.len();
        self.map.clear();
        self.slots.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
        self.bytes = 0;
        dropped
    }
}

/// The shared result cache. All methods are `&self`; the short critical
/// sections (hash-map probe plus a few pointer swaps) sit behind one mutex.
pub struct ResultCache {
    config: CacheConfig,
    inner: Mutex<Inner>,
}

impl ResultCache {
    /// An empty cache tagged to generation 0.
    pub fn new(config: CacheConfig) -> Self {
        Self {
            config,
            inner: Mutex::new(Inner::new()),
        }
    }

    /// The configuration this cache enforces.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Look up `request` under `generation`. A generation different from
    /// the cache's tag drops every entry (reported in the miss) and
    /// re-tags — invalidation-by-generation is this one branch.
    pub fn lookup(&self, generation: u64, request: &[u8]) -> CacheOutcome {
        if !self.config.enabled {
            return CacheOutcome::Miss { invalidated: 0 };
        }
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        let mut invalidated = 0;
        if inner.generation != generation {
            invalidated = inner.clear();
            inner.generation = generation;
        }
        let hash = xxh64(request, CACHE_HASH_SEED);
        let Some(&slot) = inner.map.get(&hash) else {
            return CacheOutcome::Miss { invalidated };
        };
        let matches = inner.slots[slot]
            .as_ref()
            .map(|e| e.request.as_ref() == request)
            .unwrap_or(false);
        if !matches {
            // A different request collided into the same 64-bit hash:
            // serve it fresh rather than serve the wrong bytes.
            return CacheOutcome::Miss { invalidated };
        }
        inner.unlink(slot);
        inner.push_front(slot);
        let response = Arc::clone(&inner.slots[slot].as_ref().expect("hit slot").response);
        CacheOutcome::Hit(response)
    }

    /// Insert a computed response. `generation` is the generation the
    /// response was actually computed against (authoritative — taken from
    /// the pinned snapshot, not from "now"): an insert tagged *older* than
    /// the cache is dropped silently, one tagged *newer* re-tags the cache
    /// first. Returns how many entries were evicted to make room (budget
    /// evictions only — generation drops are reported by `lookup`).
    pub fn insert(
        &self,
        generation: u64,
        request: &[u8],
        status: u16,
        error: Option<ErrorCode>,
        body: &[u8],
    ) -> usize {
        if !self.config.enabled {
            return 0;
        }
        let bytes = request.len() + body.len();
        if bytes > self.config.byte_budget || self.config.max_entries == 0 {
            return 0; // larger than the whole budget: not cacheable
        }
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        if generation < inner.generation {
            return 0; // computed against a superseded snapshot
        }
        if generation > inner.generation {
            inner.clear();
            inner.generation = generation;
        }
        let hash = xxh64(request, CACHE_HASH_SEED);
        if let Some(&slot) = inner.map.get(&hash) {
            // Already cached (e.g. two coalesced ticks raced the same
            // request): refresh recency, keep the first bytes.
            inner.unlink(slot);
            inner.push_front(slot);
            return 0;
        }
        let mut evicted = 0;
        while inner.map.len() >= self.config.max_entries
            || inner.bytes + bytes > self.config.byte_budget
        {
            if !inner.evict_tail() {
                break;
            }
            evicted += 1;
        }
        let entry = Entry {
            hash,
            request: request.into(),
            response: Arc::new(CachedResponse {
                status,
                error,
                body: body.into(),
            }),
            bytes,
            prev: NIL,
            next: NIL,
        };
        let slot = match inner.free.pop() {
            Some(slot) => {
                inner.slots[slot] = Some(entry);
                slot
            }
            None => {
                inner.slots.push(Some(entry));
                inner.slots.len() - 1
            }
        };
        inner.map.insert(hash, slot);
        inner.bytes += bytes;
        inner.push_front(slot);
        evicted
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .map
            .len()
    }

    /// `true` when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Accounted bytes currently held.
    pub fn bytes(&self) -> usize {
        self.inner.lock().unwrap_or_else(|p| p.into_inner()).bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(byte_budget: usize, max_entries: usize) -> ResultCache {
        ResultCache::new(CacheConfig {
            enabled: true,
            byte_budget,
            max_entries,
        })
    }

    #[test]
    fn hit_returns_the_inserted_bytes() {
        let cache = cache(1 << 20, 16);
        assert!(matches!(
            cache.lookup(1, b"req"),
            CacheOutcome::Miss { invalidated: 0 }
        ));
        cache.insert(1, b"req", 200, None, b"resp");
        match cache.lookup(1, b"req") {
            CacheOutcome::Hit(r) => {
                assert_eq!(r.status, 200);
                assert_eq!(&*r.body, b"resp");
            }
            other => panic!("expected hit, got {other:?}"),
        }
    }

    #[test]
    fn generation_bump_drops_everything() {
        let cache = cache(1 << 20, 16);
        cache.insert(1, b"a", 200, None, b"ra");
        cache.insert(1, b"b", 200, None, b"rb");
        assert_eq!(cache.len(), 2);
        match cache.lookup(2, b"a") {
            CacheOutcome::Miss { invalidated } => assert_eq!(invalidated, 2),
            other => panic!("expected miss, got {other:?}"),
        }
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.bytes(), 0);
        // Stale inserts (older generation) are dropped, newer re-tag.
        cache.insert(1, b"stale", 200, None, b"r");
        assert_eq!(cache.len(), 0);
        cache.insert(3, b"fresh", 200, None, b"r");
        assert!(matches!(cache.lookup(3, b"fresh"), CacheOutcome::Hit(_)));
    }

    #[test]
    fn lru_evicts_by_entry_cap_in_recency_order() {
        let cache = cache(1 << 20, 2);
        cache.insert(1, b"a", 200, None, b"ra");
        cache.insert(1, b"b", 200, None, b"rb");
        // Touch `a` so `b` is the LRU.
        assert!(matches!(cache.lookup(1, b"a"), CacheOutcome::Hit(_)));
        let evicted = cache.insert(1, b"c", 200, None, b"rc");
        assert_eq!(evicted, 1);
        assert!(matches!(cache.lookup(1, b"b"), CacheOutcome::Miss { .. }));
        assert!(matches!(cache.lookup(1, b"a"), CacheOutcome::Hit(_)));
        assert!(matches!(cache.lookup(1, b"c"), CacheOutcome::Hit(_)));
    }

    #[test]
    fn byte_budget_bounds_the_cache() {
        let cache = cache(64, 100);
        cache.insert(1, b"aaaaaaaa", 200, None, &[b'x'; 24]); // 32 bytes
        cache.insert(1, b"bbbbbbbb", 200, None, &[b'y'; 24]); // 32 bytes -> 64 total
        assert_eq!(cache.bytes(), 64);
        let evicted = cache.insert(1, b"cccccccc", 200, None, &[b'z'; 24]);
        assert_eq!(evicted, 1, "budget full: LRU entry evicted");
        assert!(cache.bytes() <= 64);
        // An entry bigger than the whole budget is refused outright.
        assert_eq!(cache.insert(1, b"dddddddd", 200, None, &[b'w'; 100]), 0);
        assert!(matches!(
            cache.lookup(1, b"dddddddd"),
            CacheOutcome::Miss { .. }
        ));
    }

    #[test]
    fn disabled_cache_never_stores() {
        let cache = ResultCache::new(CacheConfig {
            enabled: false,
            ..CacheConfig::default()
        });
        cache.insert(1, b"a", 200, None, b"ra");
        assert!(matches!(
            cache.lookup(1, b"a"),
            CacheOutcome::Miss { invalidated: 0 }
        ));
        assert_eq!(cache.len(), 0);
    }
}
