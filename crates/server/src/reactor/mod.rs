//! The event-driven HTTP front end: an epoll readiness loop serving the
//! read path of [`CmdlService`](crate::CmdlService) with request coalescing and a
//! generation-keyed result cache.
//!
//! # Why a reactor
//!
//! The thread-pool adapter in [`crate::http`] dedicates a blocking worker
//! thread to every live connection. That is simple and fast at small
//! fan-in, but a fleet of idle keep-alive connections pins a stack each —
//! the adapter *releases* idle connections on a read timeout precisely
//! because it cannot afford to hold them. The reactor inverts the cost
//! model: one loop thread owns every socket through a vendored epoll shim
//! ([`sys`]), each connection is a small state machine ([`conn::Conn`])
//! wrapping a resumable parser ([`parser::RequestParser`]), and ten
//! thousand idle connections cost tens of megabytes, not ten thousand
//! threads.
//!
//! # Request flow
//!
//! Readiness events are processed in **ticks** (one `epoll_wait` batch):
//!
//! 1. Readable connections feed their bytes into the resumable parser;
//!    each completed request takes a sequence number on its connection
//!    (responses must leave in request order even when they complete out
//!    of order — [`conn::ResponseQueue`]).
//! 2. `GET /metrics`, unroutable paths, and unframeable requests are
//!    answered inline on the loop thread (identically to the thread-pool
//!    adapter, including metrics recording).
//! 3. Single `POST /query` requests resolve their tenant (the
//!    `/t/<name>/` path prefix; un-prefixed paths are the default tenant),
//!    reserve an in-flight admission slot, then probe that tenant's
//!    partition of the [`cache::ResultCache`] under the tenant's currently
//!    published generation: a hit completes inline with the cached
//!    envelope bytes (an `Arc` clone, no copy, no execution). Misses are
//!    **coalesced per tenant**: every missing `/query` for the same lake
//!    in the same tick is gathered into one executor job that pins *one*
//!    snapshot and runs *one*
//!    [`CmdlService::execute_coalesced`](crate::CmdlService::execute_coalesced) sweep —
//!    per-profile candidate generation amortizes across concurrent
//!    requests exactly as it does across an explicit `/batch`. Cache
//!    partitions are keyed by tenant *incarnation* (name + epoch), so a
//!    dropped-then-recreated lake can never serve a previous life's
//!    entries.
//! 4. Everything else (mutations, `/batch`, `/stats`, lake management, …)
//!    dispatches to a small executor pool as an individual
//!    [`TenantHub::handle_json`](crate::TenantHub::handle_json) call —
//!    mutations keep routing through the owning tenant's writer gate, and
//!    the hub applies admission control and quota checks; the reactor owns
//!    read traffic, not write semantics.
//!
//! Completions return to the loop through an [`sys::EventFd`] wakeup and
//! are spliced into their connection's response queue.
//!
//! # Deadlines
//!
//! Three per-connection deadlines guard the loop, tracked in one lazy
//! binary heap: a **read deadline** armed when framing starts and *not*
//! refreshed by trickled bytes (a slow-loris peer dripping one header byte
//! per second is reaped after `read_deadline`, while idle keep-alive
//! connections are untouched); a **write deadline** while response bytes
//! are buffered; and an **idle timeout** for keep-alive sessions.

pub mod cache;
pub mod conn;
pub mod parser;
#[cfg(target_os = "linux")]
pub mod sys;

use std::time::Duration;

use crate::reactor::cache::CacheConfig;

/// Configuration of the reactor front end.
#[derive(Debug, Clone)]
pub struct ReactorConfig {
    /// Address to bind (`127.0.0.1:0` picks an ephemeral loopback port).
    pub addr: String,
    /// Open-connection cap; connections beyond it are shed with `429`.
    pub max_connections: usize,
    /// Executor threads running service calls off the loop thread.
    pub executor_threads: usize,
    /// Deadline for completing a request whose framing has started — the
    /// slow-loris bound. Also bounds how long a peer may take to drain
    /// buffered response bytes.
    pub read_deadline: Duration,
    /// How long an idle keep-alive connection is held before being reaped.
    pub idle_timeout: Duration,
    /// Result-cache sizing (set `enabled: false` to measure cold paths).
    pub cache: CacheConfig,
}

impl Default for ReactorConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            max_connections: 16_384,
            executor_threads: 4,
            read_deadline: Duration::from_secs(10),
            idle_timeout: Duration::from_secs(120),
            cache: CacheConfig::default(),
        }
    }
}

#[cfg(target_os = "linux")]
pub use serve::{serve_reactor, serve_reactor_hub, ReactorHandle};

#[cfg(target_os = "linux")]
mod serve {
    use std::cmp::Reverse;
    use std::collections::{BinaryHeap, HashMap};
    use std::io::{Read, Write};
    use std::net::{SocketAddr, TcpListener, TcpStream};
    use std::os::fd::AsRawFd;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::{mpsc, Arc, Mutex};
    use std::thread::JoinHandle;
    use std::time::{Duration, Instant};

    use cmdl_core::{DiscoveryQuery, ErrorCode};

    use super::ReactorConfig;
    use crate::api::{http_status, ServiceError, ServiceRequest, ServiceResponse};
    use crate::http::{format_response_head, route_envelope};
    use crate::metrics::ServiceMetrics;
    use crate::reactor::cache::{CacheOutcome, ResultCache};
    use crate::reactor::conn::{Body, Conn, ConnPhase, Outgoing};
    use crate::reactor::parser::{ParseEvent, ParsedRequest};
    use crate::reactor::sys::{
        Epoll, EpollEvent, EventFd, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP,
    };
    use crate::service::{serialize_response, CmdlService};
    use crate::tenants::{split_tenant, InflightPermit, Tenant, TenantHub, DEFAULT_TENANT};

    const TOKEN_LISTENER: u64 = u64::MAX;
    const TOKEN_WAKE: u64 = u64::MAX - 1;

    fn token_for(idx: usize, epoch: u32) -> u64 {
        (idx as u64) | ((epoch as u64) << 32)
    }

    fn slot_of(token: u64) -> usize {
        (token & 0xFFFF_FFFF) as usize
    }

    fn epoch_of(token: u64) -> u32 {
        (token >> 32) as u32
    }

    /// One `/query` awaiting the tick's coalesced execution.
    struct QueryItem {
        token: u64,
        seq: u64,
        body: Vec<u8>,
        keep_alive: bool,
        /// The tenant's admission slot, reserved on the loop thread before
        /// the cache probe and held until the coalesced execution finishes
        /// (released when the item drops).
        #[allow(dead_code)]
        permit: Option<InflightPermit>,
    }

    /// One tenant's cache-missing `/query` items gathered during the
    /// current tick — they coalesce into one executor job pinning one of
    /// *that tenant's* snapshots.
    struct TickGroup {
        tenant: Arc<Tenant>,
        cache: Arc<ResultCache>,
        items: Vec<QueryItem>,
    }

    /// Work shipped to the executor pool.
    enum Job {
        /// One non-`/query` request: splice + the hub's `handle_json`
        /// (admission control included), exactly the thread-pool path.
        Single {
            tenant: String,
            token: u64,
            seq: u64,
            envelope: String,
            keep_alive: bool,
        },
        /// Every cache-missing `/query` for one tenant gathered in one
        /// readiness tick.
        Coalesce {
            tenant: Arc<Tenant>,
            cache: Arc<ResultCache>,
            items: Vec<QueryItem>,
        },
    }

    /// A finished executor job item, headed back to the loop thread.
    struct Completion {
        token: u64,
        seq: u64,
        status: u16,
        body: Body,
        keep_alive: bool,
    }

    /// State shared between the handle, the loop thread, and the workers.
    struct Shared {
        shutdown: AtomicBool,
        /// Grace the loop grants in-flight work once it observes shutdown.
        drain_grace_ms: AtomicU64,
        wake: EventFd,
        completions: Mutex<Vec<Completion>>,
    }

    /// One connection slot. The epoch increments on every close so stale
    /// epoll events and late completions for a recycled slot are ignored.
    struct Slot {
        epoch: u32,
        conn: Option<Conn>,
    }

    /// A running reactor. Dropping the handle without calling
    /// [`shutdown`](ReactorHandle::shutdown) leaves the threads running for
    /// the process lifetime.
    pub struct ReactorHandle {
        addr: SocketAddr,
        shared: Arc<Shared>,
        loop_thread: Option<JoinHandle<()>>,
        workers: Vec<JoinHandle<()>>,
        hub: Arc<TenantHub>,
        cache: Arc<ResultCache>,
    }

    impl ReactorHandle {
        /// The bound address (useful with an ephemeral port).
        pub fn addr(&self) -> SocketAddr {
            self.addr
        }

        /// The *default tenant's* result-cache partition (tests inspect
        /// occupancy; sharing the `Arc` keeps it observable after
        /// shutdown). Other tenants' partitions live on the loop thread,
        /// keyed by incarnation; if the default lake is dropped and
        /// recreated, this handle keeps observing the retired partition.
        pub fn cache(&self) -> &Arc<ResultCache> {
            &self.cache
        }

        /// Graceful shutdown with a 30-second join bound: see
        /// [`shutdown_within`](ReactorHandle::shutdown_within).
        pub fn shutdown(self) -> bool {
            self.shutdown_within(Duration::from_secs(30))
        }

        /// Gracefully stop serving:
        ///
        /// 1. stop accepting and close idle keep-alive connections;
        /// 2. drain in-flight work — requests already parsed are executed
        ///    and answered with `Connection: close`, bounded by a grace
        ///    period (≤ 5 s, clamped to `timeout`);
        /// 3. join the loop and executor threads, bounded by `timeout`
        ///    (stragglers are detached rather than hanging shutdown);
        /// 4. flush the writer queue — acknowledged mutations are applied
        ///    and fsynced before this returns.
        ///
        /// Returns `true` when every thread joined within the bound.
        pub fn shutdown_within(mut self, timeout: Duration) -> bool {
            let deadline = Instant::now() + timeout;
            let grace = timeout.min(Duration::from_secs(5));
            self.shared
                .drain_grace_ms
                .store(grace.as_millis() as u64, Ordering::Relaxed);
            self.shared.shutdown.store(true, Ordering::Release);
            self.shared.wake.signal();
            let mut all_joined = true;
            if let Some(thread) = self.loop_thread.take() {
                all_joined &= join_within(thread, deadline);
            }
            for worker in self.workers.drain(..) {
                all_joined &= join_within(worker, deadline);
            }
            self.hub.flush_all();
            all_joined
        }
    }

    fn join_within(handle: JoinHandle<()>, deadline: Instant) -> bool {
        loop {
            if handle.is_finished() {
                let _ = handle.join();
                return true;
            }
            if Instant::now() >= deadline {
                return false; // detach: exits with the process
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    /// Bind and serve one [`CmdlService`](crate::CmdlService) through the
    /// reactor — single-tenant compatibility mode, wrapping the service as
    /// the default tenant of a [`TenantHub`](crate::TenantHub).
    pub fn serve_reactor(
        service: Arc<CmdlService>,
        config: ReactorConfig,
    ) -> std::io::Result<ReactorHandle> {
        serve_reactor_hub(TenantHub::single(service), config)
    }

    /// Bind and serve a [`TenantHub`](crate::TenantHub) — many named lakes
    /// behind one reactor, addressed by the `/t/<name>/` path prefix —
    /// through the epoll loop.
    pub fn serve_reactor_hub(
        hub: Arc<TenantHub>,
        config: ReactorConfig,
    ) -> std::io::Result<ReactorHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let epoll = Epoll::new()?;
        let wake = EventFd::new()?;
        epoll.add(listener.as_raw_fd(), EPOLLIN, TOKEN_LISTENER)?;
        epoll.add(wake.raw_fd(), EPOLLIN, TOKEN_WAKE)?;

        let shared = Arc::new(Shared {
            shutdown: AtomicBool::new(false),
            drain_grace_ms: AtomicU64::new(2_000),
            wake,
            completions: Mutex::new(Vec::new()),
        });
        // Pre-create the default tenant's cache partition so the handle
        // can expose it; the loop thread creates every other partition
        // lazily, keyed by tenant incarnation.
        let default_cache = Arc::new(ResultCache::new(config.cache.clone()));
        let mut caches = HashMap::new();
        if let Some(tenant) = hub.tenant(DEFAULT_TENANT) {
            caches.insert(
                DEFAULT_TENANT.to_string(),
                (tenant.epoch(), Arc::clone(&default_cache)),
            );
        }

        let (jobs_tx, jobs_rx) = mpsc::channel::<Job>();
        let jobs_rx = Arc::new(Mutex::new(jobs_rx));
        let mut workers = Vec::with_capacity(config.executor_threads.max(1));
        for _ in 0..config.executor_threads.max(1) {
            let hub = Arc::clone(&hub);
            let shared = Arc::clone(&shared);
            let jobs_rx = Arc::clone(&jobs_rx);
            workers.push(std::thread::spawn(move || {
                run_worker(&hub, &shared, &jobs_rx)
            }));
        }

        let reactor = Reactor {
            epoll,
            listener,
            slots: Vec::new(),
            free: Vec::new(),
            open: 0,
            heap: BinaryHeap::new(),
            dirty: Vec::new(),
            tick_queries: HashMap::new(),
            hub: Arc::clone(&hub),
            caches,
            shared: Arc::clone(&shared),
            jobs: jobs_tx,
            config,
            draining: None,
        };
        let loop_thread = std::thread::spawn(move || reactor.run());

        Ok(ReactorHandle {
            addr,
            shared,
            loop_thread: Some(loop_thread),
            workers,
            hub,
            cache: default_cache,
        })
    }

    // ---------------------------------------------------------------
    // Executor workers
    // ---------------------------------------------------------------

    fn run_worker(hub: &TenantHub, shared: &Shared, jobs: &Mutex<mpsc::Receiver<Job>>) {
        loop {
            // Standard shared-receiver pattern: the lock is held only while
            // *waiting*; job execution happens outside it, so workers run
            // concurrently.
            let job = match jobs.lock().unwrap_or_else(|p| p.into_inner()).recv() {
                Ok(job) => job,
                Err(_) => return, // loop thread gone: no more work
            };
            // Panic isolation: a panicking request costs its own job an
            // `Internal` envelope, not an executor thread.
            let owed: Vec<(u64, u64, bool)> = match &job {
                Job::Single {
                    token,
                    seq,
                    keep_alive,
                    ..
                } => vec![(*token, *seq, *keep_alive)],
                Job::Coalesce { items, .. } => items
                    .iter()
                    .map(|i| (i.token, i.seq, i.keep_alive))
                    .collect(),
            };
            let completions =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| execute_job(hub, job)))
                    .unwrap_or_else(|_| {
                        let body = serialize_response(&ServiceResponse::failure(
                            ServiceError::new(ErrorCode::Internal),
                        ));
                        owed.into_iter()
                            .map(|(token, seq, keep_alive)| Completion {
                                token,
                                seq,
                                status: 500,
                                body: Body::Owned(body.clone()),
                                keep_alive,
                            })
                            .collect()
                    });
            shared
                .completions
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .extend(completions);
            shared.wake.signal();
        }
    }

    fn execute_job(hub: &TenantHub, job: Job) -> Vec<Completion> {
        match job {
            Job::Single {
                tenant,
                token,
                seq,
                envelope,
                keep_alive,
            } => {
                // The hub applies admission control, quota checks, and both
                // the tenant-labeled and global metric recordings.
                let response = hub.handle_json(&tenant, envelope.as_bytes());
                let status = response.error_code().map(http_status).unwrap_or(200);
                vec![Completion {
                    token,
                    seq,
                    status,
                    body: Body::Owned(serialize_response(&response)),
                    keep_alive,
                }]
            }
            Job::Coalesce {
                tenant,
                cache,
                items,
            } => {
                let service = tenant.service();
                // Splice each body into the same `{"Query": …}` envelope the
                // thread-pool adapter builds, so a body that fails to parse
                // falls back to `handle_json` and yields the byte-identical
                // `MalformedRequest` envelope (and identical metrics).
                let mut queries: Vec<DiscoveryQuery> = Vec::with_capacity(items.len());
                let mut plan: Vec<Result<usize, String>> = Vec::with_capacity(items.len());
                for item in &items {
                    let envelope = format!("{{\"Query\":{}}}", String::from_utf8_lossy(&item.body));
                    match serde_json::from_str::<ServiceRequest>(&envelope) {
                        Ok(ServiceRequest::Query(query)) => {
                            plan.push(Ok(queries.len()));
                            queries.push(query);
                        }
                        _ => plan.push(Err(envelope)),
                    }
                }
                let started = Instant::now();
                let (generation, responses) = if queries.is_empty() {
                    (0, Vec::new())
                } else {
                    service.execute_coalesced(&queries)
                };
                let per_query_micros =
                    (started.elapsed().as_micros() as u64) / (queries.len().max(1) as u64);
                // `execute_coalesced` records per-query metrics into the
                // tenant's own counters; mirror them into the hub's global
                // totals when those are distinct (multi-tenant mode).
                let global: Option<&ServiceMetrics> =
                    (!Arc::ptr_eq(hub.metrics(), service.metrics_arc()))
                        .then(|| hub.metrics().as_ref());
                let mut response_iter = responses.into_iter();
                items
                    .iter()
                    .zip(plan)
                    .map(|(item, step)| {
                        let (response, cacheable) = match step {
                            Ok(_) => (response_iter.next().expect("response per query"), true),
                            Err(envelope) => {
                                let response = service.handle_json(envelope.as_bytes());
                                if let Some(global) = global {
                                    global.record_transport("malformed", response.error_code());
                                }
                                (response, false)
                            }
                        };
                        let status = response.error_code().map(http_status).unwrap_or(200);
                        let bytes = serialize_response(&response);
                        if cacheable {
                            if let Some(global) = global {
                                global.record("query", per_query_micros, response.error_code());
                            }
                            let evicted = cache.insert(
                                generation,
                                &item.body,
                                status,
                                response.error_code(),
                                &bytes,
                            );
                            if evicted > 0 {
                                service.metrics().record_cache_evicted(evicted);
                            }
                        }
                        Completion {
                            token: item.token,
                            seq: item.seq,
                            status,
                            body: Body::Owned(bytes),
                            keep_alive: item.keep_alive,
                        }
                    })
                    .collect()
            }
        }
    }

    // ---------------------------------------------------------------
    // The event loop
    // ---------------------------------------------------------------

    struct Reactor {
        epoll: Epoll,
        listener: TcpListener,
        slots: Vec<Slot>,
        free: Vec<usize>,
        open: usize,
        /// Lazily invalidated deadline heap: entries are validated against
        /// the connection's *current* deadline when they pop, so re-arming
        /// never needs to find and remove stale entries.
        heap: BinaryHeap<Reverse<(Instant, u64)>>,
        /// Connections whose response queues may have releasable items.
        dirty: Vec<u64>,
        /// `/query` cache misses gathered during the current tick, grouped
        /// by tenant name (each group coalesces into one executor job).
        tick_queries: HashMap<String, TickGroup>,
        hub: Arc<TenantHub>,
        /// Per-tenant result-cache partitions, keyed by name and tagged
        /// with the incarnation epoch they were created for; a recreated
        /// lake (new epoch) silently replaces its predecessor's partition.
        caches: HashMap<String, (u64, Arc<ResultCache>)>,
        shared: Arc<Shared>,
        jobs: mpsc::Sender<Job>,
        config: ReactorConfig,
        /// Set once shutdown is observed: the drain deadline.
        draining: Option<Instant>,
    }

    impl Reactor {
        fn run(mut self) {
            let mut events = vec![EpollEvent { events: 0, data: 0 }; 1024];
            let mut scratch = vec![0u8; 64 * 1024];
            loop {
                if self.draining.is_none() && self.shared.shutdown.load(Ordering::Acquire) {
                    self.begin_drain();
                }
                if let Some(deadline) = self.draining {
                    if self.open == 0 || Instant::now() >= deadline {
                        return;
                    }
                }
                let n = match self.epoll.wait(&mut events, Some(self.next_timeout())) {
                    Ok(n) => n,
                    Err(_) => continue,
                };
                let now = Instant::now();
                for event in &events[..n] {
                    match event.token() {
                        TOKEN_LISTENER => self.accept_ready(now),
                        TOKEN_WAKE => self.shared.wake.drain(),
                        token => self.conn_ready(token, event.readiness(), now, &mut scratch),
                    }
                }
                self.drain_completions();
                // The coalescing window closes with the tick: every /query
                // that missed the cache in this batch of readiness events
                // rides one executor job and one pinned snapshot.
                if !self.tick_queries.is_empty() {
                    for (_, group) in std::mem::take(&mut self.tick_queries) {
                        let _ = self.jobs.send(Job::Coalesce {
                            tenant: group.tenant,
                            cache: group.cache,
                            items: group.items,
                        });
                    }
                }
                self.pump_dirty(now);
                self.reap_deadlines(now);
            }
        }

        fn next_timeout(&self) -> Duration {
            let base = if self.draining.is_some() {
                Duration::from_millis(10)
            } else {
                Duration::from_millis(250)
            };
            match self.heap.peek() {
                Some(&Reverse((when, _))) => when
                    .saturating_duration_since(Instant::now())
                    .min(base)
                    .max(Duration::from_millis(1)),
                None => base,
            }
        }

        fn begin_drain(&mut self) {
            let grace = Duration::from_millis(self.shared.drain_grace_ms.load(Ordering::Relaxed));
            self.draining = Some(Instant::now() + grace);
            let _ = self.epoll.delete(self.listener.as_raw_fd());
            for idx in 0..self.slots.len() {
                let is_idle = self.slots[idx]
                    .conn
                    .as_ref()
                    .map(|c| c.phase() == ConnPhase::Idle)
                    .unwrap_or(false);
                if is_idle {
                    self.close(idx);
                }
            }
        }

        fn accept_ready(&mut self, now: Instant) {
            loop {
                match self.listener.accept() {
                    Ok((stream, _)) => {
                        if self.draining.is_some() || self.open >= self.config.max_connections {
                            self.shed(stream);
                            continue;
                        }
                        let _ = stream.set_nodelay(true);
                        if stream.set_nonblocking(true).is_err() {
                            continue;
                        }
                        let idx = match self.free.pop() {
                            Some(idx) => idx,
                            None => {
                                self.slots.push(Slot {
                                    epoch: 0,
                                    conn: None,
                                });
                                self.slots.len() - 1
                            }
                        };
                        let interest = EPOLLIN | EPOLLRDHUP;
                        let token = token_for(idx, self.slots[idx].epoch);
                        if self.epoll.add(stream.as_raw_fd(), interest, token).is_err() {
                            self.free.push(idx);
                            continue;
                        }
                        self.slots[idx].conn = Some(Conn::new(stream, now, interest));
                        self.open += 1;
                        self.hub.metrics().reactor_conn_opened();
                        self.arm_deadline(idx, now);
                    }
                    Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(ref e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => break,
                }
            }
        }

        /// Answer `429 Overloaded` to a connection over the cap, best
        /// effort (the envelope fits the socket send buffer), and close.
        fn shed(&self, stream: TcpStream) {
            self.hub
                .metrics()
                .record_transport("shed", Some(ErrorCode::Overloaded));
            let response = ServiceResponse::failure(ServiceError::with_subject(
                ErrorCode::Overloaded,
                "connection limit reached",
            ));
            let body = serialize_response(&response);
            let head = format_response_head(429, "application/json", body.len(), false);
            let mut stream = stream;
            let _ = stream.set_nonblocking(true);
            let _ = stream
                .write_all(head.as_bytes())
                .and_then(|()| stream.write_all(&body));
            let _ = stream.shutdown(std::net::Shutdown::Write);
        }

        fn conn_ready(&mut self, token: u64, readiness: u32, now: Instant, scratch: &mut [u8]) {
            let idx = slot_of(token);
            if idx >= self.slots.len()
                || self.slots[idx].epoch != epoch_of(token)
                || self.slots[idx].conn.is_none()
            {
                return; // stale event for a recycled slot
            }
            if readiness & (EPOLLERR | EPOLLHUP) != 0 {
                self.close(idx);
                return;
            }
            if readiness & (EPOLLIN | EPOLLRDHUP) != 0 {
                self.readable(idx, token, now, scratch);
            }
            if self.slots[idx].conn.is_some() && readiness & EPOLLOUT != 0 {
                self.dirty.push(token);
            }
        }

        fn readable(&mut self, idx: usize, token: u64, now: Instant, scratch: &mut [u8]) {
            let mut failed = false;
            {
                let conn = self.slots[idx].conn.as_mut().expect("live conn");
                loop {
                    match conn.stream.read(scratch) {
                        Ok(0) => {
                            conn.eof = true;
                            break;
                        }
                        Ok(n) => {
                            if conn.stop_after.is_some() {
                                // A close-forcing request already stops the
                                // session: discard pipelined bytes behind it
                                // (reading them out avoids an RST racing the
                                // final response).
                                continue;
                            }
                            if conn.parser.feed(&scratch[..n]).is_err() {
                                // Framing violation: the stream position is
                                // undefined, so close without a response —
                                // the same observable behavior as the
                                // thread-pool adapter.
                                failed = true;
                                break;
                            }
                        }
                        Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                        Err(ref e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                        Err(_) => {
                            failed = true;
                            break;
                        }
                    }
                }
            }
            if failed {
                self.close(idx);
                return;
            }
            loop {
                let conn = self.slots[idx].conn.as_mut().expect("live conn");
                let Some(event) = conn.parser.next_event() else {
                    break;
                };
                if conn.stop_after.is_some() {
                    continue; // pipelined behind a forced close: dropped
                }
                let seq = conn.queue.assign();
                match event {
                    ParseEvent::Continue100 => {
                        conn.queue
                            .complete(seq, Outgoing::Raw(b"HTTP/1.1 100 Continue\r\n\r\n"));
                        self.dirty.push(token);
                    }
                    ParseEvent::Request(request) => {
                        if !request.keep_alive {
                            conn.stop_after = Some(seq);
                        }
                        self.dispatch(idx, token, seq, request);
                    }
                }
            }
            {
                let conn = self.slots[idx].conn.as_mut().expect("live conn");
                if conn.parser.mid_request() {
                    // Slow-loris guard: armed when framing starts, never
                    // refreshed by subsequent trickled bytes.
                    if conn.read_deadline.is_none() {
                        conn.read_deadline = Some(now + self.config.read_deadline);
                    }
                } else {
                    conn.read_deadline = None;
                }
            }
            self.dirty.push(token);
            self.arm_deadline(idx, now);
        }

        /// Route one parsed request: inline for transport-level answers and
        /// cache hits, executor job otherwise. The tenant prefix is split
        /// off the path first; un-prefixed paths address the default
        /// tenant, exactly as in the thread-pool adapter.
        fn dispatch(&mut self, idx: usize, token: u64, seq: u64, request: ParsedRequest) {
            let hub = Arc::clone(&self.hub);
            if request.unsupported_encoding {
                let response = ServiceResponse::failure(ServiceError::with_subject(
                    ErrorCode::MalformedRequest,
                    "transfer-encoding is not supported; frame bodies with content-length",
                ));
                hub.metrics()
                    .record_transport("malformed", Some(ErrorCode::MalformedRequest));
                self.complete_local(
                    idx,
                    token,
                    seq,
                    Outgoing::Response {
                        status: 400,
                        content_type: "application/json",
                        body: Body::Owned(serialize_response(&response)),
                        keep_alive: false,
                    },
                );
                return;
            }
            let (tenant_name, path) = split_tenant(&request.path);
            if (request.method.as_str(), path) == ("GET", "/metrics") {
                // Render before recording, like the thread-pool adapter: the
                // scrape does not count itself. The exposition is hub-wide
                // (global totals + every tenant's labeled series) whichever
                // prefix it was scraped through.
                let out = hub.render_metrics();
                hub.metrics().record_transport("metrics", None);
                self.complete_local(
                    idx,
                    token,
                    seq,
                    Outgoing::Response {
                        status: 200,
                        content_type: "text/plain; version=0.0.4",
                        body: Body::Owned(out.into_bytes()),
                        keep_alive: request.keep_alive,
                    },
                );
                return;
            }
            if (request.method.as_str(), path) == ("POST", "/query") {
                let Some(tenant) = hub.tenant(tenant_name) else {
                    let response = ServiceResponse::failure(ServiceError::with_subject(
                        ErrorCode::UnknownTenant,
                        tenant_name,
                    ));
                    hub.metrics()
                        .record_transport("query", Some(ErrorCode::UnknownTenant));
                    self.complete_local(
                        idx,
                        token,
                        seq,
                        Outgoing::Response {
                            status: http_status(ErrorCode::UnknownTenant),
                            content_type: "application/json",
                            body: Body::Owned(serialize_response(&response)),
                            keep_alive: request.keep_alive,
                        },
                    );
                    return;
                };
                // Admission happens before the cache probe: a tenant at its
                // concurrency cap is shed with the typed 429 even for work
                // the cache could answer, keeping `max_inflight` an honest
                // bound on the tenant's share of the server.
                let permit = match tenant.admit() {
                    Ok(permit) => permit,
                    Err(error) => {
                        tenant
                            .service()
                            .metrics()
                            .record_transport("query", Some(error.code));
                        if !Arc::ptr_eq(hub.metrics(), tenant.service().metrics_arc()) {
                            hub.metrics().record_transport("query", Some(error.code));
                        }
                        let status = http_status(error.code);
                        let response = ServiceResponse::failure(error);
                        self.complete_local(
                            idx,
                            token,
                            seq,
                            Outgoing::Response {
                                status,
                                content_type: "application/json",
                                body: Body::Owned(serialize_response(&response)),
                                keep_alive: request.keep_alive,
                            },
                        );
                        return;
                    }
                };
                let cache = self.cache_for(&tenant);
                let generation = tenant.service().published_generation();
                let distinct = !Arc::ptr_eq(hub.metrics(), tenant.service().metrics_arc());
                match cache.lookup(generation, &request.body) {
                    CacheOutcome::Hit(cached) => {
                        let metrics = tenant.service().metrics();
                        metrics.record_cache_hit();
                        // A hit is still a served query: keep the request
                        // counters truthful (sub-microsecond latency).
                        metrics.record("query", 1, cached.error);
                        if distinct {
                            hub.metrics().record_cache_hit();
                            hub.metrics().record("query", 1, cached.error);
                        }
                        self.complete_local(
                            idx,
                            token,
                            seq,
                            Outgoing::Response {
                                status: cached.status,
                                content_type: "application/json",
                                body: Body::Shared(Arc::clone(&cached.body)),
                                keep_alive: request.keep_alive,
                            },
                        );
                        // The permit drops here: a cache hit occupies its
                        // admission slot only for the probe.
                    }
                    CacheOutcome::Miss { invalidated } => {
                        let metrics = tenant.service().metrics();
                        metrics.record_cache_miss();
                        if invalidated > 0 {
                            metrics.record_cache_invalidated(invalidated);
                        }
                        if distinct {
                            hub.metrics().record_cache_miss();
                            if invalidated > 0 {
                                hub.metrics().record_cache_invalidated(invalidated);
                            }
                        }
                        let group = self
                            .tick_queries
                            .entry(tenant.name().to_string())
                            .or_insert_with(|| TickGroup {
                                tenant: Arc::clone(&tenant),
                                cache,
                                items: Vec::new(),
                            });
                        group.items.push(QueryItem {
                            token,
                            seq,
                            body: request.body,
                            keep_alive: request.keep_alive,
                            permit: Some(permit),
                        });
                    }
                }
                return;
            }
            let body = String::from_utf8_lossy(&request.body);
            match route_envelope(&request.method, path, &body) {
                None => {
                    let response = ServiceResponse::failure(ServiceError::with_subject(
                        ErrorCode::UnknownRoute,
                        format!("{} {}", request.method, request.path),
                    ));
                    hub.metrics()
                        .record_transport("unknown_route", Some(ErrorCode::UnknownRoute));
                    self.complete_local(
                        idx,
                        token,
                        seq,
                        Outgoing::Response {
                            status: http_status(ErrorCode::UnknownRoute),
                            content_type: "application/json",
                            body: Body::Owned(serialize_response(&response)),
                            keep_alive: request.keep_alive,
                        },
                    );
                }
                Some(envelope) => {
                    let _ = self.jobs.send(Job::Single {
                        tenant: tenant_name.to_string(),
                        token,
                        seq,
                        envelope,
                        keep_alive: request.keep_alive,
                    });
                }
            }
        }

        /// The tenant's result-cache partition, created (or replaced) on
        /// first sight of an incarnation: the epoch tag guarantees a
        /// dropped-then-recreated lake starts from an empty partition, so
        /// entries from a previous life can never serve.
        fn cache_for(&mut self, tenant: &Arc<Tenant>) -> Arc<ResultCache> {
            match self.caches.get(tenant.name()) {
                Some((epoch, cache)) if *epoch == tenant.epoch() => Arc::clone(cache),
                _ => {
                    let cache = Arc::new(ResultCache::new(self.config.cache.clone()));
                    self.caches.insert(
                        tenant.name().to_string(),
                        (tenant.epoch(), Arc::clone(&cache)),
                    );
                    cache
                }
            }
        }

        fn complete_local(&mut self, idx: usize, token: u64, seq: u64, item: Outgoing) {
            let conn = self.slots[idx].conn.as_mut().expect("live conn");
            conn.queue.complete(seq, item);
            self.dirty.push(token);
        }

        fn drain_completions(&mut self) {
            let completions = std::mem::take(
                &mut *self
                    .shared
                    .completions
                    .lock()
                    .unwrap_or_else(|p| p.into_inner()),
            );
            for completion in completions {
                let idx = slot_of(completion.token);
                if idx >= self.slots.len() || self.slots[idx].epoch != epoch_of(completion.token) {
                    continue; // the connection died while the job ran
                }
                let Some(conn) = self.slots[idx].conn.as_mut() else {
                    continue;
                };
                conn.queue.complete(
                    completion.seq,
                    Outgoing::Response {
                        status: completion.status,
                        content_type: "application/json",
                        body: completion.body,
                        keep_alive: completion.keep_alive,
                    },
                );
                self.dirty.push(completion.token);
            }
        }

        /// Release in-order responses into write buffers and flush.
        fn pump_dirty(&mut self, now: Instant) {
            let dirty = std::mem::take(&mut self.dirty);
            for token in dirty {
                let idx = slot_of(token);
                if idx >= self.slots.len()
                    || self.slots[idx].epoch != epoch_of(token)
                    || self.slots[idx].conn.is_none()
                {
                    continue; // closed earlier in this pass (duplicates are fine)
                }
                self.pump_conn(idx, now);
            }
        }

        fn pump_conn(&mut self, idx: usize, now: Instant) {
            let force_close = self.draining.is_some();
            let mut close = false;
            {
                let conn = self.slots[idx].conn.as_mut().expect("live conn");
                while let Some(item) = conn.queue.pop_in_order() {
                    conn.enqueue_write(item, force_close);
                }
                match conn.try_flush() {
                    Err(_) => close = true,
                    Ok(true) => {
                        conn.write_deadline = None;
                        if conn.close_after_flush || (conn.eof && conn.queue.pending() == 0) {
                            close = true;
                        } else if conn.phase() == ConnPhase::Idle {
                            conn.idle_since = now;
                        }
                    }
                    Ok(false) => {
                        if conn.write_deadline.is_none() {
                            conn.write_deadline = Some(now + self.config.read_deadline);
                        }
                    }
                }
            }
            if close {
                self.close(idx);
                return;
            }
            self.update_interest(idx);
            self.arm_deadline(idx, now);
        }

        fn update_interest(&mut self, idx: usize) {
            let token = token_for(idx, self.slots[idx].epoch);
            let conn = self.slots[idx].conn.as_mut().expect("live conn");
            let mut want = EPOLLRDHUP;
            if !conn.eof {
                want |= EPOLLIN;
            }
            if conn.unflushed() > 0 {
                want |= EPOLLOUT;
            }
            if want != conn.interest
                && self
                    .epoll
                    .modify(conn.stream.as_raw_fd(), want, token)
                    .is_ok()
            {
                conn.interest = want;
            }
        }

        fn arm_deadline(&mut self, idx: usize, _now: Instant) {
            let token = token_for(idx, self.slots[idx].epoch);
            let Some(conn) = self.slots[idx].conn.as_ref() else {
                return;
            };
            if let Some(when) = conn.deadline(Some(self.config.idle_timeout)) {
                self.heap.push(Reverse((when, token)));
            }
        }

        fn reap_deadlines(&mut self, now: Instant) {
            while let Some(&Reverse((when, token))) = self.heap.peek() {
                if when > now {
                    break;
                }
                self.heap.pop();
                let idx = slot_of(token);
                if idx >= self.slots.len() || self.slots[idx].epoch != epoch_of(token) {
                    continue; // stale: the connection already closed
                }
                let Some(conn) = self.slots[idx].conn.as_ref() else {
                    continue;
                };
                // Lazy invalidation: re-derive the connection's *current*
                // deadline — activity since arming may have pushed it out.
                match conn.deadline(Some(self.config.idle_timeout)) {
                    Some(actual) if actual <= now => {
                        self.hub.metrics().reactor_conn_reaped();
                        self.close(idx);
                    }
                    Some(actual) => self.heap.push(Reverse((actual, token))),
                    None => {}
                }
            }
        }

        fn close(&mut self, idx: usize) {
            let Some(conn) = self.slots[idx].conn.take() else {
                return;
            };
            let _ = self.epoll.delete(conn.stream.as_raw_fd());
            self.slots[idx].epoch = self.slots[idx].epoch.wrapping_add(1);
            self.free.push(idx);
            self.open -= 1;
            self.hub.metrics().reactor_conn_closed();
        }
    }
}
