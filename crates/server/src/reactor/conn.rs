//! Per-connection state for the reactor: the resumable parser, the
//! response reorder queue, the buffered write side, and the deadline
//! bookkeeping. One [`Conn`] is a few hundred bytes at idle — the whole
//! point of the reactor is that ten thousand of these cost memory, not
//! threads.

use std::collections::BTreeMap;
use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Instant;

use crate::http::MAX_RETAINED_BODY_BYTES;
use crate::reactor::parser::RequestParser;

/// Response body bytes: owned (freshly serialized) or shared (cache hit).
#[derive(Debug, Clone)]
pub enum Body {
    /// Freshly serialized envelope bytes.
    Owned(Vec<u8>),
    /// Cached envelope bytes (an `Arc` clone, no copy).
    Shared(Arc<[u8]>),
}

impl Body {
    fn as_bytes(&self) -> &[u8] {
        match self {
            Body::Owned(v) => v,
            Body::Shared(a) => a,
        }
    }
}

/// One sequenced item waiting to be written.
#[derive(Debug)]
pub enum Outgoing {
    /// Pre-framed raw bytes (the `100 Continue` interim response).
    Raw(&'static [u8]),
    /// A framed response: status line + headers are composed at write time
    /// so `Connection:` reflects the keep-alive decision of *this* moment
    /// (a draining reactor closes sessions the same way the thread pool
    /// does).
    Response {
        /// HTTP status code.
        status: u16,
        /// `Content-Type` header value.
        content_type: &'static str,
        /// Envelope bytes.
        body: Body,
        /// Whether the *request* allowed keep-alive (the reactor may still
        /// force close when draining).
        keep_alive: bool,
    },
}

/// In-order assembly of out-of-order completions.
///
/// Pipelined requests on one connection may finish out of order (a cache
/// hit completes on the loop thread while an earlier mutation is still in
/// the writer gate), but HTTP/1.1 responses must go out in request order.
/// Every parsed request (and interim-response obligation) takes a sequence
/// number at parse time; completions are stashed here and released only
/// in sequence.
#[derive(Debug, Default)]
pub struct ResponseQueue {
    next_assign: u64,
    next_release: u64,
    ready: BTreeMap<u64, Outgoing>,
}

impl ResponseQueue {
    /// Take the next sequence number (at parse time).
    pub fn assign(&mut self) -> u64 {
        let seq = self.next_assign;
        self.next_assign += 1;
        seq
    }

    /// Stash a completed item under its sequence number.
    pub fn complete(&mut self, seq: u64, item: Outgoing) {
        if seq >= self.next_release {
            self.ready.insert(seq, item);
        }
    }

    /// Pop the next in-sequence item, if it has completed.
    pub fn pop_in_order(&mut self) -> Option<Outgoing> {
        let item = self.ready.remove(&self.next_release)?;
        self.next_release += 1;
        Some(item)
    }

    /// Sequence numbers assigned but not yet released — work still owed to
    /// the peer.
    pub fn pending(&self) -> u64 {
        self.next_assign - self.next_release
    }
}

/// What a connection is currently waiting on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnPhase {
    /// At a request boundary, nothing owed: an idle keep-alive session.
    Idle,
    /// Mid-request or with responses still owed/buffered.
    Busy,
}

/// One reactor connection.
pub struct Conn {
    /// The non-blocking socket.
    pub stream: TcpStream,
    /// The resumable request parser.
    pub parser: RequestParser,
    /// Reorder queue for pipelined completions.
    pub queue: ResponseQueue,
    /// Buffered response bytes not yet accepted by the socket.
    out: Vec<u8>,
    out_pos: usize,
    /// No events after this sequence number are served: set when a request
    /// forces close (`Connection: close`, unframeable encoding) so
    /// pipelined bytes behind it are dropped exactly like the thread-pool
    /// adapter, which stops reading after such a request.
    pub stop_after: Option<u64>,
    /// Peer sent EOF; flush what is owed, then close.
    pub eof: bool,
    /// Close once the write buffer drains.
    pub close_after_flush: bool,
    /// Deadline for completing the request currently being framed
    /// (slow-loris guard: armed when framing starts, *not* refreshed by
    /// trickled bytes).
    pub read_deadline: Option<Instant>,
    /// Deadline for the peer to drain buffered response bytes.
    pub write_deadline: Option<Instant>,
    /// When the connection last became idle (keep-alive reaping).
    pub idle_since: Instant,
    /// The epoll interest mask currently installed for this fd.
    pub interest: u32,
}

impl Conn {
    /// Wrap an accepted, already non-blocking stream.
    pub fn new(stream: TcpStream, now: Instant, interest: u32) -> Self {
        Self {
            stream,
            parser: RequestParser::new(),
            queue: ResponseQueue::default(),
            out: Vec::new(),
            out_pos: 0,
            stop_after: None,
            eof: false,
            close_after_flush: false,
            read_deadline: None,
            write_deadline: None,
            idle_since: now,
            interest,
        }
    }

    /// Append one in-order item to the write buffer. `force_close` folds
    /// the reactor-wide drain decision into the keep-alive header.
    /// Returns `false` when this response ends the session.
    pub fn enqueue_write(&mut self, item: Outgoing, force_close: bool) -> bool {
        match item {
            Outgoing::Raw(bytes) => {
                self.out.extend_from_slice(bytes);
                true
            }
            Outgoing::Response {
                status,
                content_type,
                body,
                keep_alive,
            } => {
                let body = body.as_bytes();
                let keep_alive = keep_alive && !force_close;
                let head =
                    crate::http::format_response_head(status, content_type, body.len(), keep_alive);
                self.out.reserve(head.len() + body.len());
                self.out.extend_from_slice(head.as_bytes());
                self.out.extend_from_slice(body);
                if !keep_alive {
                    self.close_after_flush = true;
                }
                keep_alive
            }
        }
    }

    /// Push buffered bytes into the socket until done or `WouldBlock`.
    /// `Ok(true)` means fully flushed; `Err` means the peer is gone.
    pub fn try_flush(&mut self) -> std::io::Result<bool> {
        while self.out_pos < self.out.len() {
            match self.stream.write(&self.out[self.out_pos..]) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::WriteZero,
                        "peer stopped accepting bytes",
                    ))
                }
                Ok(n) => self.out_pos += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        // Fully flushed: reset, and do not let one oversized response pin
        // its peak capacity on an idle keep-alive connection.
        self.out.clear();
        self.out_pos = 0;
        if self.out.capacity() > MAX_RETAINED_BODY_BYTES {
            self.out.shrink_to(MAX_RETAINED_BODY_BYTES);
        }
        Ok(true)
    }

    /// Bytes still buffered for the peer.
    pub fn unflushed(&self) -> usize {
        self.out.len() - self.out_pos
    }

    /// Is this connection an idle keep-alive session or does it owe work?
    pub fn phase(&self) -> ConnPhase {
        if self.parser.mid_request() || self.queue.pending() > 0 || self.unflushed() > 0 {
            ConnPhase::Busy
        } else {
            ConnPhase::Idle
        }
    }

    /// The earliest applicable deadline (read, write, or — for idle
    /// connections — `idle_since + idle_timeout`), or `None` when nothing
    /// is armed.
    pub fn deadline(&self, idle_timeout: Option<std::time::Duration>) -> Option<Instant> {
        let mut earliest: Option<Instant> = None;
        let mut fold = |candidate: Option<Instant>| {
            if let Some(c) = candidate {
                earliest = Some(match earliest {
                    Some(e) => e.min(c),
                    None => c,
                });
            }
        };
        fold(self.read_deadline);
        fold(self.write_deadline);
        if self.phase() == ConnPhase::Idle {
            fold(idle_timeout.map(|t| self.idle_since + t));
        }
        earliest
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn response(tag: u8) -> Outgoing {
        Outgoing::Response {
            status: 200,
            content_type: "application/json",
            body: Body::Owned(vec![tag]),
            keep_alive: true,
        }
    }

    fn tag_of(item: &Outgoing) -> u8 {
        match item {
            Outgoing::Response { body, .. } => body.as_bytes()[0],
            Outgoing::Raw(_) => 0xFF,
        }
    }

    #[test]
    fn out_of_order_completions_release_in_sequence() {
        let mut queue = ResponseQueue::default();
        let a = queue.assign();
        let b = queue.assign();
        let c = queue.assign();
        assert_eq!((a, b, c), (0, 1, 2));
        assert_eq!(queue.pending(), 3);

        // Completions arrive c, a, b.
        queue.complete(c, response(3));
        assert!(queue.pop_in_order().is_none(), "a and b still owed");
        queue.complete(a, response(1));
        assert_eq!(tag_of(&queue.pop_in_order().expect("a ready")), 1);
        assert!(queue.pop_in_order().is_none(), "b still owed");
        queue.complete(b, response(2));
        assert_eq!(tag_of(&queue.pop_in_order().expect("b ready")), 2);
        assert_eq!(tag_of(&queue.pop_in_order().expect("c ready")), 3);
        assert_eq!(queue.pending(), 0);
    }

    #[test]
    fn raw_interim_items_sequence_like_responses() {
        let mut queue = ResponseQueue::default();
        let req_a = queue.assign();
        let interim_b = queue.assign();
        let req_b = queue.assign();
        // The 100-continue interim is ready instantly but must not
        // overtake the response to the earlier pipelined request.
        queue.complete(interim_b, Outgoing::Raw(b"HTTP/1.1 100 Continue\r\n\r\n"));
        assert!(queue.pop_in_order().is_none());
        queue.complete(req_a, response(1));
        queue.complete(req_b, response(2));
        assert_eq!(tag_of(&queue.pop_in_order().expect("a")), 1);
        assert_eq!(tag_of(&queue.pop_in_order().expect("interim")), 0xFF);
        assert_eq!(tag_of(&queue.pop_in_order().expect("b")), 2);
    }
}
