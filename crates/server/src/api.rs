//! The service wire contract: typed requests in, one response envelope out.
//!
//! [`ServiceRequest`] is the single entry point of the service layer — every
//! operation a client can perform (discovery queries, lake mutations, admin
//! probes) is one variant, and every variant produces the same
//! [`ServiceResponse`] envelope carrying either a typed
//! [`ResponsePayload`] or a [`ServiceError`] with a stable machine-readable
//! [`ErrorCode`]. All types serde round-trip, so the contract is
//! bytes-in/bytes-out JSON: a handler is testable in-process without
//! sockets, and any transport (the bundled HTTP adapter, a CLI, a message
//! queue) is a thin framing layer over [`CmdlService::handle_json_bytes`].
//!
//! Error prose (`Display` strings) is deliberately *not* part of the
//! contract — [`ServiceError`] serializes the code and the offending
//! identifier only.
//!
//! [`CmdlService::handle_json_bytes`]: crate::service::CmdlService::handle_json_bytes

use serde::{Deserialize, Serialize};

use cmdl_core::{
    CmdlConfig, CmdlError, CmdlStats, DiscoveryQuery, ErrorCode, QueryResponse, ReplicaStatus,
};
use cmdl_datalake::{Document, Table};

/// One typed service request — the unified surface over the catalog
/// (replacing "link the crate and call methods" with "send a request").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ServiceRequest {
    /// Execute one discovery query against a pinned snapshot.
    Query(DiscoveryQuery),
    /// Execute a batch of queries against *one* pinned snapshot (rayon
    /// fan-out, PK-FK sweep amortized across the batch).
    QueryBatch(Vec<DiscoveryQuery>),
    /// Ingest a new table (delta-profiled, indexes updated in place).
    IngestTable(Table),
    /// Ingest a new document (corpus statistics maintained incrementally).
    IngestDocument(Document),
    /// Remove a live table by name (tombstoned everywhere).
    RemoveTable {
        /// The table name.
        name: String,
    },
    /// Remove a live document by index.
    RemoveDocument {
        /// The document index in the lake.
        index: usize,
    },
    /// Fold all delta state back into the dense layouts now.
    Compact,
    /// Introspection statistics of the current generation.
    Stats,
    /// Liveness probe.
    Health,
    /// Create a new named lake (tenant) in the multi-tenant hub. Only
    /// meaningful when served by a [`TenantHub`](crate::TenantHub); a bare
    /// single-lake service rejects it.
    CreateLake {
        /// The lake name (also the tenant id in `/t/<name>/...` routes).
        name: String,
        /// Catalog configuration for the new lake; the hub default when
        /// omitted.
        config: Option<CmdlConfig>,
        /// Per-lake quota overrides; limits the spec leaves unset (and the
        /// whole field when omitted) inherit the hub defaults.
        quotas: Option<LakeQuotas>,
    },
    /// Drop a named lake: unregister it, flush its catalog, and retire its
    /// persist directory. Pinned readers already inside the lake finish
    /// against their snapshot; new requests get `UnknownTenant`.
    DropLake {
        /// The lake name.
        name: String,
    },
    /// List every registered lake with its status (hub only).
    ListLakes,
    /// Rebuild this lake's catalog under a new configuration in the
    /// background (against a pinned snapshot), replay deltas that landed
    /// meanwhile, and atomically swap the result into the next published
    /// generation. Queries never block; at most one reconfiguration runs
    /// per lake at a time.
    Reconfigure(CmdlConfig),
    /// Re-run the wedged writer gate's panic reconciliation
    /// ([`Cmdl::recover_after_panic`](cmdl_core::Cmdl::recover_after_panic))
    /// and clear the wedged flag on success, so a wedged lake can be
    /// recovered online instead of by restart. A healthy gate answers with
    /// a cheap no-op success.
    Recover,
}

impl ServiceRequest {
    /// A short name for the request kind (logs, metrics, bench labels).
    pub fn kind(&self) -> &'static str {
        match self {
            ServiceRequest::Query(_) => "query",
            ServiceRequest::QueryBatch(_) => "query_batch",
            ServiceRequest::IngestTable(_) => "ingest_table",
            ServiceRequest::IngestDocument(_) => "ingest_document",
            ServiceRequest::RemoveTable { .. } => "remove_table",
            ServiceRequest::RemoveDocument { .. } => "remove_document",
            ServiceRequest::Compact => "compact",
            ServiceRequest::Stats => "stats",
            ServiceRequest::Health => "health",
            ServiceRequest::CreateLake { .. } => "create_lake",
            ServiceRequest::DropLake { .. } => "drop_lake",
            ServiceRequest::ListLakes => "list_lakes",
            ServiceRequest::Reconfigure(_) => "reconfigure",
            ServiceRequest::Recover => "recover",
        }
    }

    /// Does this request mutate the catalog (and therefore route through
    /// the writer gate)? Control-plane requests (`CreateLake`/`DropLake`/
    /// `ListLakes`), `Reconfigure`, and `Recover` are *not* queue
    /// mutations — they run on dedicated paths (the hub registry, the
    /// background-rebuild protocol, and the recovery path; `Recover` in
    /// particular must bypass the wedged-gate refusal it exists to clear).
    pub fn is_mutation(&self) -> bool {
        matches!(
            self,
            ServiceRequest::IngestTable(_)
                | ServiceRequest::IngestDocument(_)
                | ServiceRequest::RemoveTable { .. }
                | ServiceRequest::RemoveDocument { .. }
                | ServiceRequest::Compact
        )
    }
}

/// A wire-stable error: the machine-readable code plus the offending
/// identifier (table name, `table.column`, document index) when the error
/// concerns one. Never carries `Display` strings; the only free-form
/// subjects are diagnostic details for the validation codes, which clients
/// must not match on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceError {
    /// The stable error code.
    pub code: ErrorCode,
    /// The offending identifier (or, for validation codes, a free-form
    /// diagnostic detail), if any. Only `code` is stable — never match on
    /// subject text.
    pub subject: Option<String>,
}

impl ServiceError {
    /// An error with no subject.
    pub fn new(code: ErrorCode) -> Self {
        Self {
            code,
            subject: None,
        }
    }

    /// An error about a specific identifier.
    pub fn with_subject(code: ErrorCode, subject: impl Into<String>) -> Self {
        Self {
            code,
            subject: Some(subject.into()),
        }
    }
}

impl From<&CmdlError> for ServiceError {
    fn from(error: &CmdlError) -> Self {
        Self {
            code: error.code(),
            subject: error.subject(),
        }
    }
}

impl From<CmdlError> for ServiceError {
    fn from(error: CmdlError) -> Self {
        Self::from(&error)
    }
}

/// One outcome of a [`ServiceRequest::QueryBatch`] — exactly one of
/// `response`/`error` is set (per-query failures do not abort the batch).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchOutcome {
    /// The query response, on success.
    pub response: Option<QueryResponse>,
    /// The error, on failure.
    pub error: Option<ServiceError>,
}

/// The liveness payload of [`ServiceRequest::Health`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HealthReport {
    /// `"ok"` while the writer gate is healthy, `"degraded"` once it is
    /// wedged (reads still served from the last published generation,
    /// mutations rejected).
    pub status: String,
    /// The currently published catalog generation.
    pub generation: u64,
    /// Whether the writer gate is wedged — the explicit form of
    /// `status == "degraded"`, so clients need not string-match.
    pub wedged: bool,
    /// Whether a background reconfiguration is rebuilding this lake.
    pub reconfiguring: bool,
    /// Per-replica health on the replicated backend (name, health state,
    /// generation, lag, applied batches, resyncs). Empty on the single and
    /// sharded backends.
    pub replicas: Vec<ReplicaStatus>,
}

/// One lake's registry entry in a [`ResponsePayload::Lakes`] listing — the
/// stable JSON shape of per-tenant health.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LakeInfo {
    /// The lake name (tenant id).
    pub name: String,
    /// `"ok"` or `"degraded"` (mirrors [`HealthReport::status`]).
    pub status: String,
    /// The currently published catalog generation.
    pub generation: u64,
    /// Live tables in the lake.
    pub tables: usize,
    /// Live documents in the lake.
    pub documents: usize,
    /// Whether the writer gate is wedged (mutations rejected).
    pub wedged: bool,
    /// Whether a background reconfiguration is in flight.
    pub reconfiguring: bool,
}

/// The typed success payload of a [`ServiceResponse`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ResponsePayload {
    /// Payload of [`ServiceRequest::Query`].
    Query(QueryResponse),
    /// Payload of [`ServiceRequest::QueryBatch`]: outcomes in input order.
    QueryBatch(Vec<BatchOutcome>),
    /// Payload of [`ServiceRequest::IngestTable`].
    IngestedTable {
        /// The stable index of the ingested table.
        table: usize,
        /// The generation after the mutation.
        generation: u64,
    },
    /// Payload of [`ServiceRequest::IngestDocument`].
    IngestedDocument {
        /// The stable index of the ingested document.
        document: usize,
        /// The generation after the mutation.
        generation: u64,
    },
    /// Payload of [`ServiceRequest::RemoveTable`].
    RemovedTable {
        /// Number of elements (columns) tombstoned.
        elements: usize,
        /// The generation after the mutation.
        generation: u64,
    },
    /// Payload of [`ServiceRequest::RemoveDocument`].
    RemovedDocument {
        /// The generation after the mutation.
        generation: u64,
    },
    /// Payload of [`ServiceRequest::Compact`].
    Compacted {
        /// The generation after compaction.
        generation: u64,
    },
    /// Payload of [`ServiceRequest::Stats`].
    Stats(CmdlStats),
    /// Payload of [`ServiceRequest::Health`].
    Health(HealthReport),
    /// Payload of [`ServiceRequest::CreateLake`].
    LakeCreated {
        /// The created lake's name.
        name: String,
        /// Its initial published generation.
        generation: u64,
    },
    /// Payload of [`ServiceRequest::DropLake`].
    LakeDropped {
        /// The dropped lake's name.
        name: String,
    },
    /// Payload of [`ServiceRequest::ListLakes`]: every registered lake,
    /// sorted by name.
    Lakes(Vec<LakeInfo>),
    /// Payload of [`ServiceRequest::Reconfigure`].
    Reconfigured {
        /// The generation the rebuilt catalog was published at.
        generation: u64,
    },
    /// Payload of [`ServiceRequest::Recover`].
    Recovered {
        /// The published generation after recovery.
        generation: u64,
        /// Whether the gate was actually wedged (`false` means the request
        /// was a no-op on a healthy gate).
        was_wedged: bool,
    },
}

/// Wire-level per-lake quota overrides for [`ServiceRequest::CreateLake`].
/// Every limit is optional: `{"max_inflight": 2}` is a complete spec, and
/// whatever is left unset inherits the hub defaults (see
/// [`TenantQuotas`](crate::TenantQuotas)).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LakeQuotas {
    /// Maximum live tables in the lake.
    pub max_tables: Option<usize>,
    /// Maximum live documents in the lake.
    pub max_documents: Option<usize>,
    /// Maximum cumulative ingested payload bytes.
    pub max_ingest_bytes: Option<u64>,
    /// Maximum concurrently executing requests (the noisy-neighbor cap).
    pub max_inflight: Option<usize>,
}

/// The response envelope of every [`ServiceRequest`]: exactly one of
/// `payload`/`error` is set (`ok` mirrors which, for cheap client checks).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceResponse {
    /// `true` iff `payload` is set.
    pub ok: bool,
    /// The typed payload, on success.
    pub payload: Option<ResponsePayload>,
    /// The stable error, on failure.
    pub error: Option<ServiceError>,
}

impl ServiceResponse {
    /// A success envelope.
    pub fn success(payload: ResponsePayload) -> Self {
        Self {
            ok: true,
            payload: Some(payload),
            error: None,
        }
    }

    /// A failure envelope.
    pub fn failure(error: ServiceError) -> Self {
        Self {
            ok: false,
            payload: None,
            error: Some(error),
        }
    }

    /// The error code, if this is a failure.
    pub fn error_code(&self) -> Option<ErrorCode> {
        self.error.as_ref().map(|e| e.code)
    }
}

/// The HTTP status the bundled adapter maps an [`ErrorCode`] to (other
/// transports are free to ignore this).
pub fn http_status(code: ErrorCode) -> u16 {
    match code {
        ErrorCode::UnknownTable
        | ErrorCode::UnknownColumn
        | ErrorCode::UnknownDocument
        | ErrorCode::UnknownRoute
        | ErrorCode::UnknownTenant => 404,
        ErrorCode::DuplicateTable | ErrorCode::DuplicateTenant | ErrorCode::ReconfigurePending => {
            409
        }
        ErrorCode::InvalidQuery | ErrorCode::MalformedRequest => 400,
        ErrorCode::JointModelMissing | ErrorCode::EmptyTrainingData => 422,
        ErrorCode::Overloaded | ErrorCode::QuotaExceeded => 429,
        ErrorCode::Internal | ErrorCode::Persist => 500,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmdl_core::QueryBuilder;
    use cmdl_datalake::Column;

    #[test]
    fn requests_roundtrip_through_serde_json() {
        let requests = vec![
            ServiceRequest::Query(QueryBuilder::keyword("drug").top_k(3).build()),
            ServiceRequest::QueryBatch(vec![
                QueryBuilder::pkfk().build(),
                QueryBuilder::unionable("Drugs").build(),
            ]),
            ServiceRequest::IngestTable(Table::new("T", vec![Column::from_texts("c", ["x", "y"])])),
            ServiceRequest::IngestDocument(Document::new("t", "s", "text")),
            ServiceRequest::RemoveTable { name: "T".into() },
            ServiceRequest::RemoveDocument { index: 3 },
            ServiceRequest::Compact,
            ServiceRequest::Stats,
            ServiceRequest::Health,
            ServiceRequest::CreateLake {
                name: "research".into(),
                config: None,
                quotas: None,
            },
            ServiceRequest::CreateLake {
                name: "tuned".into(),
                config: Some(cmdl_core::CmdlConfig::fast()),
                quotas: Some(LakeQuotas {
                    max_inflight: Some(4),
                    ..LakeQuotas::default()
                }),
            },
            ServiceRequest::DropLake {
                name: "research".into(),
            },
            ServiceRequest::ListLakes,
            ServiceRequest::Reconfigure(cmdl_core::CmdlConfig::fast()),
            ServiceRequest::Recover,
        ];
        for request in requests {
            let json = serde_json::to_string(&request).unwrap();
            let back: ServiceRequest = serde_json::from_str(&json).unwrap();
            assert_eq!(back, request, "round-trip failed for {}", request.kind());
        }
    }

    #[test]
    fn mutation_classification() {
        assert!(ServiceRequest::Compact.is_mutation());
        assert!(ServiceRequest::RemoveTable { name: "T".into() }.is_mutation());
        assert!(!ServiceRequest::Stats.is_mutation());
        assert!(!ServiceRequest::Query(QueryBuilder::pkfk().build()).is_mutation());
        // Control-plane and reconfigure requests run on dedicated paths,
        // never through the writer-gate queue.
        assert!(!ServiceRequest::ListLakes.is_mutation());
        assert!(!ServiceRequest::DropLake { name: "x".into() }.is_mutation());
        assert!(!ServiceRequest::Reconfigure(cmdl_core::CmdlConfig::fast()).is_mutation());
        // Recover must bypass the writer queue: a wedged gate refuses
        // queued mutations, and Recover exists to un-wedge it.
        assert!(!ServiceRequest::Recover.is_mutation());
    }

    #[test]
    fn service_error_carries_code_and_subject_not_prose() {
        let error: ServiceError = CmdlError::UnknownColumn {
            table: "Drugs".into(),
            column: "NoCol".into(),
        }
        .into();
        assert_eq!(error.code, ErrorCode::UnknownColumn);
        assert_eq!(error.subject.as_deref(), Some("Drugs.NoCol"));
        let json = serde_json::to_string(&error).unwrap();
        assert!(
            !json.contains("unknown column"),
            "Display prose must stay off the wire: {json}"
        );
        let back: ServiceError = serde_json::from_str(&json).unwrap();
        assert_eq!(back, error);
    }

    #[test]
    fn every_error_code_maps_to_a_status() {
        for code in ErrorCode::ALL {
            let status = http_status(code);
            assert!((400..600).contains(&status), "{code:?} -> {status}");
        }
        assert_eq!(http_status(ErrorCode::Overloaded), 429);
        assert_eq!(http_status(ErrorCode::UnknownTable), 404);
        assert_eq!(http_status(ErrorCode::QuotaExceeded), 429);
        assert_eq!(http_status(ErrorCode::UnknownTenant), 404);
        assert_eq!(http_status(ErrorCode::DuplicateTenant), 409);
        assert_eq!(http_status(ErrorCode::ReconfigurePending), 409);
    }
}
