//! # cmdl-server
//!
//! The CMDL service layer: the public surface redesigned from "library of
//! methods" to "service of requests".
//!
//! * [`api`] — the wire contract: a typed [`ServiceRequest`] enum (query +
//!   ingest + admin) answered by one [`ServiceResponse`] envelope carrying
//!   either a payload or a stable machine-readable
//!   [`ErrorCode`](cmdl_core::ErrorCode).
//! * [`service`] — [`CmdlService`]: reads pin published snapshots and never
//!   block behind writers; mutations serialize through a flat-combining
//!   queue behind a single writer gate, with `delta_pressure`-triggered
//!   compaction inside the gate. With `shards = N` in the config the
//!   service runs a [`ShardedCmdl`](cmdl_core::ShardedCmdl) router instead:
//!   writes route to the owning shard's gate and reads fan out per query,
//!   with results bit-identical to the single-catalog backend. With
//!   `replicas = N` the writer gate ships every acked mutation as a
//!   checksummed delta batch to N read replicas
//!   ([`ReplicationGroup`](cmdl_core::ReplicationGroup)): reads route to
//!   replicas within the configured lag bound and degrade to the writer's
//!   snapshot when none qualify, and a wedged writer gate can be
//!   reconciled back into service with `Recover` (`POST /admin/recover`).
//! * [`metrics`] — lock-free counters and latency quantiles with a text
//!   exposition.
//! * [`backoff`] — the one retry policy: jittered exponential
//!   [`Backoff`] with deterministic seeding, used by the replication
//!   shipper and the bench clients.
//! * [`http`] — a std-only HTTP/1.1 adapter (no tokio): a
//!   `TcpListener` accept loop, a fixed worker-thread pool, and a bounded
//!   admission queue that sheds load with `429` instead of queueing
//!   unboundedly.
//! * [`reactor`] — the event-driven front end: an epoll readiness loop
//!   (vendored syscall shim, no `libc` crate) where each connection is a
//!   resumable-parser state machine instead of a thread, concurrent
//!   `/query` requests in one readiness tick coalesce into a single
//!   `execute_many` against one pinned snapshot, and a generation-keyed
//!   result cache answers repeated queries without executing at all.
//!   Serves the identical route surface, byte-for-byte.
//! * [`tenants`] — the multi-tenant control plane: a [`TenantHub`]
//!   registry of named lakes (each its own catalog, writer gate, persist
//!   directory, metrics, and result-cache partition) behind the same HTTP
//!   surface via the `/t/<name>/...` path prefix, with per-tenant quotas
//!   and admission control, and online `Reconfigure` that rebuilds a
//!   lake's indexes in the background and atomically swaps them in.
//!
//! In-process use needs no sockets at all:
//!
//! ```no_run
//! use cmdl_core::{Cmdl, CmdlConfig};
//! use cmdl_datalake::synth;
//! use cmdl_server::CmdlService;
//!
//! let service = CmdlService::new(Cmdl::build(synth::pharma().lake, CmdlConfig::fast()));
//! let response = service.handle_json_bytes(
//!     br#"{"Query": {"Keyword": {"text": "pemetrexed", "mode": "All",
//!          "options": {"top_k": 5, "offset": 0, "min_score": 0.0,
//!                      "weights": {"embedding": null, "containment": null,
//!                                  "name": null, "uniqueness": null}}}}}"#,
//! );
//! println!("{}", String::from_utf8_lossy(&response));
//! ```

#![warn(missing_docs)]

pub mod api;
pub mod backoff;
pub mod http;
pub mod metrics;
pub mod reactor;
pub mod service;
pub mod tenants;

pub use api::{
    http_status, BatchOutcome, HealthReport, LakeInfo, LakeQuotas, ResponsePayload, ServiceError,
    ServiceRequest, ServiceResponse,
};
pub use backoff::Backoff;
pub use http::{route_envelope, serve, serve_hub, HttpConfig, HttpHandle};
pub use metrics::ServiceMetrics;
pub use reactor::ReactorConfig;
#[cfg(target_os = "linux")]
pub use reactor::{serve_reactor, serve_reactor_hub, ReactorHandle};
pub use service::CmdlService;
pub use tenants::{split_tenant, TenantDefaults, TenantHub, TenantQuotas, DEFAULT_TENANT};
