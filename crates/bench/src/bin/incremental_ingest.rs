//! Incremental ingestion benchmark: delta-ingest throughput into a 90%
//! pre-built catalog versus a full batch rebuild, and query throughput
//! *while* the lake is being ingested (the HTAP-style workload the
//! delta/snapshot architecture exists for).
//!
//! Emits `target/reports/incremental_ingest.json`; the CI bench-smoke step
//! publishes it as `BENCH_incremental.json` and enforces the ≥5x
//! ingest-vs-rebuild floor.

use std::time::{Duration, Instant};

use cmdl_bench::{bench_config, emit, pharma_lake};
use cmdl_core::{Cmdl, SearchMode};
use cmdl_datalake::{DataLake, Document, Table};
use cmdl_eval::{ExperimentReport, MethodResult};

/// Rows of data carried by a delta batch (table rows + documents).
fn delta_rows(tables: &[Table], docs: &[Document]) -> usize {
    tables.iter().map(|t| t.num_rows()).sum::<usize>() + docs.len()
}

fn lake_of(name: &str, tables: &[Table], docs: &[Document]) -> DataLake {
    let mut lake = DataLake::new(name);
    for t in tables {
        lake.add_table(t.clone());
    }
    for d in docs {
        lake.add_document(d.clone());
    }
    lake
}

fn main() {
    let config = bench_config();
    let lake = pharma_lake().lake;
    let tables: Vec<Table> = lake.tables().to_vec();
    let docs: Vec<Document> = lake.documents().to_vec();
    let table_seed = (tables.len() * 9) / 10;
    let doc_seed = (docs.len() * 9) / 10;
    let delta_tables = &tables[table_seed..];
    let delta_docs = &docs[doc_seed..];

    // Query workload: drug names + document titles, as ad-hoc text.
    let queries: Vec<String> = tables
        .iter()
        .take(4)
        .flat_map(|t| t.columns.first())
        .flat_map(|c| c.values.iter().take(3))
        .map(|v| v.as_text())
        .chain(docs.iter().take(4).map(|d| d.title.clone()))
        .collect();

    // --- Full rebuild baseline (best of 2 to absorb CPU-steal spikes). ---
    let mut full_rebuild = f64::MAX;
    let mut full = None;
    for _ in 0..2 {
        let start = Instant::now();
        let system = Cmdl::build(lake.clone(), config.clone());
        full_rebuild = full_rebuild.min(start.elapsed().as_secs_f64());
        full = Some(system);
    }
    let full = full.expect("built at least once");

    // --- 90% pre-built catalog + 10% delta ingest. ---
    let seed_lake = lake_of("pharma-seed", &tables[..table_seed], &docs[..doc_seed]);
    let mut system = Cmdl::build(seed_lake, config.clone());

    let mut ingest_time = Duration::ZERO;
    let mut query_time = Duration::ZERO;
    let mut queries_run = 0usize;
    let run_queries = |system: &Cmdl, query_time: &mut Duration, queries_run: &mut usize| {
        let start = Instant::now();
        for q in &queries {
            let _ = system.content_search(q, SearchMode::Tables, 10);
            let _ = system.cross_modal_search_text(q, 5);
        }
        *query_time += start.elapsed();
        *queries_run += 2 * queries.len();
    };

    // Interleave: after every delta batch, run the query workload against
    // the live (delta-carrying) catalog.
    for table in delta_tables {
        let start = Instant::now();
        system
            .ingest_table(table.clone())
            .expect("unique table names");
        ingest_time += start.elapsed();
        run_queries(&system, &mut query_time, &mut queries_run);
    }
    for doc in delta_docs {
        let start = Instant::now();
        system
            .ingest_document(doc.clone())
            .expect("in-memory ingest cannot fail");
        ingest_time += start.elapsed();
        run_queries(&system, &mut query_time, &mut queries_run);
    }
    let qps_under_ingest = queries_run as f64 / query_time.as_secs_f64();

    let compact_start = Instant::now();
    system.compact();
    let compact_secs = compact_start.elapsed().as_secs_f64();

    // Steady-state QPS after compaction, for reference.
    let mut steady_time = Duration::ZERO;
    let mut steady_run = 0usize;
    for _ in 0..3 {
        run_queries(&system, &mut steady_time, &mut steady_run);
    }
    let qps_compacted = steady_run as f64 / steady_time.as_secs_f64();

    let ingest_secs = ingest_time.as_secs_f64();
    let rows = delta_rows(delta_tables, delta_docs);
    let elements = delta_tables.iter().map(|t| t.num_columns()).sum::<usize>() + delta_docs.len();
    let speedup = full_rebuild / ingest_secs;

    let mut report = ExperimentReport::new(
        "Incremental Ingest",
        format!(
            "Delta ingestion of the last {} tables + {} documents (10% of the pharma lake) \
             into a 90% pre-built catalog, vs a full batch rebuild of {} tables + {} documents. \
             Queries ({} content + cross-modal probes per batch) run against the live catalog \
             between delta batches.",
            delta_tables.len(),
            delta_docs.len(),
            tables.len(),
            docs.len(),
            2 * queries.len(),
        ),
    );
    report.push(
        MethodResult::new("Full rebuild (batch)")
            .with("Seconds", full_rebuild)
            .with("Elements", full.profiled.len() as f64),
    );
    report.push(
        MethodResult::new("Delta ingest (10%)")
            .with("Seconds", ingest_secs)
            .with("Elements", elements as f64)
            .with("Rows_per_sec", rows as f64 / ingest_secs)
            .with("Speedup_vs_rebuild", speedup),
    );
    report.push(MethodResult::new("Query QPS under ingest").with("Qps", qps_under_ingest));
    report.push(
        MethodResult::new("Compaction")
            .with("Seconds", compact_secs)
            .with("Qps_after", qps_compacted),
    );
    emit(&report);
}
