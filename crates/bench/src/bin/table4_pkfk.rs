//! Table 4: PK-FK join discovery — precision/recall of Aurum and CMDL on the
//! three Pharma databases (DrugBank-, ChEMBL-, and ChEBI-like schemas).

use std::collections::BTreeSet;

use cmdl_bench::{build_system, emit, pharma_lake};
use cmdl_datalake::benchmarks::pkfk_benchmark;
use cmdl_datalake::{Benchmark, BenchmarkId};
use cmdl_eval::{evaluate_pkfk, ExperimentReport, MethodResult, StructuredSystem};

/// Restrict a PK-FK benchmark to the links whose tables belong to one of the
/// three sub-databases.
fn restrict(benchmark: &Benchmark, tables: &[&str]) -> Benchmark {
    let mut restricted = benchmark.clone();
    for query in &mut restricted.queries {
        query.expected = query
            .expected
            .iter()
            .filter(|answer| tables.iter().any(|t| answer.starts_with(&format!("{t}."))))
            .cloned()
            .collect::<BTreeSet<String>>();
    }
    restricted
}

fn main() {
    let synth = pharma_lake();
    let benchmark = pkfk_benchmark(BenchmarkId::B2D, &synth);
    let cmdl = build_system(synth.lake);

    let databases: Vec<(&str, Vec<&str>)> = vec![
        (
            "DrugBank",
            vec![
                "Drugs",
                "Enzymes",
                "Enzyme_Targets",
                "Drug_Interactions",
                "Dosages",
                "Trials",
            ],
        ),
        ("ChEMBL", vec!["Compounds", "Assays", "Activities"]),
        ("ChEBI", vec!["Chemical_Entities", "Chemical_Relations"]),
    ];

    let mut report = ExperimentReport::new(
        "Table 4",
        "PK-FK join discovery per database: known links, and precision/recall of Aurum \
         (Jaccard inclusion) vs CMDL (set containment + schema similarity). D3L does not \
         compute PK-FK links.",
    );
    for (db, tables) in databases {
        let restricted = restrict(&benchmark, &tables);
        let known = restricted.queries[0].expected.len() as f64;
        let aurum = evaluate_pkfk(&cmdl, &restricted, StructuredSystem::Aurum);
        let ours = evaluate_pkfk(&cmdl, &restricted, StructuredSystem::Cmdl);
        report.push(
            MethodResult::new(format!("{db} (Aurum)"))
                .with("known_pkfk", known)
                .with("precision", aurum.precision)
                .with("recall", aurum.recall),
        );
        report.push(
            MethodResult::new(format!("{db} (CMDL)"))
                .with("known_pkfk", known)
                .with("precision", ours.precision)
                .with("recall", ours.recall),
        );
    }
    emit(&report);
}
