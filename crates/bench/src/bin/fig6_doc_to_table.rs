//! Figure 6: effectiveness of cross-modality (Doc→Table) discovery on
//! Benchmarks 1A, 1B, and 1C — precision/recall for the CMDL variants and all
//! keyword/containment/entity-matching baselines across a top-k sweep.

use cmdl_bench::{bench_config, emit, mlopen_lake, pharma_lake, ukopen_lake};
use cmdl_core::Cmdl;
use cmdl_datalake::benchmarks::doc_to_table_benchmark;
use cmdl_datalake::synth::{MlOpenScale, SyntheticLake};
use cmdl_datalake::BenchmarkId;
use cmdl_eval::{evaluate_doc2table, Doc2TableMethod, ExperimentReport, MethodResult};
use cmdl_weaklabel::GoldLabel;

fn gold_labels(cmdl: &Cmdl, synth: &SyntheticLake, ratio: f64) -> Vec<GoldLabel> {
    // Gold labels: a small fraction of the ground truth, expressed as
    // (document, column) pairs with positive/negative labels.
    let mut gold = Vec::new();
    let take = ((synth.truth.doc_to_table.len() as f64 * ratio).ceil() as usize).max(1);
    for (doc_idx, tables) in synth.truth.doc_to_table.iter().take(take) {
        let Some(doc_id) = cmdl.profiled.lake.document_id(*doc_idx) else {
            continue;
        };
        for table in tables.iter().take(2) {
            for col in cmdl.profiled.columns_of_table(table).into_iter().take(1) {
                gold.push(GoldLabel::new(doc_id.raw(), col.raw(), true));
            }
        }
        // A negative from an unrelated table.
        for table in cmdl.profiled.lake.tables() {
            if !tables.contains(&table.name) {
                if let Some(col) = cmdl.profiled.columns_of_table(&table.name).first() {
                    gold.push(GoldLabel::new(doc_id.raw(), col.raw(), false));
                }
                break;
            }
        }
    }
    gold
}

fn run_benchmark(label: &str, id: BenchmarkId, synth: SyntheticLake, ks: &[usize]) {
    let benchmark = doc_to_table_benchmark(id, &synth);
    let mut cmdl = Cmdl::build(synth.lake.clone(), bench_config());

    let mut report = ExperimentReport::new(
        format!("Figure 6 - Benchmark {label}"),
        format!(
            "Doc→Table precision/recall at k in {ks:?} for CMDL variants and baselines \
             ({} queries).",
            benchmark.num_queries()
        ),
    );

    // Baselines and the solo variant need no training.
    let untrained_methods = [
        Doc2TableMethod::CmdlSolo,
        Doc2TableMethod::ElasticBm25,
        Doc2TableMethod::ElasticLmDirichlet,
        Doc2TableMethod::ElasticContentOnly,
        Doc2TableMethod::ElasticSchemaOnly,
        Doc2TableMethod::Containment,
        Doc2TableMethod::EntityJaccard,
    ];
    for method in untrained_methods {
        let eval = evaluate_doc2table(&cmdl, &benchmark, method, ks);
        push_curve(&mut report, &eval.method, &eval.curve);
    }

    // Joint model without gold tuning.
    cmdl.train_joint(None);
    let eval = evaluate_doc2table(&cmdl, &benchmark, Doc2TableMethod::CmdlJoint, ks);
    push_curve(&mut report, eval.method.as_str(), &eval.curve);

    // Joint model with gold tuning.
    let gold = gold_labels(&cmdl, &synth, 0.1);
    cmdl.train_joint(Some(&gold));
    let eval = evaluate_doc2table(&cmdl, &benchmark, Doc2TableMethod::CmdlJointGold, ks);
    push_curve(
        &mut report,
        Doc2TableMethod::CmdlJointGold.label(),
        &eval.curve,
    );

    emit(&report);
}

fn push_curve(report: &mut ExperimentReport, method: &str, curve: &[cmdl_eval::PrPoint]) {
    let mut row = MethodResult::new(method);
    for point in curve {
        row = row
            .with(format!("P@{}", point.k), point.precision)
            .with(format!("R@{}", point.k), point.recall);
    }
    report.push(row);
}

fn main() {
    // Benchmark 1A: UK-Open, larger k sweep.
    run_benchmark(
        "1A (UK-Open)",
        BenchmarkId::B1A,
        ukopen_lake(),
        &[5, 15, 25],
    );
    // Benchmark 1B: Pharma.
    run_benchmark("1B (Pharma)", BenchmarkId::B1B, pharma_lake(), &[2, 6, 10]);
    // Benchmark 1C: ML-Open MS reviews.
    run_benchmark(
        "1C (ML-Open)",
        BenchmarkId::B1C,
        mlopen_lake(MlOpenScale::Medium),
        &[1, 3, 6],
    );
}
