//! Table 5: contribution of the individual unionability similarity measures —
//! relative recall (RR) and the fraction of queries answered, per measure and
//! for the CMDL ensemble, on Benchmarks 3A and 3B.

use std::collections::BTreeSet;

use cmdl_bench::{build_system, emit, pharma_lake, ukopen_lake};
use cmdl_core::UnionDiscovery;
use cmdl_datalake::benchmarks::unionable_benchmark;
use cmdl_datalake::synth::SyntheticLake;
use cmdl_datalake::{BenchmarkId, QueryInput};
use cmdl_eval::{relative_recall, ExperimentReport, MethodResult};

const MEASURES: [&str; 5] = ["name", "containment", "numeric", "semantic", "ensemble"];

fn run(label: &str, synth: SyntheticLake, id: BenchmarkId, k: usize) {
    let benchmark = unionable_benchmark(id, &synth);
    let cmdl = build_system(synth.lake);
    let union = UnionDiscovery::new(&cmdl.profiled, &cmdl.config);

    // For every measure, collect the true matches found across all queries.
    let mut found: Vec<BTreeSet<String>> = vec![BTreeSet::new(); MEASURES.len()];
    let mut answered: Vec<usize> = vec![0; MEASURES.len()];
    let mut num_queries = 0usize;
    for query in &benchmark.queries {
        let QueryInput::Table(table) = &query.input else {
            continue;
        };
        if cmdl.profiled.lake.table(table).is_none() || query.expected.is_empty() {
            continue;
        }
        num_queries += 1;
        for (m, measure) in MEASURES.iter().enumerate() {
            let results = union.unionable_tables_with(table, k, measure);
            let mut any = false;
            for r in results {
                if query.expected.contains(&r.table) {
                    found[m].insert(format!("{table}->{}", r.table));
                    any = true;
                }
            }
            if any {
                answered[m] += 1;
            }
        }
    }
    // Union of true matches found by any measure.
    let mut all: BTreeSet<String> = BTreeSet::new();
    for f in &found {
        all.extend(f.iter().cloned());
    }

    let mut report = ExperimentReport::new(
        format!("Table 5 - Benchmark {label}"),
        format!(
            "Relative recall (RR) of each unionability measure against the union of true \
             matches found by all measures, plus the fraction of the {num_queries} queries \
             answered (≥1 true match), at k = {k}."
        ),
    );
    for (m, measure) in MEASURES.iter().enumerate() {
        report.push(
            MethodResult::new(if *measure == "ensemble" {
                "CMDL ensemble"
            } else {
                measure
            })
            .with("RR", relative_recall(&found[m], &all))
            .with(
                "queries_answered_%",
                if num_queries == 0 {
                    0.0
                } else {
                    100.0 * answered[m] as f64 / num_queries as f64
                },
            ),
        );
    }
    emit(&report);
}

fn main() {
    run("3A (UK-Open)", ukopen_lake(), BenchmarkId::B3A, 10);
    run(
        "3B (DrugBank-Synthetic)",
        pharma_lake(),
        BenchmarkId::B3B,
        10,
    );
}
