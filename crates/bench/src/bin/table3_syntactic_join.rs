//! Table 3: syntactic join discovery — R-precision of Aurum, D3L, and CMDL on
//! Benchmarks 2A (UK-Open), 2B (Pharma), and 2C (ML-Open SS/MS/LS).

use cmdl_bench::{build_system, emit, mlopen_lake, pharma_lake, ukopen_lake};
use cmdl_datalake::benchmarks::syntactic_join_benchmark;
use cmdl_datalake::synth::{MlOpenScale, SyntheticLake};
use cmdl_datalake::BenchmarkId;
use cmdl_eval::{evaluate_join, ExperimentReport, MethodResult, StructuredSystem};

fn main() {
    let workloads: Vec<(&str, SyntheticLake)> = vec![
        ("2A Govt. data", ukopen_lake()),
        ("2B DrugBank", pharma_lake()),
        ("2C SS", mlopen_lake(MlOpenScale::Small)),
        ("2C MS", mlopen_lake(MlOpenScale::Medium)),
        ("2C LS", mlopen_lake(MlOpenScale::Large)),
    ];

    let mut rows: Vec<MethodResult> = vec![
        MethodResult::new("Aurum"),
        MethodResult::new("D3L"),
        MethodResult::new("CMDL"),
    ];
    for (label, synth) in workloads {
        let benchmark = syntactic_join_benchmark(BenchmarkId::B2B, &synth);
        let cmdl = build_system(synth.lake);
        for (row, system) in rows.iter_mut().zip([
            StructuredSystem::Aurum,
            StructuredSystem::D3l,
            StructuredSystem::Cmdl,
        ]) {
            let eval = evaluate_join(&cmdl, &benchmark, system);
            row.metrics.push((label.to_string(), eval.r_precision));
        }
    }

    let mut report = ExperimentReport::new(
        "Table 3",
        "Syntactic join discovery: precision = recall (R-precision, k = ground-truth size) \
         per workload. CMDL uses Jaccard set containment; Aurum and D3L use symmetric Jaccard.",
    );
    for row in rows {
        report.push(row);
    }
    emit(&report);
}
