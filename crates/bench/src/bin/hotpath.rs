//! Hot-path kernel benchmarks: the three storage/serialization layouts this
//! repo's query path rides on, each measured against its exact pre-overhaul
//! baseline **with a result-parity assertion inline** — a speedup only
//! counts if the fast path returns bit-identical output.
//!
//! 1. **BM25 block-max pruning** — top-k keyword probes over a corpus large
//!    enough to engage the document-at-a-time scan (> 2^16 docs), with a
//!    heavy-tailed term-frequency distribution (the realistic regime where
//!    most blocks cannot beat the top-k threshold). Pruned
//!    `search_with` vs the unpruned DAAT baseline.
//! 2. **ANN i8 pre-rank** — exhaustive cosine top-k over a large embedding
//!    store: `i8` scalar-quantized pre-rank + exact `f32` rerank vs the
//!    pure `f32` scan.
//! 3. **Wire serialization** — streaming zero-DOM encoding of a real
//!    `QueryBatch` service envelope (bench pharma lake, the mixed Q1–Q5
//!    workload) vs the build-the-`Json`-tree DOM path, in bytes/sec.
//!
//! Baseline and fast phases are interleaved round by round (best-of-7),
//! so shared-box load spikes hit both sides of each ratio.
//!
//! Emits `target/reports/hot_path.json`; the CI bench-smoke job publishes it
//! as `BENCH_hotpath.json` and enforces the ≥1.3× floors.

use std::time::Instant;

use cmdl_bench::{build_system, emit, pharma_lake};
use cmdl_core::{DiscoveryQuery, QueryBuilder, SearchMode};
use cmdl_eval::{ExperimentReport, MethodResult};
use cmdl_index::{AnnIndex, AnnIndexConfig, InvertedIndex, ScoringFunction};
use cmdl_server::{CmdlService, ServiceRequest};
use cmdl_text::BagOfWords;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

const ROUNDS: usize = 7;

/// Best-of-`ROUNDS` wall-clock seconds of a (baseline, fast) pair, with
/// the two phases *interleaved* round by round: on a shared box a load
/// spike then hits both sides of the ratio instead of skewing whichever
/// phase it landed on.
fn best_of_pair(mut baseline: impl FnMut(), mut fast: impl FnMut()) -> (f64, f64) {
    let (mut best_baseline, mut best_fast) = (f64::MAX, f64::MAX);
    for _ in 0..ROUNDS {
        let start = Instant::now();
        baseline();
        best_baseline = best_baseline.min(start.elapsed().as_secs_f64());
        let start = Instant::now();
        fast();
        best_fast = best_fast.min(start.elapsed().as_secs_f64());
    }
    (best_baseline, best_fast)
}

/// A synthetic corpus big enough for the DAAT scan (> 2^16 docs) with a
/// heavy-tailed tf distribution and varied document lengths.
fn bm25_corpus(rng: &mut ChaCha8Rng) -> InvertedIndex {
    let mut idx = InvertedIndex::new();
    for doc in 0..80_000u64 {
        let mut tokens: Vec<String> = Vec::new();
        // The hot term everyone matches, with a heavy tf tail.
        let tf = match doc % 1000 {
            0 => 16,
            n if n % 211 == 0 => 8,
            n if n % 47 == 0 => 3,
            _ => 1 + (doc % 2) as usize,
        };
        tokens.extend(std::iter::repeat_n("common".to_string(), tf));
        // A medium-frequency topic term.
        tokens.push(format!("topic{}", doc % 200));
        // Filler for doc-length variety.
        for f in 0..(doc % 7) {
            tokens.push(format!("filler{}_{f}", doc % 5000));
        }
        idx.add(
            doc,
            &BagOfWords::from_tokens(tokens.iter().map(String::as_str)),
        );
    }
    idx.finalize();
    let _ = rng;
    idx
}

fn bm25_row() -> MethodResult {
    let mut rng = ChaCha8Rng::seed_from_u64(0xB10C);
    let idx = bm25_corpus(&mut rng);
    let queries: Vec<BagOfWords> = (0..120)
        .map(|i| match i % 3 {
            0 => BagOfWords::from_tokens(["common"]),
            1 => {
                let topic = format!("topic{}", (i * 7) % 200);
                BagOfWords::from_tokens(["common", topic.as_str()])
            }
            _ => {
                let topic = format!("topic{}", (i * 13) % 200);
                BagOfWords::from_tokens([topic.as_str()])
            }
        })
        .collect();
    let scoring = ScoringFunction::default();

    // Parity first: the pruned scan must match the unpruned baseline
    // bit-for-bit on every query before any timing counts.
    for (qi, q) in queries.iter().enumerate() {
        assert_eq!(
            idx.search_with(q, 10, scoring),
            idx.search_unpruned(q, 10, scoring),
            "block-max pruning diverged on query {qi}"
        );
    }

    let (baseline_secs, pruned_secs) = best_of_pair(
        || {
            for q in &queries {
                std::hint::black_box(idx.search_unpruned(q, 10, scoring));
            }
        },
        || {
            for q in &queries {
                std::hint::black_box(idx.search_with(q, 10, scoring));
            }
        },
    );
    let n = queries.len() as f64;
    MethodResult::new("BM25 block-max pruned probes")
        .with("Qps", n / pruned_secs)
        .with("Baseline_qps", n / baseline_secs)
        .with("Speedup", baseline_secs / pruned_secs)
}

fn ann_row() -> MethodResult {
    let mut rng = ChaCha8Rng::seed_from_u64(0xE5B);
    // The production default embedding dimensionality.
    let dim = 100;
    let vectors: Vec<Vec<f32>> = (0..20_000)
        .map(|_| (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
        .collect();
    // Unbuilt indexes serve by exhaustive scan — exactly the kernel under
    // test (candidate generation is identical either way).
    let mut exact = AnnIndex::with_defaults(dim);
    let mut quantized = AnnIndex::new(
        dim,
        AnnIndexConfig {
            quantize: true,
            rerank_factor: 4,
            ..AnnIndexConfig::default()
        },
    );
    for (i, v) in vectors.iter().enumerate() {
        exact.add(i as u64, v);
        quantized.add(i as u64, v);
    }
    let queries: Vec<Vec<f32>> = (0..60)
        .map(|_| (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
        .collect();

    for (qi, q) in queries.iter().enumerate() {
        assert_eq!(
            exact.query(q, 10),
            quantized.query(q, 10),
            "i8 pre-rank + f32 rerank diverged on query {qi}"
        );
    }

    let (exact_secs, quant_secs) = best_of_pair(
        || {
            for q in &queries {
                std::hint::black_box(exact.query(q, 10));
            }
        },
        || {
            for q in &queries {
                std::hint::black_box(quantized.query(q, 10));
            }
        },
    );
    let n = queries.len() as f64;
    MethodResult::new("ANN i8 pre-rank + f32 rerank")
        .with("Qps", n / quant_secs)
        .with("Exact_qps", n / exact_secs)
        .with("Speedup", exact_secs / quant_secs)
}

fn serializer_row() -> MethodResult {
    let cmdl = build_system(pharma_lake().lake);
    let service = CmdlService::new(cmdl);
    let snapshot = service.snapshot();
    let lake = &snapshot.profiled.lake;
    let mut queries: Vec<DiscoveryQuery> = Vec::new();
    for (i, table) in lake.tables().iter().take(20).enumerate() {
        queries.push(
            QueryBuilder::keyword(&table.name)
                .mode(if i % 2 == 0 {
                    SearchMode::All
                } else {
                    SearchMode::Tables
                })
                .top_k(10)
                .build(),
        );
        queries.push(QueryBuilder::joinable(&table.name).top_k(5).build());
    }
    for doc in lake.documents().iter().take(20) {
        queries.push(QueryBuilder::cross_modal_text(&doc.title).top_k(5).build());
    }
    let response = service.handle(ServiceRequest::QueryBatch(queries));
    assert!(response.ok, "bench workload must succeed");

    // Byte parity between the two encoders before timing.
    let dom = serde_json::to_string(&response).expect("DOM serialization");
    let mut streamed = String::new();
    serde_json::write_to_string(&response, &mut streamed);
    assert_eq!(streamed, dom, "streaming encoder must match the DOM bytes");
    let bytes = dom.len() as f64;

    let iters = 40usize;
    let mut buffer = String::with_capacity(dom.len());
    let (dom_secs, stream_secs) = best_of_pair(
        || {
            for _ in 0..iters {
                std::hint::black_box(
                    serde_json::to_string(&response)
                        .expect("DOM serialization")
                        .len(),
                );
            }
        },
        || {
            for _ in 0..iters {
                buffer.clear();
                serde_json::write_to_string(&response, &mut buffer);
                std::hint::black_box(buffer.len());
            }
        },
    );
    let volume = bytes * iters as f64;
    MethodResult::new("Streaming wire serializer")
        .with("Bytes_per_sec", volume / stream_secs)
        .with("Dom_bytes_per_sec", volume / dom_secs)
        .with("Envelope_bytes", bytes)
        .with("Speedup", dom_secs / stream_secs)
}

fn main() {
    let mut report = ExperimentReport::new(
        "Hot Path",
        "Query hot-path kernels vs their exact pre-overhaul baselines, parity-asserted \
         inline: BM25 block-max-pruned DAAT probes vs the unpruned scan (80k-doc synthetic \
         corpus, heavy-tailed tf), i8-quantized ANN pre-rank + f32 rerank vs the pure-f32 \
         exhaustive scan (20k x 100 vectors), and zero-DOM streaming serialization of a real \
         QueryBatch envelope vs the Json-tree DOM path. Interleaved best-of-7 rounds per pair.",
    );
    report.push(bm25_row());
    report.push(ann_row());
    report.push(serializer_row());
    emit(&report);
}
