//! Table 2: overview of the evaluation benchmarks (number of queries, average
//! answer size, median query cardinality ratio).

use cmdl_bench::{emit, mlopen_lake, pharma_lake, ukopen_lake};
use cmdl_datalake::benchmarks::{
    doc_to_table_benchmark, pkfk_benchmark, syntactic_join_benchmark, unionable_benchmark,
};
use cmdl_datalake::synth::MlOpenScale;
use cmdl_datalake::BenchmarkId;
use cmdl_eval::{ExperimentReport, MethodResult};

fn main() {
    let pharma = pharma_lake();
    let ukopen = ukopen_lake();
    let mlopen = mlopen_lake(MlOpenScale::Medium);
    let mlopen_ss = mlopen_lake(MlOpenScale::Small);
    let mlopen_ls = mlopen_lake(MlOpenScale::Large);

    let mut report = ExperimentReport::new(
        "Table 2",
        "Overview of the evaluation benchmarks: queries, average answer size, and median \
         query cardinality ratio (mQCR).",
    );
    let mut add = |label: &str, bench: cmdl_datalake::Benchmark, lake: &cmdl_datalake::DataLake| {
        report.push(
            MethodResult::new(label)
                .with("queries", bench.num_queries() as f64)
                .with("avg_answer", bench.avg_answer_size())
                .with("mQCR", bench.median_qcr(lake)),
        );
    };

    add(
        "1A Doc2Table UK-Open",
        doc_to_table_benchmark(BenchmarkId::B1A, &ukopen),
        &ukopen.lake,
    );
    add(
        "1B Doc2Table Pharma",
        doc_to_table_benchmark(BenchmarkId::B1B, &pharma),
        &pharma.lake,
    );
    add(
        "1C Doc2Table ML-Open",
        doc_to_table_benchmark(BenchmarkId::B1C, &mlopen),
        &mlopen.lake,
    );
    add(
        "2A Join UK-Open",
        syntactic_join_benchmark(BenchmarkId::B2A, &ukopen),
        &ukopen.lake,
    );
    add(
        "2B Join Pharma",
        syntactic_join_benchmark(BenchmarkId::B2B, &pharma),
        &pharma.lake,
    );
    add(
        "2C Join ML-Open SS",
        syntactic_join_benchmark(BenchmarkId::B2C, &mlopen_ss),
        &mlopen_ss.lake,
    );
    add(
        "2C Join ML-Open MS",
        syntactic_join_benchmark(BenchmarkId::B2C, &mlopen),
        &mlopen.lake,
    );
    add(
        "2C Join ML-Open LS",
        syntactic_join_benchmark(BenchmarkId::B2C, &mlopen_ls),
        &mlopen_ls.lake,
    );
    add(
        "2D PK-FK Pharma",
        pkfk_benchmark(BenchmarkId::B2D, &pharma),
        &pharma.lake,
    );
    add(
        "3A Union UK-Open",
        unionable_benchmark(BenchmarkId::B3A, &ukopen),
        &ukopen.lake,
    );
    add(
        "3B Union Pharma",
        unionable_benchmark(BenchmarkId::B3B, &pharma),
        &pharma.lake,
    );
    emit(&report);
}
