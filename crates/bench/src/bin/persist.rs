//! Durable-catalog cold-start benchmark: reopening a catalog from its
//! checksummed segment files versus rebuilding it from the source lake
//! (profiling + index construction + EKG), plus the segment-load +
//! WAL-replay variant a crash recovery pays.
//!
//! Emits `target/reports/persist.json`; the CI bench-smoke step publishes
//! it as `BENCH_persist.json` and enforces the ≥5x cold-start floor.

use std::path::PathBuf;
use std::time::Instant;

use cmdl_bench::{bench_config, emit};
use cmdl_core::{Cmdl, RecoveryReport};
use cmdl_datalake::synth;
use cmdl_eval::{ExperimentReport, MethodResult};

fn catalog_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cmdl-bench-persist-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn main() {
    let config = bench_config();
    // A larger lake than the other bench binaries: cold start is about
    // amortizing the build cost of a *big* catalog, and at toy scale the
    // constant section-decode overhead would dominate the measurement.
    let lake = synth::pharma::generate(&synth::PharmaConfig {
        num_drugs: 200,
        num_enzymes: 100,
        num_documents: 300,
        num_interactions: 400,
        num_synthetic_tables: 35,
        ..Default::default()
    })
    .lake;
    let documents = lake.documents().to_vec();

    // --- Rebuild-from-source vs cold start, interleaved best-of-8. ---
    // Both sides are measured in alternating rounds (the server_load
    // pattern): sequential phases would let CPU-frequency or noise drift
    // between them masquerade as a ratio change. Round 0 is a warmup
    // (cold caches penalize the shorter measurement disproportionately);
    // its timings are discarded.
    let dir = catalog_dir("cold");
    {
        let lake = lake.clone();
        drop(Cmdl::open(&dir, config.clone(), move || lake).expect("initial open"));
    }
    let mut rebuild_secs = f64::MAX;
    let mut cold_secs = f64::MAX;
    for round in 0..9 {
        let start = Instant::now();
        let system = Cmdl::build(lake.clone(), config.clone());
        if round > 0 {
            rebuild_secs = rebuild_secs.min(start.elapsed().as_secs_f64());
        }
        drop(system);

        let start = Instant::now();
        let system = Cmdl::open(&dir, config.clone(), || {
            panic!("cold start must load from segments, not rebuild")
        })
        .expect("reopen from segments");
        if round > 0 {
            cold_secs = cold_secs.min(start.elapsed().as_secs_f64());
        }
        assert!(
            matches!(
                system.recovery_report(),
                Some(RecoveryReport::Loaded { .. })
            ),
            "cold start did not load from the segment"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);

    // --- Segment load + WAL replay (what a crash recovery pays). ---
    // Re-ingest the last ~10% of the documents on top of a checkpoint of
    // the remainder, so reopening replays them from the WAL.
    let replay_docs = documents.len().div_ceil(10);
    let dir = catalog_dir("replay");
    {
        let mut seed = cmdl_datalake::DataLake::new("pharma-persist-seed");
        for table in lake.tables() {
            seed.add_table(table.clone());
        }
        for doc in &documents[..documents.len() - replay_docs] {
            seed.add_document(doc.clone());
        }
        let mut system = Cmdl::open(&dir, config.clone(), move || seed).expect("seed open");
        for doc in &documents[documents.len() - replay_docs..] {
            system.ingest_document(doc.clone()).expect("delta ingest");
        }
    }
    let mut replay_secs = f64::MAX;
    let mut replayed = 0usize;
    for _ in 0..3 {
        let start = Instant::now();
        let system = Cmdl::open(&dir, config.clone(), || {
            panic!("replay start must load from segments + WAL, not rebuild")
        })
        .expect("reopen with WAL tail");
        replay_secs = replay_secs.min(start.elapsed().as_secs_f64());
        if let Some(RecoveryReport::Loaded { replayed: n, .. }) = system.recovery_report() {
            replayed = *n;
        }
    }
    let _ = std::fs::remove_dir_all(&dir);

    let mut report = ExperimentReport::new(
        "persist",
        "Cold start from checksummed segments vs rebuild from source (bench-scale pharma lake)",
    );
    report.push(MethodResult::new("Rebuild from source").with("Seconds", rebuild_secs));
    report.push(
        MethodResult::new("Segment cold start")
            .with("Seconds", cold_secs)
            .with("Speedup", rebuild_secs / cold_secs),
    );
    report.push(
        MethodResult::new("Segment + WAL replay")
            .with("Seconds", replay_secs)
            .with("Speedup", rebuild_secs / replay_secs)
            .with("Replayed_records", replayed as f64),
    );
    emit(&report);
}
