//! Figure 8: profiler overheads — (a) structured-data profiling time for CMDL
//! vs an Aurum-style profiler as the number of column DEs grows (the lake is
//! replicated, as in the paper's stress test), and (b) unstructured-document
//! profiling time as the number of documents grows.

use std::time::Instant;

use cmdl_bench::{bench_config, emit, ukopen_lake};
use cmdl_core::{CmdlConfig, Profiler, SketchScheme};
use cmdl_datalake::{DataLake, Document, Table};
use cmdl_eval::{ExperimentReport, MethodResult};
use cmdl_text::{Pipeline, PipelineConfig};

/// Replicate a lake's tables `factor` times (fresh table names).
fn replicate_tables(base: &[Table], factor: usize) -> DataLake {
    let mut lake = DataLake::new("replicated");
    for f in 0..factor {
        for table in base {
            let mut copy = table.clone();
            copy.name = format!("{}_{f}", table.name);
            lake.add_table(copy);
        }
    }
    lake
}

/// An Aurum-style profiler: value sketches and numeric statistics only (no
/// solo embeddings, no token-level features) — the "delta" the paper
/// attributes CMDL's extra cost to.
fn aurum_profile(lake: &DataLake) -> std::time::Duration {
    use cmdl_sketch::{MinHasher, NumericProfile};
    let hasher = MinHasher::new(64, 1);
    let start = Instant::now();
    for table in lake.tables() {
        for column in &table.columns {
            let values = column.distinct_texts();
            let _sig = hasher.signature(values.iter());
            let _stats = NumericProfile::from_values(&column.numeric_values());
        }
    }
    start.elapsed()
}

fn main() {
    let config = bench_config();
    let profiler = Profiler::new(&config);
    let base = ukopen_lake().lake;
    let base_tables: Vec<Table> = base.tables().to_vec();

    // (a) Structured profiling: scale the number of column DEs.
    let mut report_a = ExperimentReport::new(
        "Figure 8a",
        "Structured-data profiling wall-clock time (seconds) vs number of column DEs, \
         CMDL profiler vs an Aurum-style profiler (value sketches + numeric stats only).",
    );
    for factor in [1usize, 2, 4, 8] {
        let lake = replicate_tables(&base_tables, factor);
        let num_des = lake.num_columns();
        let aurum_time = aurum_profile(&lake);
        let start = Instant::now();
        let profiled = profiler.profile_lake(lake);
        let cmdl_time = start.elapsed();
        report_a.push(
            MethodResult::new(format!("{num_des} columns"))
                .with("Aurum_sec", aurum_time.as_secs_f64())
                .with("CMDL_sec", cmdl_time.as_secs_f64()),
        );
        drop(profiled);
    }
    emit(&report_a);

    // (c) The paper's scalability setting: profiling with 512-hash MinHash
    // signatures, classic k-independent hashing vs one-permutation hashing
    // with optimal densification. At 512 hashes the signature is the
    // dominant profiling cost, which is exactly what OPH removes.
    let mut report_c = ExperimentReport::new(
        "Figure 8c",
        "Structured-data profiling wall-clock (seconds) at the paper's 512-hash setting: \
         classic k-independent MinHash vs one-permutation hashing + densification.",
    );
    for factor in [1usize, 4] {
        let lake = replicate_tables(&base_tables, factor);
        let num_des = lake.num_columns();
        let mut result = MethodResult::new(format!("{num_des} columns, 512 hashes"));
        for (label, scheme) in [
            ("Classic_sec", SketchScheme::Classic),
            ("OPH_sec", SketchScheme::OnePermutation),
        ] {
            let profiler = Profiler::new(&CmdlConfig {
                minhash_hashes: 512,
                sketch_scheme: scheme,
                ..bench_config()
            });
            let input = lake.clone();
            let start = Instant::now();
            let profiled = profiler.profile_lake(input);
            result = result.with(label, start.elapsed().as_secs_f64());
            drop(profiled);
        }
        report_c.push(result);
    }
    emit(&report_c);

    // (b) Unstructured profiling: scale the number of documents.
    let pipeline = Pipeline::new(PipelineConfig::default());
    let base_docs: Vec<Document> = base.documents().to_vec();
    let mut report_b = ExperimentReport::new(
        "Figure 8b",
        "Unstructured-document profiling wall-clock time (seconds) vs number of documents \
         (NLP pipeline to bag-of-words + sketches).",
    );
    for factor in [5usize, 10, 20, 40] {
        let docs: Vec<Document> = (0..factor).flat_map(|_| base_docs.clone()).collect();
        let start = Instant::now();
        let mut total_terms = 0usize;
        for d in &docs {
            total_terms += pipeline.process(&d.text).distinct_len();
        }
        let elapsed = start.elapsed();
        report_b.push(
            MethodResult::new(format!("{} documents", docs.len()))
                .with("CMDL_sec", elapsed.as_secs_f64())
                .with("avg_terms", total_terms as f64 / docs.len() as f64),
        );
    }
    emit(&report_b);
}
