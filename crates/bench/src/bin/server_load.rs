//! Service-layer overhead and transport benchmarks: a closed-loop load
//! generator driving the in-process `CmdlService`, plus socket-level
//! comparisons of the two transports (fixed thread pool vs epoll reactor).
//!
//! In-process rows (always emitted):
//!
//! 1. **Direct batched** — `snapshot.execute_many(&queries)`, no envelope
//!    (the in-crate ceiling).
//! 2. **Service single** — one `{"Query": …}` JSON request per query
//!    through `handle_json_bytes` (the per-request wire cost).
//! 3. **Service batched** — one `{"QueryBatch": […]}` JSON request for the
//!    whole workload (amortizing the envelope like a real serving batch).
//! 4. **Reactor cache hit** — the generation-keyed result cache answering
//!    the same workload from stored bytes (the repeated-dashboard-query
//!    path; CI enforces a >= 5x speedup over cold execution).
//!
//! Socket rows (skipped with a note when the sandbox denies loopback
//! binds):
//!
//! 5. **Open-loop latency** per transport — `conns` keep-alive
//!    connections, Poisson-free fixed arrival schedule at `rate` req/s,
//!    latency measured from the *scheduled* send time (coordinated
//!    omission corrected), reported as p50/p99 + achieved QPS.
//! 6. **Saturation throughput** per transport — closed-loop clients with
//!    the cache disabled, so the reactor's win has to come from
//!    coalescing, not caching.
//! 7. **Idle connection capacity** — how many established keep-alive
//!    connections each transport can hold while still serving; the
//!    reactor holds parser state per connection instead of a thread, so
//!    CI enforces a >= 2x ratio.
//!
//! Emits `target/reports/server_load.json`; the CI `server-smoke` job
//! publishes it as `BENCH_server.json` and enforces the floors.

use std::sync::Arc;
use std::time::Instant;

use cmdl_bench::{build_system, emit, pharma_lake};
use cmdl_core::{DiscoveryQuery, QueryBuilder, SearchMode};
use cmdl_eval::{ExperimentReport, MethodResult};
use cmdl_server::reactor::cache::{CacheConfig, CacheOutcome, ResultCache};
use cmdl_server::{CmdlService, ServiceRequest};

/// The mixed discovery workload (same shape as the query_api bench).
fn workload(snapshot: &cmdl_core::CatalogSnapshot) -> Vec<DiscoveryQuery> {
    let lake = &snapshot.profiled.lake;
    let mut queries = Vec::new();
    let keyword_texts: Vec<String> = lake
        .tables()
        .iter()
        .take(10)
        .flat_map(|t| t.columns.first())
        .flat_map(|c| c.values.iter().take(12))
        .map(|v| v.as_text())
        .collect();
    for (i, text) in keyword_texts.iter().enumerate() {
        let mode = match i % 3 {
            0 => SearchMode::All,
            1 => SearchMode::Text,
            _ => SearchMode::Tables,
        };
        queries.push(QueryBuilder::keyword(text).mode(mode).top_k(10).build());
    }
    for doc in lake.documents().iter().take(25) {
        queries.push(QueryBuilder::cross_modal_text(&doc.title).top_k(5).build());
    }
    let table_names: Vec<String> = lake.tables().iter().map(|t| t.name.clone()).collect();
    for name in table_names.iter().take(12) {
        queries.push(QueryBuilder::joinable(name).top_k(5).build());
    }
    for name in table_names.iter().take(6) {
        queries.push(QueryBuilder::unionable(name).top_k(5).build());
    }
    queries.push(QueryBuilder::pkfk().top_k(20).build());
    queries
}

fn main() {
    let cmdl = build_system(pharma_lake().lake);
    let service = Arc::new(CmdlService::new(cmdl));
    let snapshot = service.snapshot();
    let queries = workload(&snapshot);
    let rounds = 9usize;

    // Pre-serialize the wire requests (a closed-loop client would reuse
    // buffers the same way; we are measuring the service, not the client).
    let single_requests: Vec<Vec<u8>> = queries
        .iter()
        .map(|q| {
            serde_json::to_string(&ServiceRequest::Query(q.clone()))
                .expect("query serializes")
                .into_bytes()
        })
        .collect();
    let batch_request: Vec<u8> =
        serde_json::to_string(&ServiceRequest::QueryBatch(queries.clone()))
            .expect("batch serializes")
            .into_bytes();

    // Warm every path once.
    let _ = snapshot.execute_many(&queries);
    for request in &single_requests {
        let _ = service.handle_json_bytes(request);
    }
    let _ = service.handle_json_bytes(&batch_request);

    let mut direct_secs = f64::MAX;
    let mut single_secs = f64::MAX;
    let mut batched_secs = f64::MAX;
    for _ in 0..rounds {
        let start = Instant::now();
        let outcomes = snapshot.execute_many(&queries);
        direct_secs = direct_secs.min(start.elapsed().as_secs_f64());
        assert!(outcomes.iter().all(|o| o.is_ok()));

        let start = Instant::now();
        for request in &single_requests {
            let response = service.handle_json_bytes(request);
            assert!(!response.is_empty());
        }
        single_secs = single_secs.min(start.elapsed().as_secs_f64());

        let start = Instant::now();
        let response = service.handle_json_bytes(&batch_request);
        batched_secs = batched_secs.min(start.elapsed().as_secs_f64());
        assert!(!response.is_empty());
    }

    // The generation-keyed result cache: the same workload answered from
    // stored bytes. This is what a reactor cache hit does — one xxh64,
    // one map probe, one `Arc` clone of the serialized envelope.
    let cache = ResultCache::new(CacheConfig::default());
    let generation = service.published_generation();
    for request in &single_requests {
        let body = service.handle_json_bytes(request);
        cache.insert(generation, request, 200, None, &body);
    }
    let mut hit_secs = f64::MAX;
    for _ in 0..rounds {
        let mut served_bytes = 0usize;
        let start = Instant::now();
        for request in &single_requests {
            match cache.lookup(generation, request) {
                CacheOutcome::Hit(hit) => served_bytes += hit.body.len(),
                CacheOutcome::Miss { .. } => unreachable!("cache holds the whole workload"),
            }
        }
        hit_secs = hit_secs.min(start.elapsed().as_secs_f64());
        assert!(served_bytes > 0);
    }

    let n = queries.len() as f64;
    let direct_qps = n / direct_secs;
    let single_qps = n / single_secs;
    let batched_qps = n / batched_secs;
    let hit_qps = n / hit_secs;

    let mut report = ExperimentReport::new(
        "Server Load",
        format!(
            "Closed-loop mixed Q1-Q5 workload of {} queries over the bench-scale pharma \
             lake: direct snapshot.execute_many vs the in-process CmdlService JSON wire \
             (per-query envelopes and one QueryBatch envelope) vs the reactor's \
             generation-keyed result cache, plus socket-level open-loop latency, \
             cache-disabled saturation throughput, and idle keep-alive connection \
             capacity for both transports (thread pool and epoll reactor). Best of \
             {rounds} rounds for the closed-loop rows.",
            queries.len(),
        ),
    );
    report.push(
        MethodResult::new("Direct execute_many")
            .with("Seconds", direct_secs)
            .with("Qps", direct_qps),
    );
    report.push(
        MethodResult::new("Service single requests")
            .with("Seconds", single_secs)
            .with("Qps", single_qps)
            .with("Overhead_vs_direct", direct_qps / single_qps),
    );
    report.push(
        MethodResult::new("Service batched request")
            .with("Seconds", batched_secs)
            .with("Qps", batched_qps)
            .with("Overhead_vs_direct", direct_qps / batched_qps)
            .with("Speedup_vs_single", batched_qps / single_qps),
    );
    report.push(
        MethodResult::new("Reactor cache hit")
            .with("Seconds", hit_secs)
            .with("Qps", hit_qps)
            .with("Speedup_vs_cold", hit_qps / single_qps),
    );

    #[cfg(target_os = "linux")]
    sockets::bench_transports(&service, &queries, &mut report);

    emit(&report);
}

/// Socket-level transport benchmarks (reactor vs thread pool). Linux-only
/// because the reactor's epoll front end is.
#[cfg(target_os = "linux")]
mod sockets {
    use std::io::{BufRead, BufReader, Write};
    use std::net::{SocketAddr, TcpStream};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    use cmdl_core::DiscoveryQuery;
    use cmdl_eval::MethodResult;
    use cmdl_server::reactor::cache::CacheConfig;
    use cmdl_server::{serve, serve_reactor, CmdlService, HttpConfig, ReactorConfig};

    const OPEN_LOOP_CONNS: usize = 32;
    const OPEN_LOOP_RATE: f64 = 400.0;
    const OPEN_LOOP_SECS: f64 = 2.5;
    const SATURATION_CONNS: usize = 8;
    const SATURATION_SECS: f64 = 2.0;
    const IDLE_TARGET: usize = 10_000;

    pub fn bench_transports(
        service: &Arc<CmdlService>,
        queries: &[DiscoveryQuery],
        report: &mut cmdl_eval::ExperimentReport,
    ) {
        let bodies: Vec<String> = queries
            .iter()
            .map(|q| serde_json::to_string(q).expect("query serializes"))
            .collect();

        // Cache disabled on the reactor: the saturation comparison must
        // show the coalescer's win, not the cache's.
        let reactor_config = ReactorConfig {
            cache: CacheConfig {
                enabled: false,
                ..CacheConfig::default()
            },
            max_connections: IDLE_TARGET + 64,
            ..ReactorConfig::default()
        };
        let reactor = match serve_reactor(Arc::clone(service), reactor_config) {
            Ok(handle) => handle,
            Err(err) => {
                eprintln!("loopback bind denied ({err}); skipping socket transport rows");
                return;
            }
        };
        let pool = match serve(
            Arc::clone(service),
            HttpConfig {
                threads: SATURATION_CONNS,
                queue_capacity: SATURATION_CONNS,
                read_timeout: Duration::from_secs(10),
                ..HttpConfig::default()
            },
        ) {
            Ok(handle) => handle,
            Err(err) => {
                eprintln!("loopback bind denied for the pool ({err}); skipping socket rows");
                reactor.shutdown();
                return;
            }
        };

        // Open-loop latency at a fixed arrival rate, per transport.
        let reactor_open = open_loop(reactor.addr(), OPEN_LOOP_CONNS, OPEN_LOOP_RATE, &bodies);
        // The pool parks one thread per connection, so its open-loop run
        // uses as many connections as it has threads — more would measure
        // queueing on connections that can never be served concurrently.
        let pool_open = open_loop(pool.addr(), SATURATION_CONNS, OPEN_LOOP_RATE, &bodies);
        report.push(
            MethodResult::new("Reactor open-loop")
                .with("Conns", OPEN_LOOP_CONNS as f64)
                .with("Rate_per_sec", OPEN_LOOP_RATE)
                .with("P50_micros", reactor_open.p50 as f64)
                .with("P99_micros", reactor_open.p99 as f64)
                .with("Qps", reactor_open.qps),
        );
        report.push(
            MethodResult::new("Thread-pool open-loop")
                .with("Conns", SATURATION_CONNS as f64)
                .with("Rate_per_sec", OPEN_LOOP_RATE)
                .with("P50_micros", pool_open.p50 as f64)
                .with("P99_micros", pool_open.p99 as f64)
                .with("Qps", pool_open.qps),
        );

        // Saturation throughput: closed-loop clients, cache disabled.
        let reactor_sat = saturate(reactor.addr(), SATURATION_CONNS, &bodies);
        let pool_sat = saturate(pool.addr(), SATURATION_CONNS, &bodies);
        let coalesced = service.metrics().coalesce_queries_total() as f64;
        let batches = service.metrics().coalesce_batches_total().max(1) as f64;
        report.push(
            MethodResult::new("Reactor saturation")
                .with("Conns", SATURATION_CONNS as f64)
                .with("Qps", reactor_sat)
                .with("Mean_coalesce_batch", coalesced / batches)
                .with("Speedup_vs_threadpool", reactor_sat / pool_sat),
        );
        report.push(
            MethodResult::new("Thread-pool saturation")
                .with("Conns", SATURATION_CONNS as f64)
                .with("Qps", pool_sat),
        );

        // Idle keep-alive capacity: the reactor holds a parser struct per
        // connection; the pool parks a whole thread.
        let pool_capacity = pool_idle_capacity(pool.addr(), 2 * SATURATION_CONNS + 16);
        pool.shutdown();
        let reactor_capacity = reactor_idle_capacity(reactor.addr());
        report.push(
            MethodResult::new("Idle connection capacity")
                .with("Reactor_conns", reactor_capacity as f64)
                .with("Threadpool_conns", pool_capacity as f64)
                .with(
                    "Capacity_ratio",
                    reactor_capacity as f64 / pool_capacity.max(1) as f64,
                ),
        );
        reactor.shutdown();
    }

    struct OpenLoopOutcome {
        p50: u64,
        p99: u64,
        qps: f64,
    }

    /// `conns` keep-alive connections, each issuing requests on a fixed
    /// arrival schedule of `rate / conns` per second. Latency is measured
    /// from the *scheduled* send time, so server-side queueing delay is
    /// charged to the server (no coordinated omission).
    fn open_loop(addr: SocketAddr, conns: usize, rate: f64, bodies: &[String]) -> OpenLoopOutcome {
        let interval = Duration::from_secs_f64(conns as f64 / rate);
        let per_conn = ((rate * OPEN_LOOP_SECS) / conns as f64).ceil() as usize;
        let handles: Vec<_> = (0..conns)
            .map(|c| {
                let bodies = bodies.to_vec();
                std::thread::spawn(move || {
                    let mut stream = TcpStream::connect(addr).expect("connect");
                    stream.set_nodelay(true).ok();
                    stream
                        .set_read_timeout(Some(Duration::from_secs(30)))
                        .unwrap();
                    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
                    let start = Instant::now();
                    let mut latencies = Vec::with_capacity(per_conn);
                    for i in 0..per_conn {
                        let scheduled = start + interval.mul_f64(i as f64);
                        let now = Instant::now();
                        if scheduled > now {
                            std::thread::sleep(scheduled - now);
                        }
                        let body = &bodies[(c + i) % bodies.len()];
                        post_query(&mut stream, &mut reader, body);
                        latencies.push(scheduled.elapsed().as_micros() as u64);
                    }
                    latencies
                })
            })
            .collect();
        let started = Instant::now();
        let mut latencies: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect();
        let wall = started.elapsed().as_secs_f64().max(1e-9);
        latencies.sort_unstable();
        let pct = |q: f64| latencies[((latencies.len() - 1) as f64 * q) as usize];
        OpenLoopOutcome {
            p50: pct(0.50),
            p99: pct(0.99),
            qps: latencies.len() as f64 / wall,
        }
    }

    /// Closed-loop saturation: `conns` clients send back-to-back for a
    /// fixed window; returns achieved QPS.
    fn saturate(addr: SocketAddr, conns: usize, bodies: &[String]) -> f64 {
        let total = Arc::new(AtomicUsize::new(0));
        let started = Instant::now();
        let deadline = started + Duration::from_secs_f64(SATURATION_SECS);
        let handles: Vec<_> = (0..conns)
            .map(|c| {
                let bodies = bodies.to_vec();
                let total = Arc::clone(&total);
                std::thread::spawn(move || {
                    let mut stream = TcpStream::connect(addr).expect("connect");
                    stream.set_nodelay(true).ok();
                    stream
                        .set_read_timeout(Some(Duration::from_secs(30)))
                        .unwrap();
                    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
                    let mut i = 0usize;
                    while Instant::now() < deadline {
                        post_query(&mut stream, &mut reader, &bodies[(c + i) % bodies.len()]);
                        total.fetch_add(1, Ordering::Relaxed);
                        i += 1;
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().expect("client thread");
        }
        total.load(Ordering::Relaxed) as f64 / started.elapsed().as_secs_f64()
    }

    /// Open keep-alive connections against the reactor until the file
    /// descriptor budget runs out, verifying liveness along the way.
    fn reactor_idle_capacity(addr: SocketAddr) -> usize {
        // Each held connection costs two descriptors (client + server end
        // in this one process); leave headroom for everything else.
        let limit = raise_nofile_limit();
        let target = IDLE_TARGET.min(((limit.saturating_sub(512)) / 2) as usize);
        let mut held = Vec::with_capacity(target);
        for i in 0..target {
            match TcpStream::connect(addr) {
                Ok(stream) => held.push(stream),
                Err(err) => {
                    eprintln!("idle-capacity connect stopped at {i}: {err}");
                    break;
                }
            }
            // Pace the storm so the listener backlog never overflows, and
            // prove the newest connection is actually being served.
            if i % 512 == 0 {
                let stream = held.last_mut().expect("just pushed");
                stream
                    .set_read_timeout(Some(Duration::from_secs(10)))
                    .unwrap();
                let mut reader = BufReader::new(stream.try_clone().expect("clone"));
                get_healthz(stream, &mut reader);
            }
        }
        // Every connection is still established; prove the ends are live.
        for probe in [0, held.len() / 2, held.len() - 1] {
            let stream = &mut held[probe];
            stream
                .set_read_timeout(Some(Duration::from_secs(10)))
                .unwrap();
            let mut reader = BufReader::new(stream.try_clone().expect("clone"));
            get_healthz(stream, &mut reader);
        }
        held.len()
    }

    /// Open keep-alive connections against the pool until one stops being
    /// served within a short deadline: that is the pool's concurrent
    /// keep-alive capacity (one parked worker thread per connection).
    fn pool_idle_capacity(addr: SocketAddr, attempts: usize) -> usize {
        let mut held = Vec::new();
        for _ in 0..attempts {
            let Ok(mut stream) = TcpStream::connect(addr) else {
                break;
            };
            stream
                .set_read_timeout(Some(Duration::from_millis(500)))
                .unwrap();
            let Ok(clone) = stream.try_clone() else { break };
            let mut reader = BufReader::new(clone);
            let request = b"GET /healthz HTTP/1.1\r\nHost: localhost\r\nContent-Length: 0\r\n\r\n";
            if stream.write_all(request).is_err() {
                break;
            }
            if read_response(&mut reader).is_none() {
                break; // not served: past the pool's capacity
            }
            held.push(stream);
        }
        held.len()
    }

    fn post_query<R: BufRead>(stream: &mut TcpStream, reader: &mut R, body: &str) {
        let request = format!(
            "POST /query HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        stream.write_all(request.as_bytes()).expect("write request");
        let (status, len) = read_response(reader).expect("response");
        assert_eq!(status, 200, "query must succeed under load");
        assert!(len > 0);
    }

    fn get_healthz<R: BufRead>(stream: &mut TcpStream, reader: &mut R) {
        stream
            .write_all(b"GET /healthz HTTP/1.1\r\nHost: localhost\r\nContent-Length: 0\r\n\r\n")
            .expect("write healthz");
        let (status, _) = read_response(reader).expect("healthz response");
        assert_eq!(status, 200);
    }

    /// Read one framed response, returning (status, body length). `None`
    /// on any read failure (timeout, reset, EOF).
    fn read_response<R: BufRead>(reader: &mut R) -> Option<(u16, usize)> {
        let mut status_line = String::new();
        if reader.read_line(&mut status_line).ok()? == 0 {
            return None;
        }
        let status: u16 = status_line.split_whitespace().nth(1)?.parse().ok()?;
        let mut content_length = 0usize;
        loop {
            let mut header = String::new();
            if reader.read_line(&mut header).ok()? == 0 {
                return None;
            }
            let header = header.trim_end();
            if header.is_empty() {
                break;
            }
            if let Some((name, value)) = header.split_once(':') {
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value.trim().parse().ok()?;
                }
            }
        }
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body).ok()?;
        Some((status, content_length))
    }

    // -- RLIMIT_NOFILE ------------------------------------------------------

    #[repr(C)]
    struct RLimit {
        cur: u64,
        max: u64,
    }

    const RLIMIT_NOFILE: i32 = 7;

    extern "C" {
        fn getrlimit(resource: i32, rlim: *mut RLimit) -> i32;
        fn setrlimit(resource: i32, rlim: *const RLimit) -> i32;
    }

    /// Raise the soft file-descriptor limit to the hard limit and return
    /// the resulting soft limit (the default soft limit of 1024 would cap
    /// the idle-capacity measurement at ~256 connections).
    fn raise_nofile_limit() -> u64 {
        let mut limit = RLimit { cur: 0, max: 0 };
        // SAFETY: plain struct out-parameter syscall wrappers from the C
        // runtime std already links.
        unsafe {
            if getrlimit(RLIMIT_NOFILE, &mut limit) != 0 {
                return 1024;
            }
            if limit.cur < limit.max {
                let raised = RLimit {
                    cur: limit.max,
                    max: limit.max,
                };
                if setrlimit(RLIMIT_NOFILE, &raised) == 0 {
                    limit.cur = limit.max;
                }
            }
        }
        limit.cur
    }
}
