//! Service-layer overhead: a closed-loop load generator driving the
//! in-process `CmdlService` and comparing it against direct
//! `snapshot.execute_many` on the same mixed Q1–Q5 workload — so the cost
//! of the envelope (JSON parse, routing, JSON serialize) is *measured*,
//! not guessed.
//!
//! Three paths over the bench-scale pharma lake:
//!
//! 1. **Direct batched** — `snapshot.execute_many(&queries)`, no envelope
//!    (the in-crate ceiling).
//! 2. **Service single** — one `{"Query": …}` JSON request per query
//!    through `handle_json_bytes` (the per-request wire cost).
//! 3. **Service batched** — one `{"QueryBatch": […]}` JSON request for the
//!    whole workload (amortizing the envelope like a real serving batch).
//!
//! Emits `target/reports/server_load.json`; the CI `server-smoke` job
//! publishes it as `BENCH_server.json` and enforces the no-regression
//! floors.

use std::time::Instant;

use cmdl_bench::{build_system, emit, pharma_lake};
use cmdl_core::{DiscoveryQuery, QueryBuilder, SearchMode};
use cmdl_eval::{ExperimentReport, MethodResult};
use cmdl_server::{CmdlService, ServiceRequest};

/// The mixed discovery workload (same shape as the query_api bench).
fn workload(snapshot: &cmdl_core::CatalogSnapshot) -> Vec<DiscoveryQuery> {
    let lake = &snapshot.profiled.lake;
    let mut queries = Vec::new();
    let keyword_texts: Vec<String> = lake
        .tables()
        .iter()
        .take(10)
        .flat_map(|t| t.columns.first())
        .flat_map(|c| c.values.iter().take(12))
        .map(|v| v.as_text())
        .collect();
    for (i, text) in keyword_texts.iter().enumerate() {
        let mode = match i % 3 {
            0 => SearchMode::All,
            1 => SearchMode::Text,
            _ => SearchMode::Tables,
        };
        queries.push(QueryBuilder::keyword(text).mode(mode).top_k(10).build());
    }
    for doc in lake.documents().iter().take(25) {
        queries.push(QueryBuilder::cross_modal_text(&doc.title).top_k(5).build());
    }
    let table_names: Vec<String> = lake.tables().iter().map(|t| t.name.clone()).collect();
    for name in table_names.iter().take(12) {
        queries.push(QueryBuilder::joinable(name).top_k(5).build());
    }
    for name in table_names.iter().take(6) {
        queries.push(QueryBuilder::unionable(name).top_k(5).build());
    }
    queries.push(QueryBuilder::pkfk().top_k(20).build());
    queries
}

fn main() {
    let cmdl = build_system(pharma_lake().lake);
    let service = CmdlService::new(cmdl);
    let snapshot = service.snapshot();
    let queries = workload(&snapshot);
    let rounds = 9usize;

    // Pre-serialize the wire requests (a closed-loop client would reuse
    // buffers the same way; we are measuring the service, not the client).
    let single_requests: Vec<Vec<u8>> = queries
        .iter()
        .map(|q| {
            serde_json::to_string(&ServiceRequest::Query(q.clone()))
                .expect("query serializes")
                .into_bytes()
        })
        .collect();
    let batch_request: Vec<u8> =
        serde_json::to_string(&ServiceRequest::QueryBatch(queries.clone()))
            .expect("batch serializes")
            .into_bytes();

    // Warm every path once.
    let _ = snapshot.execute_many(&queries);
    for request in &single_requests {
        let _ = service.handle_json_bytes(request);
    }
    let _ = service.handle_json_bytes(&batch_request);

    let mut direct_secs = f64::MAX;
    let mut single_secs = f64::MAX;
    let mut batched_secs = f64::MAX;
    for _ in 0..rounds {
        let start = Instant::now();
        let outcomes = snapshot.execute_many(&queries);
        direct_secs = direct_secs.min(start.elapsed().as_secs_f64());
        assert!(outcomes.iter().all(|o| o.is_ok()));

        let start = Instant::now();
        for request in &single_requests {
            let response = service.handle_json_bytes(request);
            assert!(!response.is_empty());
        }
        single_secs = single_secs.min(start.elapsed().as_secs_f64());

        let start = Instant::now();
        let response = service.handle_json_bytes(&batch_request);
        batched_secs = batched_secs.min(start.elapsed().as_secs_f64());
        assert!(!response.is_empty());
    }

    let n = queries.len() as f64;
    let direct_qps = n / direct_secs;
    let single_qps = n / single_secs;
    let batched_qps = n / batched_secs;

    let mut report = ExperimentReport::new(
        "Server Load",
        format!(
            "Closed-loop mixed Q1-Q5 workload of {} queries over the bench-scale pharma \
             lake: direct snapshot.execute_many vs the in-process CmdlService JSON wire \
             (per-query envelopes and one QueryBatch envelope). Best of {rounds} rounds; \
             the gap between Direct and Service is the measured envelope/routing cost.",
            queries.len(),
        ),
    );
    report.push(
        MethodResult::new("Direct execute_many")
            .with("Seconds", direct_secs)
            .with("Qps", direct_qps),
    );
    report.push(
        MethodResult::new("Service single requests")
            .with("Seconds", single_secs)
            .with("Qps", single_qps)
            .with("Overhead_vs_direct", direct_qps / single_qps),
    );
    report.push(
        MethodResult::new("Service batched request")
            .with("Seconds", batched_secs)
            .with("Qps", batched_qps)
            .with("Overhead_vs_direct", direct_qps / batched_qps)
            .with("Speedup_vs_single", batched_qps / single_qps),
    );
    emit(&report);
}
