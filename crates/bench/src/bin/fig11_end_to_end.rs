//! Figure 11: end-to-end usability study — system execution time per
//! discovery operation of the five-step pipeline of the motivating example
//! (keyword search → Doc→Table → Doc→Table → joinable → unionable), plus a
//! simulated analyst investigation time per step.
//!
//! The system-side latencies are measured for real; the analyst times are
//! simulated constants (the paper's were measured with human domain experts),
//! reproducing the figure's structure: millisecond-scale system time versus
//! minute-scale human time.

use std::time::Instant;

use cmdl_bench::{build_system, emit, pharma_lake};
use cmdl_core::SearchMode;
use cmdl_eval::{ExperimentReport, MethodResult};

fn main() {
    let synth = pharma_lake();
    let mut cmdl = build_system(synth.lake);
    cmdl.train_joint(None);
    let k = 3usize;

    // Simulated analyst investigation minutes per step (paper: 4.6, 1.7, 7.8,
    // 5.3, 8.5 for K=3).
    let analyst_minutes = [4.6f64, 1.7, 7.8, 5.3, 8.5];

    let mut report = ExperimentReport::new(
        "Figure 11",
        format!(
            "End-to-end 5-operation discovery pipeline on the Pharma lake (K = {k}): \
             system execution time per operation (milliseconds, measured) and analyst \
             investigation time (minutes, simulated constants mirroring the paper's study)."
        ),
    );

    // Op1: keyword search for documents about an enzyme.
    let enzyme = cmdl
        .profiled
        .lake
        .table("Enzymes")
        .and_then(|t| t.column("Target"))
        .map(|c| c.values[0].as_text())
        .unwrap_or_else(|| "synthase".to_string());
    let start = Instant::now();
    let docs = cmdl.content_search(&enzyme, SearchMode::Text, k);
    let op1 = start.elapsed();

    // Op2: Doc→Table for the first returned document.
    let doc_idx = docs
        .first()
        .and_then(|r| r.element)
        .and_then(|id| cmdl.profiled.lake.document_index(id))
        .unwrap_or(0);
    let start = Instant::now();
    let tables_1 = cmdl.cross_modal_search(doc_idx, k).unwrap_or_default();
    let op2 = start.elapsed();

    // Op3: Doc→Table for another returned document.
    let doc_idx_2 = docs
        .get(1)
        .and_then(|r| r.element)
        .and_then(|id| cmdl.profiled.lake.document_index(id))
        .unwrap_or(doc_idx);
    let start = Instant::now();
    let tables_2 = cmdl.cross_modal_search(doc_idx_2, k).unwrap_or_default();
    let op3 = start.elapsed();

    // Op4: joinable tables for a table selected from the Doc→Table output.
    let selected = tables_1
        .first()
        .or(tables_2.first())
        .and_then(|r| r.table.clone())
        .unwrap_or_else(|| "Drugs".to_string());
    let start = Instant::now();
    let joinable = cmdl.joinable(&selected, k).unwrap_or_default();
    let op4 = start.elapsed();

    // Op5: unionable tables for a table selected from the join output.
    let selected_2 = joinable
        .first()
        .and_then(|r| r.table.clone())
        .unwrap_or(selected.clone());
    let start = Instant::now();
    let _unionable = cmdl.unionable(&selected_2, k).unwrap_or_default();
    let op5 = start.elapsed();

    let ops = [
        ("Op1 Keyword search", op1),
        ("Op2 Doc2Table search", op2),
        ("Op3 Doc2Table search", op3),
        ("Op4 Table-J-Table search", op4),
        ("Op5 Table-U-Table search", op5),
    ];
    let mut cumulative = 0.0;
    for ((label, duration), analyst) in ops.iter().zip(analyst_minutes) {
        cumulative += duration.as_secs_f64() * 1000.0;
        report.push(
            MethodResult::new(*label)
                .with("system_ms", duration.as_secs_f64() * 1000.0)
                .with("cumulative_ms", cumulative)
                .with("analyst_min", analyst),
        );
    }
    emit(&report);
}
