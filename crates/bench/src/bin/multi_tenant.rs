//! Noisy-neighbor isolation benchmark for the multi-tenant control plane.
//!
//! Two lakes share one in-process [`TenantHub`]: the **victim** is created
//! without quotas and queried by a fixed closed loop of workers; the
//! **noisy** tenant opts into `max_inflight = 1` at `CreateLake` time and
//! is hammered by more workers than it has slots, so the overflow is shed
//! with the typed `QuotaExceeded` 429 (clients back off briefly on a shed,
//! as a real 429/Retry-After client would).
//!
//! The admission-control claim under test: sheds happen at the hub before
//! the request touches the catalog, so a tenant blowing through its cap
//! burns (almost) none of the shared compute and the victim keeps its
//! throughput. Measured as victim QPS solo vs under noise; the CI
//! `tenant-isolation` job publishes the report as `BENCH_tenant.json` and
//! enforces `victim_retention >= 0.7`.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use cmdl_bench::{emit, pharma_lake};
use cmdl_core::{DiscoveryQuery, ErrorCode, QueryBuilder, SearchMode};
use cmdl_eval::{ExperimentReport, MethodResult};
use cmdl_server::{Backoff, LakeQuotas, ServiceRequest, TenantDefaults, TenantHub, DEFAULT_TENANT};

const NOISY_MAX_INFLIGHT: usize = 1;
const NOISY_THREADS: usize = 4;
/// Victim workers outnumber the noisy tenant's single admitted slot by
/// enough that even on a one-core runner the noisy execution share stays
/// well under the CI retention floor's slack.
const VICTIM_THREADS: usize = 8;
const VICTIM_QUERIES_PER_THREAD: usize = 150;
/// Best-of rounds per phase (scheduler noise on small runners straddles
/// the CI floor on a single measurement).
const ROUNDS: usize = 3;
/// Client backoff after a 429: jittered exponential from base to cap
/// (deterministically seeded per worker), reset on the first admitted
/// request — the same policy the replication shipper uses on a failed
/// delta ship.
const SHED_BACKOFF_BASE: Duration = Duration::from_micros(250);
const SHED_BACKOFF_CAP: Duration = Duration::from_millis(2);

/// Mixed discovery workload over the bench-scale pharma lake (same shape
/// as the server_load bench, trimmed for the two-tenant closed loop).
fn workload(lake: &cmdl_datalake::DataLake) -> Vec<DiscoveryQuery> {
    let mut queries = Vec::new();
    let keyword_texts: Vec<String> = lake
        .tables()
        .iter()
        .take(6)
        .flat_map(|t| t.columns.first())
        .flat_map(|c| c.values.iter().take(4))
        .map(|v| v.as_text())
        .collect();
    for (i, text) in keyword_texts.iter().enumerate() {
        let mode = match i % 3 {
            0 => SearchMode::All,
            1 => SearchMode::Text,
            _ => SearchMode::Tables,
        };
        queries.push(QueryBuilder::keyword(text).mode(mode).top_k(10).build());
    }
    for doc in lake.documents().iter().take(6) {
        queries.push(QueryBuilder::cross_modal_text(&doc.title).top_k(5).build());
    }
    let table_names: Vec<String> = lake.tables().iter().map(|t| t.name.clone()).collect();
    for name in table_names.iter().take(4) {
        queries.push(QueryBuilder::joinable(name).top_k(5).build());
    }
    for name in table_names.iter().take(4) {
        queries.push(QueryBuilder::unionable(name).top_k(5).build());
    }
    queries.push(QueryBuilder::pkfk().top_k(10).build());
    queries
}

/// Seed one tenant's lake element by element through the hub, the same
/// admission-controlled path the benchmark later queries.
fn populate(hub: &TenantHub, tenant: &str, lake: &cmdl_datalake::DataLake) {
    for table in lake.tables() {
        let response = hub.handle(tenant, ServiceRequest::IngestTable(table.clone()));
        assert!(response.ok, "seed {tenant}: {response:?}");
    }
    for doc in lake.documents() {
        let response = hub.handle(tenant, ServiceRequest::IngestDocument(doc.clone()));
        assert!(response.ok, "seed {tenant}: {response:?}");
    }
}

/// Closed-loop victim measurement, best of [`ROUNDS`]: `VICTIM_THREADS`
/// workers each issue `VICTIM_QUERIES_PER_THREAD` queries per round. The
/// victim has no quotas, so every response must succeed — a victim shed
/// would mean the noisy tenant leaked into the victim's admission path.
fn victim_qps(hub: &Arc<TenantHub>, queries: &[DiscoveryQuery]) -> f64 {
    let mut best = 0.0f64;
    for _ in 0..ROUNDS {
        let started = Instant::now();
        std::thread::scope(|scope| {
            for worker in 0..VICTIM_THREADS {
                let hub = Arc::clone(hub);
                scope.spawn(move || {
                    for i in 0..VICTIM_QUERIES_PER_THREAD {
                        let query = queries[(worker + i) % queries.len()].clone();
                        let response = hub.handle("victim", ServiceRequest::Query(query));
                        assert!(response.ok, "victim query must succeed: {response:?}");
                    }
                });
            }
        });
        let total = (VICTIM_THREADS * VICTIM_QUERIES_PER_THREAD) as f64;
        best = best.max(total / started.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let lake = pharma_lake().lake;
    let queries = workload(&lake);

    let hub = TenantHub::new(TenantDefaults::default()).expect("hub");
    for (name, quotas) in [
        ("victim", None),
        (
            "noisy",
            Some(LakeQuotas {
                max_inflight: Some(NOISY_MAX_INFLIGHT),
                ..LakeQuotas::default()
            }),
        ),
    ] {
        let created = hub.handle(
            DEFAULT_TENANT,
            ServiceRequest::CreateLake {
                name: name.to_string(),
                config: None,
                quotas,
            },
        );
        assert!(created.ok, "create {name}: {created:?}");
        populate(&hub, name, &lake);
    }

    // Warm both tenants' query paths once before timing.
    for query in &queries {
        for tenant in ["victim", "noisy"] {
            let response = hub.handle(tenant, ServiceRequest::Query(query.clone()));
            assert!(response.ok, "warmup {tenant}: {response:?}");
        }
    }

    // Phase 1: the victim alone.
    let solo_qps = victim_qps(&hub, &queries);

    // Phase 2: the victim re-measured while the noisy tenant's workers
    // outnumber its in-flight slots — the overflow must shed as typed
    // quota 429s, and at most NOISY_MAX_INFLIGHT noisy queries execute.
    let stop = AtomicBool::new(false);
    let noisy_ok = AtomicU64::new(0);
    let noisy_shed = AtomicU64::new(0);
    let contended_qps = std::thread::scope(|scope| {
        for worker in 0..NOISY_THREADS {
            let hub = Arc::clone(&hub);
            let (stop, noisy_ok, noisy_shed) = (&stop, &noisy_ok, &noisy_shed);
            let queries = &queries;
            scope.spawn(move || {
                let mut backoff =
                    Backoff::seeded(SHED_BACKOFF_BASE, SHED_BACKOFF_CAP, 0x5EED ^ worker as u64);
                let mut i = worker;
                while !stop.load(Ordering::Acquire) {
                    let query = queries[i % queries.len()].clone();
                    i += 1;
                    let response = hub.handle("noisy", ServiceRequest::Query(query));
                    if response.ok {
                        noisy_ok.fetch_add(1, Ordering::Relaxed);
                        backoff.reset();
                    } else {
                        assert_eq!(
                            response.error_code(),
                            Some(ErrorCode::QuotaExceeded),
                            "noisy failures must be the typed quota 429: {response:?}"
                        );
                        noisy_shed.fetch_add(1, Ordering::Relaxed);
                        backoff.sleep();
                    }
                }
            });
        }
        let qps = victim_qps(&hub, &queries);
        stop.store(true, Ordering::Release);
        qps
    });

    let shed = noisy_shed.load(Ordering::Relaxed);
    assert!(
        shed > 0,
        "the noisy tenant never hit its quota; the benchmark measured nothing"
    );

    let retention = contended_qps / solo_qps;
    let mut report = ExperimentReport::new(
        "Multi Tenant",
        format!(
            "Noisy-neighbor isolation on one TenantHub: victim QPS over a mixed \
             {}-query workload, solo vs alongside a tenant whose {} workers share \
             max_inflight = {} (a per-lake CreateLake quota override; overflow \
             sheds as typed QuotaExceeded 429s at admission, before touching the \
             catalog, and clients back off with jittered exponential delays of \
             {}us..{}us on a shed, reset on the next admit). Best of {} \
             rounds per phase. CI floor: victim_retention >= 0.7.",
            queries.len(),
            NOISY_THREADS,
            NOISY_MAX_INFLIGHT,
            SHED_BACKOFF_BASE.as_micros(),
            SHED_BACKOFF_CAP.as_micros(),
            ROUNDS,
        ),
    );
    report.push(MethodResult::new("Victim solo").with("Qps", solo_qps));
    report.push(
        MethodResult::new("Victim under noise")
            .with("Qps", contended_qps)
            .with("Victim_retention", retention),
    );
    report.push(
        MethodResult::new("Noisy neighbor")
            .with("Workers", NOISY_THREADS as f64)
            .with("Served", noisy_ok.load(Ordering::Relaxed) as f64)
            .with("Quota_429s", shed as f64),
    );
    emit(&report);
}
