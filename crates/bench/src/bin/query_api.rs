//! Unified-query-API throughput: batched `execute_many` over one pinned
//! snapshot versus sequential legacy per-kind calls (each of which pins its
//! own snapshot), on a mixed Q1–Q5 workload over the bench-scale pharma
//! lake.
//!
//! Emits `target/reports/query_api.json`; the CI bench-smoke step publishes
//! it as `BENCH_query_api.json` and enforces the no-regression floor
//! (batched QPS ≥ sequential legacy QPS).

use std::time::Instant;

use cmdl_bench::{build_system, emit, pharma_lake};
use cmdl_core::{Cmdl, DiscoveryQuery, QueryBuilder, SearchMode};
use cmdl_eval::{ExperimentReport, MethodResult};

/// Run one query through the legacy per-kind surface (the pre-redesign call
/// pattern: one method per kind, one snapshot per call).
fn legacy_dispatch(cmdl: &Cmdl, query: &DiscoveryQuery) {
    match query {
        DiscoveryQuery::Keyword {
            text,
            mode,
            options,
        } => {
            let _ = cmdl.content_search(text, *mode, options.top_k);
        }
        DiscoveryQuery::CrossModalText { text, options } => {
            let _ = cmdl.cross_modal_search_text(text, options.top_k);
        }
        DiscoveryQuery::CrossModalDoc { document, options } => {
            let _ = cmdl.cross_modal_search(*document, options.top_k);
        }
        DiscoveryQuery::JoinableTable { table, options } => {
            let _ = cmdl.joinable(table, options.top_k);
        }
        DiscoveryQuery::JoinableColumn {
            table,
            column,
            options,
        } => {
            let _ = cmdl.joinable_columns(table, column, options.top_k);
        }
        DiscoveryQuery::Unionable { table, options } => {
            let _ = cmdl.unionable(table, options.top_k);
        }
        DiscoveryQuery::PkFk { options } => {
            let _ = cmdl.pkfk_top(options.top_k, 0.0);
        }
        DiscoveryQuery::DocToTable { .. } => {}
    }
}

/// The mixed discovery workload: keyword searches over drug values and
/// document titles, cross-modal probes, join/union lookups, and a few PK-FK
/// sweeps — roughly the shape of a discovery-service request stream.
fn workload(cmdl: &Cmdl) -> Vec<DiscoveryQuery> {
    let lake = &cmdl.profiled.lake;
    let mut queries = Vec::new();

    let keyword_texts: Vec<String> = lake
        .tables()
        .iter()
        .take(12)
        .flat_map(|t| t.columns.first())
        .flat_map(|c| c.values.iter().take(16))
        .map(|v| v.as_text())
        .collect();
    for (i, text) in keyword_texts.iter().enumerate() {
        let mode = match i % 3 {
            0 => SearchMode::All,
            1 => SearchMode::Text,
            _ => SearchMode::Tables,
        };
        queries.push(QueryBuilder::keyword(text).mode(mode).top_k(10).build());
    }

    for doc in lake.documents().iter().take(40) {
        queries.push(QueryBuilder::cross_modal_text(&doc.title).top_k(5).build());
    }
    for index in 0..lake.num_documents().min(20) {
        queries.push(QueryBuilder::cross_modal_doc(index).top_k(5).build());
    }

    let table_names: Vec<String> = lake.tables().iter().map(|t| t.name.clone()).collect();
    for name in table_names.iter().take(15) {
        queries.push(QueryBuilder::joinable(name).top_k(5).build());
    }
    for name in table_names.iter().take(15) {
        if let Some(column) = lake.table(name).and_then(|t| t.columns.first()) {
            queries.push(
                QueryBuilder::joinable_column(name, &column.name)
                    .top_k(5)
                    .build(),
            );
        }
    }
    for name in table_names.iter().take(8) {
        queries.push(QueryBuilder::unionable(name).top_k(5).build());
    }
    queries.push(QueryBuilder::pkfk().top_k(20).build());
    queries.push(QueryBuilder::pkfk().top_k(20).min_score(0.6).build());
    queries
}

fn main() {
    let cmdl = build_system(pharma_lake().lake);
    let queries = workload(&cmdl);
    let rounds = 5usize;

    // Warm both paths once (thread-local caches, lazy IDF).
    for query in &queries {
        legacy_dispatch(&cmdl, query);
    }
    let _ = cmdl.snapshot().execute_many(&queries);

    // Interleave the three measurements round-robin (best-of-`rounds` each)
    // so thermal/frequency drift hits all paths evenly instead of
    // penalizing whichever runs last.
    let snapshot = cmdl.snapshot();
    let mut legacy_secs = f64::MAX;
    let mut unified_secs = f64::MAX;
    let mut batched_secs = f64::MAX;
    let mut errors = 0usize;
    for _ in 0..rounds {
        let start = Instant::now();
        for query in &queries {
            legacy_dispatch(&cmdl, query);
        }
        legacy_secs = legacy_secs.min(start.elapsed().as_secs_f64());

        let start = Instant::now();
        for query in &queries {
            let _ = snapshot.execute(query);
        }
        unified_secs = unified_secs.min(start.elapsed().as_secs_f64());

        let start = Instant::now();
        let outcomes = snapshot.execute_many(&queries);
        batched_secs = batched_secs.min(start.elapsed().as_secs_f64());
        errors = outcomes.iter().filter(|o| o.is_err()).count();
    }
    let legacy_qps = queries.len() as f64 / legacy_secs;
    let unified_qps = queries.len() as f64 / unified_secs;
    let batched_qps = queries.len() as f64 / batched_secs;
    assert_eq!(errors, 0, "the bench workload only issues valid queries");

    let mut report = ExperimentReport::new(
        "Query Api",
        format!(
            "Mixed Q1-Q5 workload of {} queries over the bench-scale pharma lake \
             ({} tables, {} documents): sequential legacy per-kind calls (one snapshot \
             per call) vs the unified DiscoveryQuery path, sequential and batched \
             (execute_many, rayon). Best of {rounds} rounds.",
            queries.len(),
            cmdl.profiled.lake.num_tables(),
            cmdl.profiled.lake.num_documents(),
        ),
    );
    report.push(
        MethodResult::new("Sequential legacy calls")
            .with("Seconds", legacy_secs)
            .with("Qps", legacy_qps),
    );
    report.push(
        MethodResult::new("Sequential execute")
            .with("Seconds", unified_secs)
            .with("Qps", unified_qps),
    );
    report.push(
        MethodResult::new("Batched execute_many")
            .with("Seconds", batched_secs)
            .with("Qps", batched_qps)
            .with("Speedup_vs_legacy", batched_qps / legacy_qps),
    );
    emit(&report);
}
