//! Table 1: overview of the evaluation data lakes.

use cmdl_bench::{emit, mlopen_lake, pharma_lake, ukopen_lake};
use cmdl_datalake::synth::MlOpenScale;
use cmdl_datalake::LakeStats;
use cmdl_eval::{ExperimentReport, MethodResult};

fn main() {
    let mut report = ExperimentReport::new(
        "Table 1",
        "Overview of the evaluation data lakes (synthetic reproductions): number of tables, \
         discoverable elements, approximate size, and fraction of numeric attributes.",
    );
    let mut add = |label: &str, stats: LakeStats| {
        report.push(
            MethodResult::new(label)
                .with("tables", stats.num_tables as f64)
                .with("columns", stats.num_columns as f64)
                .with("documents", stats.num_documents as f64)
                .with("DEs", stats.num_des() as f64)
                .with("approx_MB", stats.approx_bytes as f64 / 1_000_000.0)
                .with("numeric_%", stats.numeric_ratio * 100.0),
        );
    };
    add("Pharma", LakeStats::compute(&pharma_lake().lake));
    add("UK-Open", LakeStats::compute(&ukopen_lake().lake));
    add(
        "ML-Open SS",
        LakeStats::compute(&mlopen_lake(MlOpenScale::Small).lake),
    );
    add(
        "ML-Open MS",
        LakeStats::compute(&mlopen_lake(MlOpenScale::Medium).lake),
    );
    add(
        "ML-Open LS",
        LakeStats::compute(&mlopen_lake(MlOpenScale::Large).lake),
    );
    emit(&report);
}
