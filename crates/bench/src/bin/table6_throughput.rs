//! Table 6: query throughput (queries per second) of the three index types
//! used as labeling functions — keyword search (BM25), containment (LSH
//! Ensemble), and semantic nearest-neighbour (ANN).
//!
//! For the keyword and containment probes the binary measures both the
//! optimized query path and an in-process reimplementation of the
//! pre-optimization path (`search_exhaustive` — per-query `HashMap`
//! scoring with `top_k × 4` over-fetch and post-filtering — and
//! `query_top_k_brute` — full signature scan plus sort), so the speedup
//! ratio is measured on the same data, same build, same machine.

use std::time::Instant;

use cmdl_bench::{bench_config, build_system, emit, pharma_lake};
use cmdl_datalake::{DeId, DeKind};
use cmdl_eval::{ExperimentReport, MethodResult};

/// Best-of-N throughput measurement: runs `passes` timed passes of
/// `probe` over the workload and returns the highest QPS observed.
/// Best-of is robust against the CPU-steal spikes of shared machines.
fn measure_qps(passes: usize, rounds: usize, workload: usize, mut probe: impl FnMut()) -> f64 {
    let mut best = 0.0f64;
    for _ in 0..passes {
        let start = Instant::now();
        for _ in 0..rounds {
            probe();
        }
        let qps = (rounds * workload) as f64 / start.elapsed().as_secs_f64();
        best = best.max(qps);
    }
    best
}

fn main() {
    let synth = pharma_lake();
    let cmdl = build_system(synth.lake);
    let config = bench_config();

    // Query workload: every document's profile probes each index.
    let doc_profiles: Vec<_> = cmdl
        .profiled
        .doc_ids
        .iter()
        .filter_map(|id| cmdl.profiled.profile(*id))
        .collect();
    let rounds = 10usize;
    let passes = 5usize;
    let k = config.label_probe_top_k;

    let mut report = ExperimentReport::new(
        "Table 6",
        format!(
            "Index probe throughput in queries/second (top-{} probes, {} query documents x {} rounds). \
             *_baseline rows re-run the pre-optimization algorithms in the same process.",
            k,
            doc_profiles.len(),
            rounds
        ),
    );

    // --- Keyword search (BM25 over content, restricted to columns). ---

    // Pre-optimization path: exhaustive HashMap scoring, top_k*4 over-fetch,
    // post-filter by kind (the seed's `filter_by_kind`).
    let keyword_baseline_qps = measure_qps(passes, rounds, doc_profiles.len(), || {
        for p in &doc_profiles {
            let hits = cmdl.indexes.content.search_exhaustive(
                &p.content,
                k * 4,
                cmdl_index::ScoringFunction::default(),
            );
            let _filtered: Vec<(DeId, f64)> = hits
                .into_iter()
                .map(|(id, score)| (DeId(id), score))
                .filter(|(id, _)| {
                    cmdl.profiled
                        .profile(*id)
                        .map(|p| p.kind == DeKind::Column)
                        .unwrap_or(false)
                })
                .take(k)
                .collect();
        }
    });

    // Optimized path: heap-based scoring with the kind filter streamed
    // through the top-k heap.
    let keyword_qps = measure_qps(passes, rounds, doc_profiles.len(), || {
        for p in &doc_profiles {
            let _ = cmdl.indexes.content_search(
                &cmdl.profiled,
                &p.content,
                Some(DeKind::Column),
                k,
                cmdl_index::ScoringFunction::default(),
            );
        }
    });

    report.push(
        MethodResult::new("Content search (BM25 inverted index)")
            .with("Qps", keyword_qps)
            .with("Baseline_qps", keyword_baseline_qps)
            .with("Speedup", keyword_qps / keyword_baseline_qps),
    );

    // --- Containment (LSH Ensemble). ---

    let containment_baseline_qps = measure_qps(passes, rounds, doc_profiles.len(), || {
        for p in &doc_profiles {
            let _ = cmdl.indexes.containment.query_top_k_brute(&p.minhash, k);
        }
    });

    let containment_qps = measure_qps(passes, rounds, doc_profiles.len(), || {
        for p in &doc_profiles {
            let _ = cmdl.indexes.containment_search(&p.minhash, k);
        }
    });

    report.push(
        MethodResult::new("Containment (LSH Ensemble)")
            .with("Qps", containment_qps)
            .with("Baseline_qps", containment_baseline_qps)
            .with("Speedup", containment_qps / containment_baseline_qps),
    );

    // --- Semantic (ANN over solo embeddings). ---

    let ann_qps = measure_qps(passes, rounds, doc_profiles.len(), || {
        for p in &doc_profiles {
            let _ = cmdl.indexes.solo_search(&p.solo.content, k);
        }
    });
    report.push(MethodResult::new("Semantic (ANN random-projection forest)").with("Qps", ann_qps));

    emit(&report);
}
