//! Table 6: query throughput (queries per second) of the three index types
//! used as labeling functions — keyword search (BM25), containment (LSH
//! Ensemble), and semantic nearest-neighbour (ANN).

use std::time::Instant;

use cmdl_bench::{bench_config, build_system, emit, pharma_lake};
use cmdl_eval::{ExperimentReport, MethodResult};

fn main() {
    let synth = pharma_lake();
    let cmdl = build_system(synth.lake);
    let config = bench_config();

    // Query workload: every document's profile probes each index.
    let doc_profiles: Vec<_> = cmdl
        .profiled
        .doc_ids
        .iter()
        .filter_map(|id| cmdl.profiled.profile(*id))
        .collect();
    let rounds = 5usize;

    let mut report = ExperimentReport::new(
        "Table 6",
        format!(
            "Index probe throughput in queries/second (top-{} probes, {} query documents x {} rounds).",
            config.label_probe_top_k,
            doc_profiles.len(),
            rounds
        ),
    );

    // Content keyword search.
    let start = Instant::now();
    let mut count = 0usize;
    for _ in 0..rounds {
        for p in &doc_profiles {
            let _ = cmdl.indexes.content_search(
                &cmdl.profiled,
                &p.content,
                Some(cmdl_datalake::DeKind::Column),
                config.label_probe_top_k,
                cmdl_index::ScoringFunction::default(),
            );
            count += 1;
        }
    }
    report.push(
        MethodResult::new("Content search (BM25 inverted index)")
            .with("Qps", count as f64 / start.elapsed().as_secs_f64()),
    );

    // Containment (LSH Ensemble).
    let start = Instant::now();
    let mut count = 0usize;
    for _ in 0..rounds {
        for p in &doc_profiles {
            let _ = cmdl
                .indexes
                .containment_search(&p.minhash, config.label_probe_top_k);
            count += 1;
        }
    }
    report.push(
        MethodResult::new("Containment (LSH Ensemble)")
            .with("Qps", count as f64 / start.elapsed().as_secs_f64()),
    );

    // Semantic (ANN over solo embeddings).
    let start = Instant::now();
    let mut count = 0usize;
    for _ in 0..rounds {
        for p in &doc_profiles {
            let _ = cmdl
                .indexes
                .solo_search(&p.solo.content, config.label_probe_top_k);
            count += 1;
        }
    }
    report.push(
        MethodResult::new("Semantic (ANN random-projection forest)")
            .with("Qps", count as f64 / start.elapsed().as_secs_f64()),
    );

    emit(&report);
}
