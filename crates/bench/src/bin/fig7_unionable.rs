//! Figure 7: unionable table discovery — precision@K / recall@K of Aurum,
//! D3L, and CMDL on Benchmarks 3A (UK-Open) and 3B (DrugBank-Synthetic).

use cmdl_bench::{build_system, emit, pharma_lake, ukopen_lake};
use cmdl_datalake::benchmarks::unionable_benchmark;
use cmdl_datalake::synth::SyntheticLake;
use cmdl_datalake::BenchmarkId;
use cmdl_eval::{evaluate_union, ExperimentReport, MethodResult, StructuredSystem};

fn run(label: &str, synth: SyntheticLake, id: BenchmarkId, ks: &[usize]) {
    let benchmark = unionable_benchmark(id, &synth);
    let cmdl = build_system(synth.lake);
    let mut report = ExperimentReport::new(
        format!("Figure 7 - Benchmark {label}"),
        format!(
            "Unionable table discovery precision@K / recall@K over {} queries.",
            benchmark.num_queries()
        ),
    );
    for system in [
        StructuredSystem::Aurum,
        StructuredSystem::D3l,
        StructuredSystem::Cmdl,
    ] {
        let eval = evaluate_union(&cmdl, &benchmark, system, ks, "ensemble");
        let mut row = MethodResult::new(eval.system.clone());
        for point in &eval.curve {
            row = row
                .with(format!("P@{}", point.k), point.precision)
                .with(format!("R@{}", point.k), point.recall);
        }
        report.push(row);
    }
    emit(&report);
}

fn main() {
    run(
        "3A (UK-Open)",
        ukopen_lake(),
        BenchmarkId::B3A,
        &[1, 3, 5, 10],
    );
    run(
        "3B (DrugBank-Synthetic)",
        pharma_lake(),
        BenchmarkId::B3B,
        &[1, 3, 5, 10],
    );
}
