//! Figure 10: impact of the triplet-generation parameters on the joint-model
//! training — (a) mini-batch size vs epochs/time to converge, (b) hard-
//! sampling strategy vs training time and model error, (c) triplet-loss
//! margin vs model error.

use cmdl_bench::{bench_config, emit, pharma_lake};
use cmdl_core::{
    CmdlConfig, HardSampling, IndexCatalog, JointTrainer, Profiler, TrainingDatasetGenerator,
};
use cmdl_eval::{ExperimentReport, MethodResult};

fn train_with(config: &CmdlConfig) -> (usize, f64, f64, usize) {
    let synth = pharma_lake();
    let profiler = Profiler::new(config);
    let profiled = profiler.profile_lake(synth.lake);
    let indexes = IndexCatalog::build(&profiled, config);
    let (dataset, _) =
        TrainingDatasetGenerator::new(&profiled, &indexes, config).generate(None, None);
    let (_, report) = JointTrainer::new(config).train(&profiled, &dataset);
    (
        report.epochs,
        report.duration.as_secs_f64(),
        report.error_rate,
        report.triplets_last_epoch,
    )
}

fn main() {
    let base = bench_config();

    // (a) Mini-batch size.
    let mut report_a = ExperimentReport::new(
        "Figure 10a",
        "Impact of the mini-batch matrix size (as % of the training DEs) on convergence: \
         epochs and wall-clock seconds until the loss delta falls below the threshold.",
    );
    for ratio in [0.02f64, 0.05, 0.08, 0.12, 0.16] {
        let config = CmdlConfig {
            mini_batch_ratio: ratio,
            ..base.clone()
        };
        let (epochs, secs, _, _) = train_with(&config);
        report_a.push(
            MethodResult::new(format!("batch {:.0}%", ratio * 100.0))
                .with("epochs", epochs as f64)
                .with("time_sec", secs),
        );
    }
    emit(&report_a);

    // (b) Hard-sampling strategy (fixed epoch budget).
    let mut report_b = ExperimentReport::new(
        "Figure 10b",
        "Impact of the hard-sampling strategy on training time and model error % \
         (fixed epoch budget): average-based cutoff, median-based cutoff, and disabled \
         (all positive x negative combinations).",
    );
    for (label, strategy) in [
        ("Average-based threshold", HardSampling::Average),
        ("Median-based threshold", HardSampling::Median),
        ("Disabled hard sampling", HardSampling::Disabled),
    ] {
        let config = CmdlConfig {
            hard_sampling: strategy,
            max_epochs: 30,
            convergence_delta: 0.0, // force the fixed budget
            ..base.clone()
        };
        let (_, secs, error, triplets) = train_with(&config);
        report_b.push(
            MethodResult::new(label)
                .with("time_sec", secs)
                .with("model_error_%", error * 100.0)
                .with("triplets_per_epoch", triplets as f64),
        );
    }
    emit(&report_b);

    // (c) Triplet-loss margin.
    let mut report_c = ExperimentReport::new(
        "Figure 10c",
        "Impact of the triplet-loss margin (beta) on the model error %.",
    );
    for margin in [0.05f32, 0.1, 0.2, 0.3, 0.4, 0.6] {
        let config = CmdlConfig {
            triplet_margin: margin,
            max_epochs: 40,
            ..base.clone()
        };
        let (_, _, error, _) = train_with(&config);
        report_c.push(
            MethodResult::new(format!("beta = {margin}")).with("model_error_%", error * 100.0),
        );
    }
    emit(&report_c);
}
