//! Figure 9: (a) impact of the training-sample size on Doc→Table accuracy,
//! and (b) impact of the gold-label size on labeling-function elimination.

use cmdl_bench::{bench_config, emit, ukopen_lake};
use cmdl_core::{Cmdl, TrainingDatasetGenerator};
use cmdl_datalake::benchmarks::doc_to_table_benchmark;
use cmdl_datalake::BenchmarkId;
use cmdl_eval::{evaluate_doc2table, Doc2TableMethod, ExperimentReport, MethodResult};
use cmdl_weaklabel::GoldLabel;

fn main() {
    let synth = ukopen_lake();
    let benchmark = doc_to_table_benchmark(BenchmarkId::B1A, &synth);
    let ks = [5, 15, 25];

    // (a) Sample-size sweep.
    let mut report_a = ExperimentReport::new(
        "Figure 9a",
        "Impact of the labeling sample size (fraction of documents/columns used for \
         weak-supervision) on Doc→Table precision/recall for the joint model (Benchmark 1A).",
    );
    for sample in [0.05f64, 0.1, 0.5, 1.0] {
        let mut cmdl = Cmdl::build(synth.lake.clone(), bench_config());
        cmdl.train_joint_with_sample(None, Some(sample));
        let eval = evaluate_doc2table(&cmdl, &benchmark, Doc2TableMethod::CmdlJoint, &ks);
        let mut row = MethodResult::new(format!("sample {:.0}%", sample * 100.0));
        for p in &eval.curve {
            row = row
                .with(format!("P@{}", p.k), p.precision)
                .with(format!("R@{}", p.k), p.recall);
        }
        report_a.push(row);
    }
    emit(&report_a);

    // (b) Gold-label size sweep: how many labeling functions survive tuning.
    let cmdl = Cmdl::build(synth.lake.clone(), bench_config());
    let mut report_b = ExperimentReport::new(
        "Figure 9b",
        "Impact of the gold-label set size (fraction of the ground truth) on the \
         elimination of imprecise labeling functions: number of LFs kept out of 4 and the \
         measured accuracy spread.",
    );
    for ratio in [0.01f64, 0.05, 0.10] {
        let gold = build_gold(&cmdl, &synth, ratio);
        let generator = TrainingDatasetGenerator::new(&cmdl.profiled, &cmdl.indexes, &cmdl.config);
        let (_, gen_report) = generator.generate(Some(&gold), None);
        let kept = gen_report.gold_reports.iter().filter(|r| r.enabled).count();
        let max_acc = gen_report
            .gold_reports
            .iter()
            .map(|r| r.accuracy)
            .fold(0.0f64, f64::max);
        let min_acc = gen_report
            .gold_reports
            .iter()
            .map(|r| r.accuracy)
            .fold(1.0f64, f64::min);
        report_b.push(
            MethodResult::new(format!("gold {:.0}%", ratio * 100.0))
                .with("gold_pairs", gold.len() as f64)
                .with("LFs_kept", kept as f64)
                .with("best_LF_acc", max_acc)
                .with("worst_LF_acc", min_acc),
        );
    }
    emit(&report_b);
}

fn build_gold(
    cmdl: &Cmdl,
    synth: &cmdl_datalake::synth::SyntheticLake,
    ratio: f64,
) -> Vec<GoldLabel> {
    let take = ((synth.truth.doc_to_table.len() as f64 * ratio).ceil() as usize).max(1);
    let mut gold = Vec::new();
    for (doc_idx, tables) in synth.truth.doc_to_table.iter().take(take) {
        let Some(doc_id) = cmdl.profiled.lake.document_id(*doc_idx) else {
            continue;
        };
        for table in tables.iter().take(2) {
            for col in cmdl.profiled.columns_of_table(table).into_iter().take(2) {
                gold.push(GoldLabel::new(doc_id.raw(), col.raw(), true));
            }
        }
        for table in cmdl.profiled.lake.tables() {
            if !tables.contains(&table.name) {
                if let Some(col) = cmdl.profiled.columns_of_table(&table.name).first() {
                    gold.push(GoldLabel::new(doc_id.raw(), col.raw(), false));
                }
            }
        }
    }
    gold
}
