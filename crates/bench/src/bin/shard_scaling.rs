//! Shard scaling: serving QPS and ingest throughput at 1/2/4/8 shards.
//!
//! Queries are issued sequentially in a closed loop — the speedup at N
//! shards comes entirely from each query's scatter/gather running its
//! per-shard scans in parallel, not from concurrent clients — so the
//! reported QPS is the latency win a *single* caller observes. The
//! workload is scan-dominated (unionable + joinable + keyword probes),
//! the query shapes whose per-shard halves sharding actually
//! parallelizes; replica-probed cross-modal queries and the global PK-FK
//! sweep cost the same at any shard count and would only dilute the
//! ratio.
//!
//! Ingest throughput runs 4 writer threads ingesting disjoint tables
//! through the router: per-shard writer gates let tables routed to
//! different shards profile and index concurrently, so rows/sec grows
//! with the shard count while the single-shard row serializes every
//! ingest behind one gate.
//!
//! Every configuration first asserts bit parity of its workload results
//! against the 1-shard build before any timing: a scaling number for a
//! path that returns different hits would be meaningless.

use std::time::Instant;

use cmdl_bench::{bench_config, emit, pharma_lake};
use cmdl_core::{
    CmdlConfig, DiscoveryQuery, Hit, QueryBuilder, SearchMode, ShardPolicy, ShardedCmdl,
};
use cmdl_datalake::{Column, Table};
use cmdl_eval::{ExperimentReport, MethodResult};

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const INGEST_THREADS: usize = 4;
const INGEST_TABLES: usize = 24;
const INGEST_ROWS_PER_COLUMN: usize = 60;

fn shard_config(shards: usize) -> CmdlConfig {
    let mut config = bench_config();
    config.shards = shards;
    config.shard_policy = ShardPolicy::SizeBalanced;
    config
}

/// The scan-dominated serving workload (see module docs).
fn workload() -> Vec<DiscoveryQuery> {
    let mut queries = Vec::new();
    for table in ["Drugs", "Enzymes", "Compounds", "Trials", "Dosages"] {
        queries.push(QueryBuilder::unionable(table).top_k(10).build());
        queries.push(QueryBuilder::joinable(table).top_k(10).build());
    }
    for text in [
        "enzyme inhibitor",
        "chemotherapy cancer therapy",
        "clinical trial phase",
        "drug interaction effect",
    ] {
        queries.push(QueryBuilder::keyword(text).top_k(10).build());
        queries.push(
            QueryBuilder::keyword(text)
                .mode(SearchMode::Tables)
                .top_k(10)
                .build(),
        );
    }
    for (table, column) in [
        ("Drugs", "Id"),
        ("Dosages", "Drug_Key"),
        ("Trials", "Drug_Key"),
    ] {
        queries.push(
            QueryBuilder::joinable_column(table, column)
                .top_k(10)
                .build(),
        );
    }
    queries
}

/// Disjoint synthetic tables for the ingest measurement.
fn ingest_tables() -> Vec<Table> {
    (0..INGEST_TABLES)
        .map(|t| {
            Table::new(
                format!("Ingest_{t}"),
                (0..3)
                    .map(|c| {
                        Column::from_texts(
                            format!("col_{c}"),
                            (0..INGEST_ROWS_PER_COLUMN)
                                .map(|r| format!("value-{t}-{c}-{r} site-{}", (t * 7 + r) % 13)),
                        )
                    })
                    .collect(),
            )
        })
        .collect()
}

fn run_workload(sharded: &ShardedCmdl, queries: &[DiscoveryQuery]) -> Vec<Vec<Hit>> {
    let snapshot = sharded.snapshot();
    queries
        .iter()
        .map(|query| {
            snapshot
                .execute(query)
                .expect("workload query executes")
                .hits
        })
        .collect()
}

/// Best-of-N closed-loop QPS (robust against CPU-steal spikes).
fn measure_qps(sharded: &ShardedCmdl, queries: &[DiscoveryQuery], passes: usize) -> f64 {
    let snapshot = sharded.snapshot();
    let mut best = 0.0f64;
    for _ in 0..passes {
        let start = Instant::now();
        for query in queries {
            let _ = snapshot.execute(query).expect("workload query executes");
        }
        best = best.max(queries.len() as f64 / start.elapsed().as_secs_f64());
    }
    best
}

/// Rows/sec of `INGEST_THREADS` writers ingesting disjoint tables through
/// the router.
fn measure_ingest(sharded: &ShardedCmdl) -> f64 {
    let tables = ingest_tables();
    let total_rows = tables.len() * 3 * INGEST_ROWS_PER_COLUMN;
    let chunks: Vec<Vec<Table>> = (0..INGEST_THREADS)
        .map(|w| {
            tables
                .iter()
                .skip(w)
                .step_by(INGEST_THREADS)
                .cloned()
                .collect()
        })
        .collect();
    let start = Instant::now();
    std::thread::scope(|scope| {
        for chunk in chunks {
            scope.spawn(|| {
                for table in chunk {
                    sharded.ingest_table(table).expect("bench ingest");
                }
            });
        }
    });
    total_rows as f64 / start.elapsed().as_secs_f64()
}

fn main() {
    let queries = workload();
    let mut report = ExperimentReport::new(
        "Shard scaling",
        format!(
            "Sequential closed-loop serving QPS (per-query scatter/gather, {} scan-dominated \
             queries, best of 5) and concurrent ingest rows/sec ({INGEST_THREADS} writer threads, \
             {INGEST_TABLES} tables x 3 columns x {INGEST_ROWS_PER_COLUMN} rows) on the \
             bench-scale pharma lake at 1/2/4/8 shards. Results are parity-checked against the \
             1-shard build before timing.",
            queries.len()
        ),
    );

    let mut reference: Option<Vec<Vec<Hit>>> = None;
    let mut baseline_qps = 0.0f64;
    for shards in SHARD_COUNTS {
        let sharded = ShardedCmdl::build(pharma_lake().lake, shard_config(shards));
        let results = run_workload(&sharded, &queries);
        match &reference {
            None => reference = Some(results),
            Some(expected) => assert_eq!(
                expected, &results,
                "sharded results diverged from the single-shard build at {shards} shards"
            ),
        }
        let qps = measure_qps(&sharded, &queries, 5);
        let ingest = measure_ingest(&sharded);
        if shards == 1 {
            baseline_qps = qps;
        }
        report.push(
            MethodResult::new(format!("{shards} shard(s)"))
                .with("Qps", qps)
                .with("Qps_vs_1_shard", qps / baseline_qps)
                .with("Ingest_rows_per_sec", ingest),
        );
    }

    emit(&report);
}
