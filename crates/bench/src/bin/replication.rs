//! Replicated serving: read QPS scaling at 1/2/4 replicas and failover
//! time from replica kill to lag-bound rerouting.
//!
//! **Serving model.** A replica's value is an extra snapshot source with
//! its own serving capacity; in-process loopback replicas cannot show
//! network or machine parallelism, so the bench models each snapshot
//! source as one closed-loop serving thread (the way one process on one
//! node would drain its query queue). The single backend gets one loop
//! over the writer's published snapshot; an N-replica group gets N loops,
//! one per replica snapshot. Reported QPS is the aggregate — the capacity
//! a load balancer could extract from the group. Every configuration is
//! parity-checked against the single build before any timing: a scaling
//! number over divergent results would be meaningless.
//!
//! **Failover.** With a 2-replica group serving, replica r0 is killed
//! mid-stream. The writer keeps mutating (delta ships to the dead link
//! fail, retry through the jittered backoff, and are abandoned as lag),
//! and the clock runs from the kill until the router stops considering
//! r0 — its lag exceeds the lag bound — and a service read answers at the
//! writer's current generation. CI floors: failover < 250 ms always;
//! aggregate read QPS at 4 replicas >= 1.5x single on >= 4-core runners.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use cmdl_bench::{bench_config, emit, pharma_lake};
use cmdl_core::{
    CatalogSnapshot, Cmdl, CmdlConfig, DiscoveryQuery, Hit, QueryBuilder, Replica,
    ReplicationConfig, ReplicationGroup, SearchMode,
};
use cmdl_datalake::{Column, Document, Table};
use cmdl_eval::{ExperimentReport, MethodResult};
use cmdl_server::{CmdlService, ResponsePayload, ServiceRequest};

const REPLICA_COUNTS: [usize; 3] = [1, 2, 4];
/// Closed-loop passes over the workload per serving thread.
const PASSES: usize = 6;
/// Mutations shipped while the failover clock runs.
const FAILOVER_MUTATIONS: usize = 16;

fn replication_config(replicas: usize) -> ReplicationConfig {
    ReplicationConfig {
        replicas,
        lag_bound: 2,
        resync_lag: 4,
        heartbeat_interval: Duration::from_millis(1),
        retry_base: Duration::from_micros(100),
        retry_cap: Duration::from_millis(1),
        ..ReplicationConfig::default()
    }
}

/// The serving workload: the same scan-dominated mix the shard bench uses,
/// trimmed to the query kinds a read replica answers from its snapshot.
fn workload() -> Vec<DiscoveryQuery> {
    let mut queries = Vec::new();
    for table in ["Drugs", "Enzymes", "Compounds", "Trials"] {
        queries.push(QueryBuilder::unionable(table).top_k(10).build());
        queries.push(QueryBuilder::joinable(table).top_k(10).build());
    }
    for text in [
        "enzyme inhibitor",
        "clinical trial phase",
        "drug interaction effect",
    ] {
        queries.push(QueryBuilder::keyword(text).top_k(10).build());
        queries.push(
            QueryBuilder::keyword(text)
                .mode(SearchMode::Tables)
                .top_k(10)
                .build(),
        );
    }
    queries
}

fn run_workload(snapshot: &CatalogSnapshot, queries: &[DiscoveryQuery]) -> Vec<Vec<Hit>> {
    queries
        .iter()
        .map(|query| snapshot.execute(query).expect("workload executes").hits)
        .collect()
}

/// Aggregate closed-loop QPS over one serving thread per snapshot source.
fn measure_group_qps(sources: &[CatalogSnapshot], queries: &[DiscoveryQuery]) -> f64 {
    let served = AtomicU64::new(0);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for snapshot in sources {
            let served = &served;
            scope.spawn(move || {
                for _ in 0..PASSES {
                    for query in queries {
                        let _ = snapshot.execute(query).expect("workload executes");
                        served.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    served.load(Ordering::Relaxed) as f64 / start.elapsed().as_secs_f64()
}

/// A replicated service plus the handles the failover probe steers.
struct Rig {
    service: CmdlService,
    replicas: Vec<Arc<Replica>>,
    links: Vec<Arc<cmdl_core::LoopbackLink>>,
}

fn replicated_rig(replicas: usize, config: CmdlConfig) -> Rig {
    let cmdl = Cmdl::build(pharma_lake().lake, config);
    let group = ReplicationGroup::new(&cmdl, replication_config(replicas));
    let replica_handles = (0..replicas).map(|i| group.replica(i)).collect();
    let links = (0..replicas)
        .map(|i| group.loopback(i).expect("loopback link"))
        .collect();
    Rig {
        service: CmdlService::replicated(cmdl, group),
        replicas: replica_handles,
        links,
    }
}

fn mutate(service: &CmdlService, i: usize) {
    if i.is_multiple_of(2) {
        let table = Table::new(
            format!("Failover_{i}"),
            vec![Column::from_texts(
                "Id",
                [format!("f-{i}-a"), format!("f-{i}-b")],
            )],
        );
        assert!(service.ingest_table(table).ok);
    } else {
        let document = Document::new(
            format!("failover-note-{i}"),
            "Failover",
            format!("replication failover note number {i}"),
        );
        assert!(service.ingest_document(document).ok);
    }
}

/// Milliseconds from killing r0 until the router excludes it (lag past
/// the bound) and a service read answers at the writer's generation.
fn measure_failover_ms() -> f64 {
    let rig = replicated_rig(2, bench_config());
    for i in 0..4 {
        mutate(&rig.service, i);
    }
    // Kill the way the group does: process dies, link refuses ships.
    rig.replicas[0].kill();
    rig.links[0].set_down(true);
    let start = Instant::now();
    let mut rerouted = None;
    for i in 4..4 + FAILOVER_MUTATIONS {
        mutate(&rig.service, i);
        let status = rig.service.replica_status();
        if status[0].lag <= 2 {
            continue;
        }
        // r0 is out of the routing set; confirm a read serves the
        // writer's current generation (from r1 or the writer fallback).
        let generation = rig.service.snapshot().generation;
        let response = rig.service.handle(ServiceRequest::Query(
            QueryBuilder::keyword("failover note").top_k(5).build(),
        ));
        match response.payload {
            Some(ResponsePayload::Query(inner)) if inner.generation == generation => {
                rerouted = Some(start.elapsed());
                break;
            }
            Some(ResponsePayload::Query(_)) => continue,
            other => panic!("wrong payload: {other:?}"),
        }
    }
    let elapsed = rerouted.expect("failover must reroute within the mutation budget");
    elapsed.as_secs_f64() * 1e3
}

fn main() {
    let queries = workload();
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let mut report = ExperimentReport::new(
        "Replication",
        format!(
            "Replicated serving on the bench-scale pharma lake: aggregate closed-loop read QPS \
             with one serving thread per snapshot source ({} scan-dominated queries x {PASSES} \
             passes per source; the single backend serves from the writer's published snapshot, \
             an N-replica group from N replica snapshots, parity-checked against single before \
             timing), and failover time from replica kill to lag-bound rerouting (2-replica \
             group, lag bound 2, writer mutating throughout). CI floors: failover < 250 ms; \
             4-replica QPS >= 1.5x single on >= 4-core runners. This run saw {cores} cores.",
            queries.len()
        ),
    );

    // Single backend: one serving loop over the writer's published snapshot.
    let single = CmdlService::build(pharma_lake().lake, bench_config());
    let reference = run_workload(&single.snapshot(), &queries);
    let single_qps = measure_group_qps(&[single.snapshot()], &queries);
    report.push(
        MethodResult::new("Single")
            .with("Read_qps", single_qps)
            .with("Cores", cores as f64),
    );

    for replicas in REPLICA_COUNTS {
        let rig = replicated_rig(replicas, bench_config());
        let sources: Vec<CatalogSnapshot> = rig
            .replicas
            .iter()
            .map(|replica| replica.snapshot())
            .collect();
        for snapshot in &sources {
            assert_eq!(
                reference,
                run_workload(snapshot, &queries),
                "replica snapshots diverged from the single build at {replicas} replica(s)"
            );
        }
        let qps = measure_group_qps(&sources, &queries);
        report.push(
            MethodResult::new(format!("{replicas} replica(s)"))
                .with("Read_qps", qps)
                .with("Qps_vs_single", qps / single_qps),
        );
    }

    let failover_ms = measure_failover_ms();
    report.push(MethodResult::new("Failover").with("Failover_ms", failover_ms));

    emit(&report);
}
