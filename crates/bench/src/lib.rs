//! # cmdl-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! paper's evaluation section. Each experiment is a binary under `src/bin/`
//! (see `DESIGN.md` for the experiment ↔ binary mapping); all binaries print
//! an aligned text table to stdout and write a JSON report under
//! `target/reports/`.
//!
//! This library crate holds the helpers shared by the binaries: benchmark-
//! scale lake construction, system construction, and report output.

use std::path::PathBuf;

use cmdl_core::{Cmdl, CmdlConfig};
use cmdl_datalake::synth::{self, MlOpenScale, SyntheticLake};
use cmdl_eval::ExperimentReport;

/// The directory reports are written to.
pub fn report_dir() -> PathBuf {
    PathBuf::from("target/reports")
}

/// Print a report and persist it as JSON.
pub fn emit(report: &ExperimentReport) {
    println!("{}", report.to_text());
    match report.write_json(report_dir()) {
        Ok(path) => println!("(report written to {})\n", path.display()),
        Err(err) => eprintln!("warning: could not write report: {err}"),
    }
}

/// The benchmark-scale CMDL configuration: smaller sketches/embeddings than
/// production defaults so every experiment completes on a laptop, but the
/// same default ratios (sample size, mini-batch size, margin) as the paper.
pub fn bench_config() -> CmdlConfig {
    CmdlConfig {
        minhash_hashes: 64,
        embedding_dim: 48,
        joint_dim: 32,
        label_probe_top_k: 10,
        sample_ratio: 0.3,
        mini_batch_ratio: 0.08,
        max_epochs: 60,
        ann_trees: 8,
        ..CmdlConfig::default()
    }
}

/// The benchmark-scale Pharma lake.
pub fn pharma_lake() -> SyntheticLake {
    synth::pharma::generate(&synth::PharmaConfig {
        num_drugs: 60,
        num_enzymes: 30,
        num_documents: 80,
        num_interactions: 120,
        num_synthetic_tables: 10,
        ..Default::default()
    })
}

/// The benchmark-scale UK-Open lake.
pub fn ukopen_lake() -> SyntheticLake {
    synth::ukopen::generate(&synth::UkOpenConfig {
        num_categories: 6,
        tables_per_category: 4,
        rows_per_table: 40,
        num_documents: 60,
        ..Default::default()
    })
}

/// The benchmark-scale ML-Open lake at a given scale.
pub fn mlopen_lake(scale: MlOpenScale) -> SyntheticLake {
    synth::mlopen(scale)
}

/// Build a CMDL system over a lake with the benchmark configuration.
pub fn build_system(lake: cmdl_datalake::DataLake) -> Cmdl {
    Cmdl::build(lake, bench_config())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_config_keeps_paper_ratios() {
        let c = bench_config();
        assert!((c.mini_batch_ratio - 0.08).abs() < 1e-12);
        assert!((c.triplet_margin - 0.2).abs() < 1e-6);
    }

    #[test]
    fn lakes_are_generated() {
        assert!(pharma_lake().lake.num_tables() > 10);
        assert!(ukopen_lake().lake.num_tables() > 10);
        assert!(mlopen_lake(MlOpenScale::Small).lake.num_tables() > 5);
    }
}
