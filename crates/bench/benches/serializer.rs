//! Criterion micro-benchmarks for the wire serializer: the zero-DOM
//! streaming encoder (reusable buffer) against the build-the-`Json`-tree
//! DOM path, on a realistic `QueryBatch` service envelope.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use cmdl_bench::build_system;
use cmdl_core::QueryBuilder;
use cmdl_datalake::synth::{self, PharmaConfig};
use cmdl_server::{CmdlService, ServiceRequest, ServiceResponse};

fn batch_envelope() -> ServiceResponse {
    let cmdl = build_system(synth::pharma::generate(&PharmaConfig::tiny()).lake);
    let service = CmdlService::new(cmdl);
    let snapshot = service.snapshot();
    let queries = snapshot
        .profiled
        .lake
        .tables()
        .iter()
        .take(12)
        .flat_map(|t| {
            [
                QueryBuilder::keyword(&t.name).top_k(8).build(),
                QueryBuilder::joinable(&t.name).top_k(5).build(),
            ]
        })
        .collect();
    let response = service.handle(ServiceRequest::QueryBatch(queries));
    assert!(response.ok);
    response
}

fn serializer_benches(c: &mut Criterion) {
    let response = batch_envelope();
    // Sanity: both encoders agree byte-for-byte before timing anything.
    let dom = serde_json::to_string(&response).unwrap();
    let mut streamed = String::new();
    serde_json::write_to_string(&response, &mut streamed);
    assert_eq!(streamed, dom);

    c.bench_function("serialize_envelope_dom", |b| {
        b.iter(|| black_box(serde_json::to_string(black_box(&response)).unwrap()))
    });

    let mut buffer = String::with_capacity(dom.len());
    c.bench_function("serialize_envelope_streaming", |b| {
        b.iter(|| {
            buffer.clear();
            serde_json::write_to_string(black_box(&response), &mut buffer);
            black_box(buffer.len())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = serializer_benches
}
criterion_main!(benches);
