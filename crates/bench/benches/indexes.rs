//! Criterion micro-benchmarks for the CMDL index probes (supports Table 6):
//! BM25 content search, LSH-Ensemble containment search, and ANN semantic
//! search — the three labeling-function probes.

use criterion::{criterion_group, criterion_main, Criterion};

use cmdl_bench::{bench_config, build_system};
use cmdl_datalake::synth::{self, PharmaConfig};
use cmdl_index::ScoringFunction;

fn index_benches(c: &mut Criterion) {
    let config = bench_config();
    let lake = synth::pharma::generate(&PharmaConfig::tiny()).lake;
    let cmdl = build_system(lake);
    let doc_id = cmdl.profiled.doc_ids[0];
    let profile = cmdl.profiled.profile(doc_id).expect("profiled").clone();
    let k = config.label_probe_top_k;

    c.bench_function("bm25_content_probe", |b| {
        b.iter(|| {
            cmdl.indexes.content_search(
                &cmdl.profiled,
                &profile.content,
                Some(cmdl_datalake::DeKind::Column),
                k,
                ScoringFunction::default(),
            )
        })
    });

    c.bench_function("lshensemble_containment_probe", |b| {
        b.iter(|| cmdl.indexes.containment_search(&profile.minhash, k))
    });

    c.bench_function("ann_semantic_probe", |b| {
        b.iter(|| cmdl.indexes.solo_search(&profile.solo.content, k))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = index_benches
}
criterion_main!(benches);
