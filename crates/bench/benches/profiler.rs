//! Criterion micro-benchmarks for the CMDL profiler (supports Figure 8):
//! structured-column profiling and unstructured-document transformation.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use cmdl_bench::bench_config;
use cmdl_core::Profiler;
use cmdl_datalake::synth::{self, PharmaConfig};
use cmdl_datalake::DeId;
use cmdl_text::{Pipeline, PipelineConfig};

fn profiler_benches(c: &mut Criterion) {
    let config = bench_config();
    let profiler = Profiler::new(&config);
    let lake = synth::pharma::generate(&PharmaConfig::tiny()).lake;
    let table = lake.table("Drugs").expect("exists").clone();
    let doc = lake.documents()[0].clone();
    let pipeline = Pipeline::new(PipelineConfig::default());

    c.bench_function("profile_column_drugs_name", |b| {
        b.iter(|| profiler.profile_column(DeId(0), "Drugs", &table.columns[1], table.num_rows()))
    });

    c.bench_function("document_nlp_to_bow", |b| {
        b.iter(|| pipeline.process(&doc.text))
    });

    c.bench_function("profile_tiny_pharma_lake", |b| {
        b.iter_batched(
            || synth::pharma::generate(&PharmaConfig::tiny()).lake,
            |lake| profiler.profile_lake(lake),
            BatchSize::SmallInput,
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = profiler_benches
}
criterion_main!(benches);
