//! Numeric column profiles and range-overlap similarity.
//!
//! For numeric columns CMDL maintains basic statistics (min, max, count,
//! distinct count) and uses a range-overlap similarity as in Aurum/D3L
//! (paper Sections 3 and 5.1): two numeric columns are related if their value
//! ranges overlap significantly, with inclusion as the strongest form.

use serde::{Deserialize, Serialize};

/// Summary statistics of a numeric column.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NumericProfile {
    /// Minimum observed value.
    pub min: f64,
    /// Maximum observed value.
    pub max: f64,
    /// Number of observed values.
    pub count: usize,
    /// Number of distinct observed values.
    pub distinct: usize,
    /// Mean of observed values.
    pub mean: f64,
}

impl NumericProfile {
    /// Build a profile from a slice of values. Returns `None` for an empty
    /// slice or when every value is non-finite.
    pub fn from_values(values: &[f64]) -> Option<Self> {
        let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
        if finite.is_empty() {
            return None;
        }
        let mut sorted = finite.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let distinct = sorted
            .windows(2)
            .filter(|w| (w[0] - w[1]).abs() > f64::EPSILON)
            .count()
            + 1;
        let sum: f64 = finite.iter().sum();
        Some(Self {
            min: sorted[0],
            max: *sorted.last().unwrap(),
            count: finite.len(),
            distinct,
            mean: sum / finite.len() as f64,
        })
    }

    /// Width of the value range (0 for constant columns).
    pub fn range(&self) -> f64 {
        self.max - self.min
    }

    /// Ratio of distinct values to total values (1.0 means all unique — a
    /// primary-key-like column).
    pub fn uniqueness(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.distinct as f64 / self.count as f64
        }
    }

    /// Is the range of `self` entirely contained in the range of `other`?
    pub fn range_contained_in(&self, other: &NumericProfile) -> bool {
        self.min >= other.min && self.max <= other.max
    }
}

/// Range-overlap similarity between two numeric profiles in `[0, 1]`.
///
/// Defined as `overlap_width / min(width_a, width_b)` so that full inclusion
/// of the narrower range scores 1.0. Point ranges (constant columns) score
/// 1.0 when the point lies inside the other range and 0.0 otherwise.
pub fn numeric_overlap(a: &NumericProfile, b: &NumericProfile) -> f64 {
    let lo = a.min.max(b.min);
    let hi = a.max.min(b.max);
    if hi < lo {
        return 0.0;
    }
    let overlap = hi - lo;
    let min_width = a.range().min(b.range());
    if min_width <= f64::EPSILON {
        // At least one range is a single point that lies within the other.
        return 1.0;
    }
    (overlap / min_width).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_from_values() {
        let p = NumericProfile::from_values(&[1.0, 2.0, 2.0, 5.0]).unwrap();
        assert_eq!(p.min, 1.0);
        assert_eq!(p.max, 5.0);
        assert_eq!(p.count, 4);
        assert_eq!(p.distinct, 3);
        assert!((p.mean - 2.5).abs() < 1e-12);
        assert!((p.uniqueness() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_and_nan_values() {
        assert!(NumericProfile::from_values(&[]).is_none());
        assert!(NumericProfile::from_values(&[f64::NAN]).is_none());
        let p = NumericProfile::from_values(&[1.0, f64::NAN, 3.0]).unwrap();
        assert_eq!(p.count, 2);
    }

    #[test]
    fn overlap_of_identical_ranges_is_one() {
        let a = NumericProfile::from_values(&[0.0, 10.0]).unwrap();
        assert!((numeric_overlap(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_ranges_have_zero_overlap() {
        let a = NumericProfile::from_values(&[0.0, 10.0]).unwrap();
        let b = NumericProfile::from_values(&[20.0, 30.0]).unwrap();
        assert_eq!(numeric_overlap(&a, &b), 0.0);
    }

    #[test]
    fn inclusion_scores_one() {
        let narrow = NumericProfile::from_values(&[4.0, 6.0]).unwrap();
        let wide = NumericProfile::from_values(&[0.0, 10.0]).unwrap();
        assert!((numeric_overlap(&narrow, &wide) - 1.0).abs() < 1e-12);
        assert!(narrow.range_contained_in(&wide));
        assert!(!wide.range_contained_in(&narrow));
    }

    #[test]
    fn partial_overlap() {
        let a = NumericProfile::from_values(&[0.0, 10.0]).unwrap();
        let b = NumericProfile::from_values(&[5.0, 15.0]).unwrap();
        assert!((numeric_overlap(&a, &b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn constant_column_overlap() {
        let point = NumericProfile::from_values(&[5.0, 5.0]).unwrap();
        let range = NumericProfile::from_values(&[0.0, 10.0]).unwrap();
        assert_eq!(numeric_overlap(&point, &range), 1.0);
        let outside = NumericProfile::from_values(&[20.0, 20.0]).unwrap();
        assert_eq!(numeric_overlap(&outside, &range), 0.0);
    }

    #[test]
    fn uniqueness_of_key_like_column() {
        let p = NumericProfile::from_values(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert!((p.uniqueness() - 1.0).abs() < 1e-12);
    }
}
