//! Banded Locality Sensitive Hashing over MinHash signatures.
//!
//! The classic LSH construction: a signature of `k` hash values is split into
//! `b` bands of `r` rows each; two elements collide if any band hashes to the
//! same bucket. The probability of collision for Jaccard similarity `s` is
//! `1 - (1 - s^r)^b`, which approximates a step function around the threshold
//! `(1/b)^(1/r)`.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::minhash::MinHash;

/// An LSH index over MinHash signatures keyed by an opaque `u64` element id.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LshIndex {
    bands: usize,
    rows: usize,
    /// One bucket map per band: band-hash -> element ids.
    buckets: Vec<HashMap<u64, Vec<u64>>>,
    /// Stored signatures for candidate verification and ranking.
    signatures: HashMap<u64, MinHash>,
}

impl LshIndex {
    /// Create an index with `bands` bands of `rows` rows each. The MinHash
    /// signatures inserted later must have at least `bands * rows` values.
    pub fn new(bands: usize, rows: usize) -> Self {
        assert!(bands > 0 && rows > 0, "bands and rows must be positive");
        Self {
            bands,
            rows,
            buckets: vec![HashMap::new(); bands],
            signatures: HashMap::new(),
        }
    }

    /// Choose band/row parameters targeting a given Jaccard similarity
    /// threshold for signatures of length `num_hashes`.
    pub fn with_threshold(num_hashes: usize, threshold: f64) -> Self {
        let (bands, rows) = optimal_params(num_hashes, threshold);
        Self::new(bands, rows)
    }

    /// Number of bands.
    pub fn bands(&self) -> usize {
        self.bands
    }

    /// Rows per band.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of indexed elements.
    pub fn len(&self) -> usize {
        self.signatures.len()
    }

    /// Is the index empty?
    pub fn is_empty(&self) -> bool {
        self.signatures.is_empty()
    }

    /// The approximate similarity threshold implied by the band parameters.
    pub fn threshold(&self) -> f64 {
        (1.0 / self.bands as f64).powf(1.0 / self.rows as f64)
    }

    /// Insert an element's signature.
    ///
    /// # Panics
    /// Panics if the signature is shorter than `bands * rows`.
    pub fn insert(&mut self, id: u64, signature: MinHash) {
        assert!(
            signature.num_hashes() >= self.bands * self.rows,
            "signature too short for band configuration"
        );
        for (band, bucket) in self.buckets.iter_mut().enumerate() {
            let h = band_hash(&signature, band, self.rows);
            bucket.entry(h).or_default().push(id);
        }
        self.signatures.insert(id, signature);
    }

    /// Retrieve the stored signature for an element.
    pub fn signature(&self, id: u64) -> Option<&MinHash> {
        self.signatures.get(&id)
    }

    /// Return the ids of elements that share at least one band bucket with
    /// the query signature (candidate set, unverified).
    pub fn candidates(&self, query: &MinHash) -> Vec<u64> {
        let mut out = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for (band, bucket) in self.buckets.iter().enumerate() {
            let h = band_hash(query, band, self.rows);
            if let Some(ids) = bucket.get(&h) {
                for &id in ids {
                    if seen.insert(id) {
                        out.push(id);
                    }
                }
            }
        }
        out
    }

    /// Query for the `top_k` most Jaccard-similar elements among the LSH
    /// candidates, returning `(id, estimated_jaccard)` sorted descending.
    pub fn query_top_k(&self, query: &MinHash, top_k: usize) -> Vec<(u64, f64)> {
        let mut scored: Vec<(u64, f64)> = self
            .candidates(query)
            .into_iter()
            .filter_map(|id| self.signatures.get(&id).map(|sig| (id, query.jaccard(sig))))
            .collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        scored.truncate(top_k);
        scored
    }
}

/// Hash the `band`-th band (of `rows` values) of a signature.
fn band_hash(signature: &MinHash, band: usize, rows: usize) -> u64 {
    let start = band * rows;
    let end = (start + rows).min(signature.values().len());
    let mut h = 0xCBF2_9CE4_8422_2325u64 ^ (band as u64).wrapping_mul(0x1000_0000_01B3);
    for &v in &signature.values()[start..end] {
        h ^= v;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
        h = h.rotate_left(17);
    }
    h
}

/// Pick `(bands, rows)` minimizing the difference between the implied
/// threshold and the requested one, subject to `bands * rows <= num_hashes`.
pub fn optimal_params(num_hashes: usize, threshold: f64) -> (usize, usize) {
    let mut best = (1, num_hashes.max(1));
    let mut best_err = f64::MAX;
    for rows in 1..=num_hashes.max(1) {
        let bands = num_hashes / rows;
        if bands == 0 {
            continue;
        }
        let t = (1.0 / bands as f64).powf(1.0 / rows as f64);
        let err = (t - threshold).abs();
        if err < best_err {
            best_err = err;
            best = (bands, rows);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minhash::MinHasher;

    fn items(range: std::ops::Range<u32>) -> Vec<String> {
        range.map(|i| format!("v{i}")).collect()
    }

    #[test]
    fn finds_similar_elements() {
        let hasher = MinHasher::new(128, 7);
        let mut index = LshIndex::with_threshold(128, 0.5);
        index.insert(1, hasher.signature(items(0..100).iter()));
        index.insert(2, hasher.signature(items(10..110).iter())); // high overlap with 1
        index.insert(3, hasher.signature(items(500..600).iter())); // disjoint

        let query = hasher.signature(items(0..100).iter());
        let results = index.query_top_k(&query, 2);
        assert_eq!(results[0].0, 1);
        assert!(results.iter().any(|(id, _)| *id == 2));
        assert!(!results.iter().take(2).any(|(id, _)| *id == 3));
    }

    #[test]
    fn disjoint_elements_rarely_candidates() {
        let hasher = MinHasher::new(128, 8);
        let mut index = LshIndex::with_threshold(128, 0.8);
        for i in 0..20u64 {
            let start = 1000 + i as u32 * 200;
            index.insert(i, hasher.signature(items(start..start + 100).iter()));
        }
        let query = hasher.signature(items(0..100).iter());
        // With a 0.8 threshold and zero overlap, candidates should be few.
        assert!(index.candidates(&query).len() <= 2);
    }

    #[test]
    fn threshold_parameters_reasonable() {
        let (b, r) = optimal_params(128, 0.5);
        assert!(b * r <= 128);
        let t = (1.0 / b as f64).powf(1.0 / r as f64);
        assert!((t - 0.5).abs() < 0.15);
    }

    #[test]
    fn len_and_signature_lookup() {
        let hasher = MinHasher::new(64, 1);
        let mut index = LshIndex::new(16, 4);
        assert!(index.is_empty());
        index.insert(7, hasher.signature(["a1", "b2"]));
        assert_eq!(index.len(), 1);
        assert!(index.signature(7).is_some());
        assert!(index.signature(8).is_none());
        assert!(index.threshold() > 0.0 && index.threshold() < 1.0);
    }

    #[test]
    #[should_panic]
    fn short_signature_panics() {
        let hasher = MinHasher::new(8, 1);
        let mut index = LshIndex::new(16, 4);
        index.insert(1, hasher.signature(["x"]));
    }
}
