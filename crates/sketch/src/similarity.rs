//! Exact set-similarity helpers.
//!
//! These are used for brute-force ground-truth generation (paper Table 2:
//! "Brute force" ground truth for Benchmarks 2B/2C) and for verifying the
//! sketch-based estimators in tests.

use std::collections::HashSet;

/// Exact Jaccard similarity `|A ∩ B| / |A ∪ B|` of two string sets.
pub fn exact_jaccard<S: AsRef<str> + Eq + std::hash::Hash>(a: &[S], b: &[S]) -> f64 {
    let sa: HashSet<&str> = a.iter().map(|s| s.as_ref()).collect();
    let sb: HashSet<&str> = b.iter().map(|s| s.as_ref()).collect();
    if sa.is_empty() && sb.is_empty() {
        return 0.0;
    }
    let inter = sa.intersection(&sb).count();
    let union = sa.len() + sb.len() - inter;
    if union == 0 {
        0.0
    } else {
        inter as f64 / union as f64
    }
}

/// Exact Jaccard set containment `|A ∩ B| / |A|` of set `a` in set `b`.
pub fn exact_containment<S: AsRef<str> + Eq + std::hash::Hash>(a: &[S], b: &[S]) -> f64 {
    let sa: HashSet<&str> = a.iter().map(|s| s.as_ref()).collect();
    if sa.is_empty() {
        return 0.0;
    }
    let sb: HashSet<&str> = b.iter().map(|s| s.as_ref()).collect();
    let inter = sa.intersection(&sb).count();
    inter as f64 / sa.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jaccard_basic() {
        let a = vec!["a", "b", "c"];
        let b = vec!["b", "c", "d"];
        assert!((exact_jaccard(&a, &b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn containment_basic() {
        let a = vec!["a", "b"];
        let b = vec!["a", "b", "c", "d"];
        assert!((exact_containment(&a, &b) - 1.0).abs() < 1e-12);
        assert!((exact_containment(&b, &a) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn duplicates_ignored() {
        let a = vec!["a", "a", "b"];
        let b = vec!["a", "b", "b"];
        assert!((exact_jaccard(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_sets() {
        let empty: Vec<&str> = vec![];
        let b = vec!["a"];
        assert_eq!(exact_jaccard(&empty, &b), 0.0);
        assert_eq!(exact_containment(&empty, &b), 0.0);
        assert_eq!(exact_jaccard(&empty, &empty), 0.0);
    }
}
