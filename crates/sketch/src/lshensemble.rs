//! LSH Ensemble: approximate set-containment search.
//!
//! Plain MinHash LSH targets Jaccard similarity, which degrades badly when
//! the query and the indexed sets have very different cardinalities — the
//! exact situation that arises in CMDL's cross-modality discovery (a short
//! document queried against large columns). The LSH Ensemble of Zhu et al.
//! (PVLDB 2016) fixes this by partitioning the indexed sets by cardinality
//! and, at query time, converting the containment threshold into a
//! per-partition Jaccard threshold using the partition's upper cardinality
//! bound:
//!
//! `J ≥ t·|Q| / (|Q| + u − t·|Q|)` where `u` is the partition's upper bound.
//!
//! Each partition keeps a set of banded LSH indexes; the partition whose
//! band parameters best match the converted threshold is probed.

use serde::{Deserialize, Serialize};

use crate::lsh::optimal_params;
use crate::minhash::MinHash;

/// Configuration for [`LshEnsemble`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LshEnsembleConfig {
    /// Number of cardinality partitions. Default 8.
    pub num_partitions: usize,
    /// Number of MinHash values per signature (must match the hasher).
    pub num_hashes: usize,
    /// Default containment threshold for `query` (can be overridden per call).
    pub default_threshold: f64,
}

impl Default for LshEnsembleConfig {
    fn default() -> Self {
        Self {
            num_partitions: 8,
            num_hashes: crate::minhash::DEFAULT_NUM_HASHES,
            default_threshold: 0.5,
        }
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Entry {
    id: u64,
    signature: MinHash,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Partition {
    lower: usize,
    upper: usize,
    entries: Vec<Entry>,
}

/// An LSH Ensemble index for containment queries, keyed by opaque `u64` ids.
///
/// The index is built in two phases: [`insert`](LshEnsemble::insert) all
/// elements, then [`build`](LshEnsemble::build) to create the cardinality
/// partitions. Queries before `build` fall back to a brute-force scan.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LshEnsemble {
    config: LshEnsembleConfig,
    pending: Vec<Entry>,
    partitions: Vec<Partition>,
    built: bool,
}

impl LshEnsemble {
    /// Create an empty ensemble with the given configuration.
    pub fn new(config: LshEnsembleConfig) -> Self {
        Self {
            config,
            pending: Vec::new(),
            partitions: Vec::new(),
            built: false,
        }
    }

    /// Create an ensemble with default configuration.
    pub fn with_defaults() -> Self {
        Self::new(LshEnsembleConfig::default())
    }

    /// Number of indexed elements.
    pub fn len(&self) -> usize {
        self.pending.len() + self.partitions.iter().map(|p| p.entries.len()).sum::<usize>()
    }

    /// Is the ensemble empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Insert an element signature (call [`build`](Self::build) afterwards).
    pub fn insert(&mut self, id: u64, signature: MinHash) {
        self.pending.push(Entry { id, signature });
        self.built = false;
    }

    /// Partition the inserted elements by cardinality (equi-depth partitions,
    /// as in the original paper's optimal partitioning under a power-law
    /// assumption).
    pub fn build(&mut self) {
        let mut all: Vec<Entry> = self.partitions.drain(..).flat_map(|p| p.entries).collect();
        all.append(&mut self.pending);
        if all.is_empty() {
            self.built = true;
            return;
        }
        all.sort_by_key(|e| e.signature.cardinality());
        let n = all.len();
        let parts = self.config.num_partitions.max(1).min(n);
        let chunk = n.div_ceil(parts);
        self.partitions = all
            .chunks(chunk)
            .map(|entries| Partition {
                lower: entries.first().map(|e| e.signature.cardinality()).unwrap_or(0),
                upper: entries.last().map(|e| e.signature.cardinality()).unwrap_or(0),
                entries: entries.to_vec(),
            })
            .collect();
        self.built = true;
    }

    /// Has [`build`](Self::build) been called since the last insert?
    pub fn is_built(&self) -> bool {
        self.built
    }

    /// Query for elements whose estimated containment of `query` (i.e.
    /// `|Q ∩ X| / |Q|`) is at least `threshold`. Returns `(id, containment)`
    /// sorted by containment descending.
    pub fn query(&self, query: &MinHash, threshold: f64) -> Vec<(u64, f64)> {
        let mut results = Vec::new();
        let probe = |entries: &[Entry], results: &mut Vec<(u64, f64)>| {
            for e in entries {
                let c = query.containment_in(&e.signature);
                if c >= threshold {
                    results.push((e.id, c));
                }
            }
        };
        if !self.built {
            probe(&self.pending, &mut results);
        } else {
            for part in &self.partitions {
                // Partition pruning: even if the whole query were contained,
                // a partition whose upper bound is zero can't contribute.
                if part.upper == 0 {
                    continue;
                }
                // Convert containment threshold to the partition's Jaccard
                // threshold; partitions where even the best possible Jaccard
                // (query fully contained in the smallest set) is below the
                // LSH band threshold could be skipped. We keep the exact
                // filtering on the estimate for accuracy, and only use the
                // conversion for candidate pruning.
                let q = query.cardinality() as f64;
                let u = part.upper as f64;
                let denom = q + u - threshold * q;
                let _jaccard_threshold = if denom > 0.0 { (threshold * q / denom).clamp(0.0, 1.0) } else { 1.0 };
                probe(&part.entries, &mut results);
            }
        }
        results.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        results
    }

    /// Query for the `top_k` elements with the highest estimated containment
    /// of `query`, regardless of threshold.
    pub fn query_top_k(&self, query: &MinHash, top_k: usize) -> Vec<(u64, f64)> {
        let mut results = self.query(query, 0.0);
        results.truncate(top_k);
        results
    }

    /// The Jaccard threshold a partition with upper bound `upper` would use
    /// for a containment threshold `t` and query cardinality `q` (exposed for
    /// testing and for the paper's discussion of why containment is more
    /// robust than Jaccard under skew).
    pub fn containment_to_jaccard(t: f64, q: usize, upper: usize) -> f64 {
        let q = q as f64;
        let u = upper as f64;
        let denom = q + u - t * q;
        if denom <= 0.0 {
            1.0
        } else {
            (t * q / denom).clamp(0.0, 1.0)
        }
    }

    /// Band parameters that would target the given Jaccard threshold with the
    /// configured signature length.
    pub fn band_params_for(&self, jaccard_threshold: f64) -> (usize, usize) {
        optimal_params(self.config.num_hashes, jaccard_threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minhash::MinHasher;

    fn items(range: std::ops::Range<u32>) -> Vec<String> {
        range.map(|i| format!("v{i}")).collect()
    }

    #[test]
    fn finds_containing_sets() {
        let hasher = MinHasher::new(256, 11);
        let mut ens = LshEnsemble::with_defaults();
        // Column 1 contains the query entirely; column 2 partially; column 3 not at all.
        ens.insert(1, hasher.signature(items(0..500).iter()));
        ens.insert(2, hasher.signature(items(0..10).iter()));
        ens.insert(3, hasher.signature(items(5000..5500).iter()));
        ens.build();

        let query = hasher.signature(items(0..20).iter());
        let results = ens.query(&query, 0.5);
        assert_eq!(results[0].0, 1, "fully-containing set should rank first");
        assert!(!results.iter().any(|(id, _)| *id == 3));
    }

    #[test]
    fn top_k_ordering() {
        let hasher = MinHasher::new(256, 12);
        let mut ens = LshEnsemble::with_defaults();
        for i in 0..10u64 {
            // set i covers items 0..(10 + i*30), so higher i contains more of the query
            ens.insert(i, hasher.signature(items(0..(10 + i as u32 * 30)).iter()));
        }
        ens.build();
        let query = hasher.signature(items(0..100).iter());
        let top = ens.query_top_k(&query, 3);
        assert_eq!(top.len(), 3);
        assert!(top[0].1 >= top[1].1 && top[1].1 >= top[2].1);
        assert!(top.iter().any(|(id, _)| *id == 9));
    }

    #[test]
    fn unbuilt_query_still_works() {
        let hasher = MinHasher::new(128, 13);
        let mut ens = LshEnsemble::with_defaults();
        ens.insert(1, hasher.signature(items(0..50).iter()));
        assert!(!ens.is_built());
        let res = ens.query_top_k(&hasher.signature(items(0..50).iter()), 1);
        assert_eq!(res[0].0, 1);
    }

    #[test]
    fn containment_to_jaccard_conversion() {
        // Query of 10 items, upper bound 1000, containment threshold 0.9:
        // Jaccard threshold should be small (~0.009).
        let j = LshEnsemble::containment_to_jaccard(0.9, 10, 1000);
        assert!(j < 0.02);
        // Equal cardinalities: containment 1.0 -> Jaccard 1.0.
        let j2 = LshEnsemble::containment_to_jaccard(1.0, 100, 100);
        assert!((j2 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_ensemble() {
        let hasher = MinHasher::new(64, 14);
        let mut ens = LshEnsemble::with_defaults();
        ens.build();
        assert!(ens.is_empty());
        assert!(ens.query_top_k(&hasher.signature(["x1"]), 5).is_empty());
    }

    #[test]
    fn rebuild_after_insert() {
        let hasher = MinHasher::new(128, 15);
        let mut ens = LshEnsemble::with_defaults();
        ens.insert(1, hasher.signature(items(0..50).iter()));
        ens.build();
        ens.insert(2, hasher.signature(items(0..60).iter()));
        assert!(!ens.is_built());
        ens.build();
        assert_eq!(ens.len(), 2);
        let res = ens.query_top_k(&hasher.signature(items(0..50).iter()), 2);
        assert_eq!(res.len(), 2);
    }
}
