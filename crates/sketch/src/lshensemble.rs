//! LSH Ensemble: approximate set-containment search.
//!
//! Plain MinHash LSH targets Jaccard similarity, which degrades badly when
//! the query and the indexed sets have very different cardinalities — the
//! exact situation that arises in CMDL's cross-modality discovery (a short
//! document queried against large columns). The LSH Ensemble of Zhu et al.
//! (PVLDB 2016) fixes this by partitioning the indexed sets by cardinality
//! and, at query time, converting the containment threshold into a
//! per-partition Jaccard threshold using the partition's upper cardinality
//! bound:
//!
//! `J ≥ t·|Q| / (|Q| + u − t·|Q|)` where `u` is the partition's upper bound.
//!
//! ## Query path
//!
//! Signatures are inserted behind `Arc` (the profiler keeps ownership; the
//! index shares them without deep-cloning). [`build`](LshEnsemble::build)
//! additionally constructs a *position-postings* structure — for every
//! signature position, a radix-bucketed table from signature value to the
//! rows holding that value (banded LSH with one-row bands). A probe then
//! performs one bucket lookup per position and increments sparse per-row
//! match counters, touching only rows that share at least one position with
//! the query instead of scanning every signature. Match counts obtained
//! this way are *identical* to a full scan (the tables compare 32-bit
//! truncations of the values; a truncation collision has probability 2⁻³²
//! per position, far below the estimator's own error), so `query` and
//! `query_top_k` return exactly what the brute-force path would.
//!
//! ## Incremental maintenance
//!
//! Inserts after [`build`](LshEnsemble::build) accumulate in an
//! update-optimized *pending delta*: queries keep probing the radix-bucketed
//! postings over the built rows and scan the (small) delta exactly, so the
//! accelerator never disarms during ingestion. [`remove`](LshEnsemble::remove)
//! tombstones built rows in place (pending entries are dropped directly), and
//! [`compact`](LshEnsemble::compact) folds tombstones and the delta back into
//! the partitioned dense layout ([`needs_compaction`](LshEnsemble::needs_compaction)
//! implements the periodic-compaction policy).

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::lsh::optimal_params;
use crate::minhash::MinHash;

/// Configuration for [`LshEnsemble`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LshEnsembleConfig {
    /// Number of cardinality partitions. Default 8.
    pub num_partitions: usize,
    /// Number of MinHash values per signature (must match the hasher).
    pub num_hashes: usize,
    /// Default containment threshold for `query` (can be overridden per call).
    pub default_threshold: f64,
}

impl Default for LshEnsembleConfig {
    fn default() -> Self {
        Self {
            num_partitions: 8,
            num_hashes: crate::minhash::DEFAULT_NUM_HASHES,
            default_threshold: 0.5,
        }
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Entry {
    id: u64,
    signature: Arc<MinHash>,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Partition {
    lower: usize,
    upper: usize,
    entries: Vec<Entry>,
}

/// Per-position postings: for each signature position, a radix-bucketed,
/// value-sorted table of `(value, row)` pairs. Probing costs one bucket
/// lookup per position instead of one comparison per row×position.
///
/// Values are stored as 32-bit truncations; see the module docs for why
/// this is safe. Rebuilt by [`LshEnsemble::build`]; not serialized.
#[derive(Debug, Clone, Default)]
struct PositionPostings {
    /// Signature length.
    width: usize,
    /// Number of indexed rows.
    rows: usize,
    /// log₂ of the per-position bucket count.
    bucket_bits: u32,
    /// CSR bucket offsets: `width × (buckets + 1)` entries; the segment for
    /// position `p` starts at `p × (buckets + 1)`.
    offsets: Vec<u32>,
    /// Truncated values grouped by position, then bucket: `width × rows`.
    values: Vec<u32>,
    /// Row index parallel to `values`.
    row_ids: Vec<u32>,
}

impl PositionPostings {
    fn build(signatures: &[&MinHash]) -> Self {
        let rows = signatures.len();
        let width = signatures.first().map(|s| s.num_hashes()).unwrap_or(0);
        // ~1 expected entry per bucket, capped for memory sanity.
        let bucket_bits = (rows.max(2).next_power_of_two().trailing_zeros()).clamp(1, 16);
        let buckets = 1usize << bucket_bits;
        let mut offsets = vec![0u32; width * (buckets + 1)];
        let mut values = vec![0u32; width * rows];
        let mut row_ids = vec![0u32; width * rows];
        let shift = 32 - bucket_bits;
        for p in 0..width {
            let off = &mut offsets[p * (buckets + 1)..(p + 1) * (buckets + 1)];
            // Counting sort of this position's values into buckets.
            for sig in signatures.iter() {
                let v = sig.values()[p] as u32;
                off[(v >> shift) as usize + 1] += 1;
            }
            for b in 0..buckets {
                off[b + 1] += off[b];
            }
            let mut cursor: Vec<u32> = off[..buckets].to_vec();
            let seg = p * rows;
            for (row, sig) in signatures.iter().enumerate() {
                let v = sig.values()[p] as u32;
                let slot = &mut cursor[(v >> shift) as usize];
                values[seg + *slot as usize] = v;
                row_ids[seg + *slot as usize] = row as u32;
                *slot += 1;
            }
        }
        Self {
            width,
            rows,
            bucket_bits,
            offsets,
            values,
            row_ids,
        }
    }

    fn matches_rows(&self) -> bool {
        self.values.len() == self.width * self.rows
    }

    /// Count, for every row sharing at least one position value with the
    /// query, how many positions match. Returns the touched rows; counts
    /// are left in `counts` (callers reset them via the touched list).
    fn count_matches(&self, query_values: &[u64], counts: &mut [u16], touched: &mut Vec<u32>) {
        if self.rows == 0 || self.width == 0 {
            return;
        }
        let buckets = 1usize << self.bucket_bits;
        let shift = 32 - self.bucket_bits;
        for (p, &qv) in query_values.iter().take(self.width).enumerate() {
            let q = qv as u32;
            let off = &self.offsets[p * (buckets + 1)..(p + 1) * (buckets + 1)];
            let bucket = (q >> shift) as usize;
            let seg = p * self.rows;
            let (start, end) = (off[bucket] as usize, off[bucket + 1] as usize);
            for i in start..end {
                if self.values[seg + i] == q {
                    let row = self.row_ids[seg + i] as usize;
                    if counts[row] == 0 {
                        touched.push(row as u32);
                    }
                    counts[row] += 1;
                }
            }
        }
    }
}

/// An LSH Ensemble index for containment queries, keyed by opaque `u64` ids.
///
/// The index is built in two phases: [`insert`](LshEnsemble::insert) all
/// elements, then [`build`](LshEnsemble::build) to create the cardinality
/// partitions and the position-postings probe structure. Queries before
/// `build` (or after deserialization, until the next `build`) fall back to
/// a brute-force scan.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LshEnsemble {
    config: LshEnsembleConfig,
    pending: Vec<Entry>,
    partitions: Vec<Partition>,
    built: bool,
    /// Tombstoned external ids (still present in `partitions` until the next
    /// [`compact`](Self::compact)).
    dead: std::collections::HashSet<u64>,
    /// Probe accelerator over all partitioned entries, in partition order.
    #[serde(skip)]
    postings: PositionPostings,
    /// Row → external id, parallel to the postings' row numbering.
    #[serde(skip)]
    row_ids: Vec<u64>,
    /// Row → set cardinality.
    #[serde(skip)]
    row_cards: Vec<u32>,
    /// Row → tombstone flag, parallel to `row_ids`.
    #[serde(skip)]
    row_dead: Vec<bool>,
    /// External id → row, for tombstoning built rows.
    #[serde(skip)]
    id_to_row: std::collections::HashMap<u64, u32>,
}

impl LshEnsemble {
    /// Create an empty ensemble with the given configuration.
    pub fn new(config: LshEnsembleConfig) -> Self {
        Self {
            config,
            pending: Vec::new(),
            partitions: Vec::new(),
            built: false,
            dead: std::collections::HashSet::new(),
            postings: PositionPostings::default(),
            row_ids: Vec::new(),
            row_cards: Vec::new(),
            row_dead: Vec::new(),
            id_to_row: std::collections::HashMap::new(),
        }
    }

    /// Create an ensemble with default configuration.
    pub fn with_defaults() -> Self {
        Self::new(LshEnsembleConfig::default())
    }

    /// Number of live indexed elements.
    pub fn len(&self) -> usize {
        self.pending.len()
            + self
                .partitions
                .iter()
                .map(|p| p.entries.len())
                .sum::<usize>()
            - self.dead.len()
    }

    /// Is the ensemble empty (of live elements)?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of entries in the pending (unpartitioned) delta.
    pub fn num_pending(&self) -> usize {
        self.pending.len()
    }

    /// Number of tombstoned entries awaiting [`compact`](Self::compact).
    pub fn num_tombstoned(&self) -> usize {
        self.dead.len()
    }

    /// Insert an element signature.
    ///
    /// Before the first [`build`](Self::build), inserted entries wait in the
    /// pending list and queries fall back to a full scan. After a build,
    /// inserts land in the pending *delta*: the radix-bucket probe keeps
    /// serving the built rows and the delta is scanned exactly, so no
    /// rebuild is needed until [`compact`](Self::compact).
    ///
    /// Accepts either an owned `MinHash` or an `Arc<MinHash>`; passing the
    /// `Arc` shares the profiler's signature without copying its values.
    pub fn insert(&mut self, id: u64, signature: impl Into<Arc<MinHash>>) {
        self.pending.push(Entry {
            id,
            signature: signature.into(),
        });
    }

    /// Tombstone the element indexed under `id`: pending entries are dropped
    /// directly, built rows are skipped by every probe until the next
    /// [`compact`](Self::compact). Returns `false` for unknown ids.
    pub fn remove(&mut self, id: u64) -> bool {
        if let Some(pos) = self.pending.iter().position(|e| e.id == id) {
            self.pending.remove(pos);
            return true;
        }
        if self.dead.contains(&id) {
            return false;
        }
        let known = if let Some(&row) = self.id_to_row.get(&id) {
            if let Some(flag) = self.row_dead.get_mut(row as usize) {
                *flag = true;
            }
            true
        } else {
            // No probe structure (e.g. after deserialization): fall back to
            // scanning the partitions.
            self.partitions
                .iter()
                .any(|p| p.entries.iter().any(|e| e.id == id))
        };
        if known {
            self.dead.insert(id);
        }
        known
    }

    /// Does the delta state (pending inserts + tombstones) exceed `ratio` of
    /// the total entry count? The ingestion layer uses this as the periodic
    /// compaction trigger.
    pub fn needs_compaction(&self, ratio: f64) -> bool {
        let total = self.len() + self.dead.len();
        total > 0 && (self.pending.len() + self.dead.len()) as f64 > ratio * total as f64
    }

    /// Fold tombstones and the pending delta back into the partitioned dense
    /// layout (equivalent to [`build`](Self::build)).
    pub fn compact(&mut self) {
        self.build();
    }

    /// Partition the inserted elements by cardinality (equi-depth partitions,
    /// as in the original paper's optimal partitioning under a power-law
    /// assumption) and build the position-postings probe structure.
    pub fn build(&mut self) {
        let mut all: Vec<Entry> = self.partitions.drain(..).flat_map(|p| p.entries).collect();
        all.append(&mut self.pending);
        if !self.dead.is_empty() {
            all.retain(|e| !self.dead.contains(&e.id));
            self.dead.clear();
        }
        self.postings = PositionPostings::default();
        self.row_ids.clear();
        self.row_cards.clear();
        self.row_dead.clear();
        self.id_to_row.clear();
        if all.is_empty() {
            self.built = true;
            return;
        }
        all.sort_by_key(|e| e.signature.cardinality());
        let n = all.len();
        let parts = self.config.num_partitions.max(1).min(n);
        let chunk = n.div_ceil(parts);
        self.partitions = all
            .chunks(chunk)
            .map(|entries| Partition {
                lower: entries
                    .first()
                    .map(|e| e.signature.cardinality())
                    .unwrap_or(0),
                upper: entries
                    .last()
                    .map(|e| e.signature.cardinality())
                    .unwrap_or(0),
                entries: entries.to_vec(),
            })
            .collect();
        self.rebuild_postings();
        self.built = true;
    }

    /// (Re)build the probe structure from the current partitions. Split out
    /// so deserialized indexes can be re-armed without re-partitioning.
    pub fn rebuild_postings(&mut self) {
        let entries: Vec<&Entry> = self.partitions.iter().flat_map(|p| &p.entries).collect();
        let signatures: Vec<&MinHash> = entries.iter().map(|e| e.signature.as_ref()).collect();
        self.postings = PositionPostings::build(&signatures);
        self.row_ids = entries.iter().map(|e| e.id).collect();
        self.row_cards = entries
            .iter()
            .map(|e| e.signature.cardinality() as u32)
            .collect();
        // `dead` is non-empty here only on the standalone re-arm path (a
        // deserialized ensemble whose tombstones were serialized); `build`
        // clears it before calling in, so this lookup is all-false there.
        self.row_dead = self
            .row_ids
            .iter()
            .map(|id| self.dead.contains(id))
            .collect();
        self.id_to_row = self
            .row_ids
            .iter()
            .enumerate()
            .map(|(row, &id)| (id, row as u32))
            .collect();
    }

    /// Is the index fully folded (built, with no pending delta)?
    pub fn is_built(&self) -> bool {
        self.built && self.pending.is_empty()
    }

    /// Can queries use the postings accelerator (over the built rows)?
    fn probe_ready(&self) -> bool {
        self.built
            && self.postings.matches_rows()
            && self.postings.rows == self.row_ids.len()
            && self.postings.rows == self.row_dead.len()
            && self.postings.rows
                == self
                    .partitions
                    .iter()
                    .map(|p| p.entries.len())
                    .sum::<usize>()
    }

    /// All live entries, partitioned first then pending, for fallback scans.
    fn all_entries(&self) -> impl Iterator<Item = &Entry> {
        self.partitions
            .iter()
            .flat_map(|p| &p.entries)
            .chain(self.pending.iter())
            .filter(|e| !self.dead.contains(&e.id))
    }

    /// Is a built row tombstoned?
    #[inline]
    fn is_row_dead(&self, row: usize) -> bool {
        self.row_dead.get(row).copied().unwrap_or(false)
    }

    /// Query for elements whose estimated containment of `query` (i.e.
    /// `|Q ∩ X| / |Q|`) is at least `threshold`. Returns `(id, containment)`
    /// sorted by containment descending.
    pub fn query(&self, query: &MinHash, threshold: f64) -> Vec<(u64, f64)> {
        let mut results: Vec<(u64, f64)> = Vec::new();
        if !self.probe_ready() {
            for e in self.all_entries() {
                let c = query.containment_in(&e.signature);
                if c >= threshold {
                    results.push((e.id, c));
                }
            }
        } else {
            self.probe(query, |ensemble, counts, touched| {
                if threshold > 0.0 {
                    // Untouched rows have zero matching positions and
                    // therefore zero estimated containment: only touched
                    // rows can qualify.
                    for &row in touched.iter() {
                        if ensemble.is_row_dead(row as usize) {
                            continue;
                        }
                        let c = ensemble.row_containment(query, row as usize, counts[row as usize]);
                        if c >= threshold {
                            results.push((ensemble.row_ids[row as usize], c));
                        }
                    }
                } else {
                    for (row, &count) in counts.iter().enumerate().take(ensemble.postings.rows) {
                        if ensemble.is_row_dead(row) {
                            continue;
                        }
                        let c = ensemble.row_containment(query, row, count);
                        results.push((ensemble.row_ids[row], c));
                    }
                }
                // Exact scan of the pending delta.
                for e in &ensemble.pending {
                    let c = query.containment_in(&e.signature);
                    if threshold <= 0.0 || c >= threshold {
                        results.push((e.id, c));
                    }
                }
            });
        }
        results.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        results
    }

    /// Query for the `top_k` elements with the highest estimated containment
    /// of `query`, regardless of threshold.
    ///
    /// Exact with respect to the estimator: equivalent to scoring every
    /// indexed element and keeping the best `top_k`, but only rows sharing
    /// at least one signature position with the query are actually scored
    /// (rows sharing none have containment 0 and are used only to pad an
    /// underfull result).
    pub fn query_top_k(&self, query: &MinHash, top_k: usize) -> Vec<(u64, f64)> {
        if top_k == 0 {
            return Vec::new();
        }
        if !self.probe_ready() {
            let mut results: Vec<(u64, f64)> = self
                .all_entries()
                .map(|e| (e.id, query.containment_in(&e.signature)))
                .collect();
            results.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
            results.truncate(top_k);
            return results;
        }
        let mut heap = BoundedMinHeap::new(top_k);
        self.probe(query, |ensemble, counts, touched| {
            for &row in touched.iter() {
                if ensemble.is_row_dead(row as usize) {
                    continue;
                }
                let c = ensemble.row_containment(query, row as usize, counts[row as usize]);
                heap.offer(c, ensemble.row_ids[row as usize]);
            }
            // Exact scan of the pending delta.
            for e in &ensemble.pending {
                heap.offer(query.containment_in(&e.signature), e.id);
            }
            if heap.len() < top_k {
                // Fewer scored rows than requested: pad with
                // zero-containment rows in deterministic (partition) order,
                // as a full scan would.
                for (row, &count) in counts.iter().enumerate().take(ensemble.postings.rows) {
                    if heap.len() >= top_k {
                        break;
                    }
                    if count == 0 && !ensemble.is_row_dead(row) {
                        heap.offer(0.0, ensemble.row_ids[row]);
                    }
                }
            }
        });
        heap.into_sorted_desc()
    }

    /// Reference implementation of the pre-optimization top-k query: score
    /// every indexed signature with [`MinHash::containment_in`], sort, and
    /// truncate. Kept for the estimator-parity tests and as the in-process
    /// baseline of the throughput benchmarks; production queries use
    /// [`query_top_k`](Self::query_top_k).
    pub fn query_top_k_brute(&self, query: &MinHash, top_k: usize) -> Vec<(u64, f64)> {
        let mut results: Vec<(u64, f64)> = self
            .all_entries()
            .map(|e| (e.id, query.containment_in(&e.signature)))
            .collect();
        results.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        results.truncate(top_k);
        results
    }

    /// Run the position probe, returning per-row match counts and the
    /// touched row list.
    /// The per-row match-count buffer and touched-row list are kept in
    /// thread-local scratch (grown to the index size, reset sparsely via
    /// the touched list) so probes allocate nothing on the steady state.
    fn probe(&self, query: &MinHash, handle: impl FnOnce(&Self, &[u16], &[u32])) {
        PROBE_SCRATCH.with(|scratch| {
            let (counts, touched) = &mut *scratch.borrow_mut();
            if counts.len() < self.postings.rows {
                counts.resize(self.postings.rows, 0);
            }
            touched.clear();
            self.postings.count_matches(query.values(), counts, touched);
            handle(self, counts, touched);
            for &row in touched.iter() {
                counts[row as usize] = 0;
            }
        });
    }

    /// Containment estimate for a probed row from its match count (the same
    /// formula as [`MinHash::containment_in`]).
    fn row_containment(&self, query: &MinHash, row: usize, matches: u16) -> f64 {
        containment_from_matches(
            matches as usize,
            self.postings.width,
            query.cardinality(),
            self.row_cards[row] as usize,
        )
    }

    /// The Jaccard threshold a partition with upper bound `upper` would use
    /// for a containment threshold `t` and query cardinality `q` (exposed for
    /// testing and for the paper's discussion of why containment is more
    /// robust than Jaccard under skew).
    pub fn containment_to_jaccard(t: f64, q: usize, upper: usize) -> f64 {
        let q = q as f64;
        let u = upper as f64;
        let denom = q + u - t * q;
        if denom <= 0.0 {
            1.0
        } else {
            (t * q / denom).clamp(0.0, 1.0)
        }
    }

    /// Band parameters that would target the given Jaccard threshold with the
    /// configured signature length.
    pub fn band_params_for(&self, jaccard_threshold: f64) -> (usize, usize) {
        optimal_params(self.config.num_hashes, jaccard_threshold)
    }
}

thread_local! {
    /// Reusable probe scratch: per-row match counts and touched-row list.
    static PROBE_SCRATCH: std::cell::RefCell<(Vec<u16>, Vec<u32>)> =
        const { std::cell::RefCell::new((Vec::new(), Vec::new())) };
}

/// A bounded min-heap over `(containment, id)` keeping the `k` largest,
/// implemented as a sorted array (ascending by containment) — optimal for
/// the small `k` of index probes.
struct BoundedMinHeap {
    k: usize,
    items: Vec<(f64, u64)>,
}

impl BoundedMinHeap {
    fn new(k: usize) -> Self {
        Self {
            k,
            items: Vec::with_capacity(k + 1),
        }
    }

    fn len(&self) -> usize {
        self.items.len()
    }

    fn offer(&mut self, score: f64, id: u64) {
        if self.items.len() < self.k {
            self.items.push((score, id));
            if self.items.len() == self.k {
                self.items
                    .sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
            }
        } else if score > self.items[0].0 {
            self.items[0] = (score, id);
            let mut i = 0;
            while i + 1 < self.items.len() && self.items[i].0 > self.items[i + 1].0 {
                self.items.swap(i, i + 1);
                i += 1;
            }
        }
    }

    fn into_sorted_desc(self) -> Vec<(u64, f64)> {
        let mut out: Vec<(u64, f64)> = self.items.into_iter().map(|(c, id)| (id, c)).collect();
        out.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        out
    }
}

/// Containment estimate from a raw signature match count (the same formula
/// as [`MinHash::containment_in`], without re-deriving the match count).
fn containment_from_matches(matches: usize, width: usize, q_card: usize, e_card: usize) -> f64 {
    if q_card == 0 || width == 0 {
        return 0.0;
    }
    let j = matches as f64 / width as f64;
    let a = q_card as f64;
    let b = e_card as f64;
    let inter = j * (a + b) / (1.0 + j);
    (inter / a).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minhash::MinHasher;

    fn items(range: std::ops::Range<u32>) -> Vec<String> {
        range.map(|i| format!("v{i}")).collect()
    }

    #[test]
    fn finds_containing_sets() {
        let hasher = MinHasher::new(256, 11);
        let mut ens = LshEnsemble::with_defaults();
        // Column 1 contains the query entirely; column 2 partially; column 3 not at all.
        ens.insert(1, hasher.signature(items(0..500).iter()));
        ens.insert(2, hasher.signature(items(0..10).iter()));
        ens.insert(3, hasher.signature(items(5000..5500).iter()));
        ens.build();

        let query = hasher.signature(items(0..20).iter());
        let results = ens.query(&query, 0.5);
        assert_eq!(results[0].0, 1, "fully-containing set should rank first");
        assert!(!results.iter().any(|(id, _)| *id == 3));
    }

    #[test]
    fn top_k_ordering() {
        let hasher = MinHasher::new(256, 12);
        let mut ens = LshEnsemble::with_defaults();
        for i in 0..10u64 {
            // set i covers items 0..(10 + i*30), so higher i contains more of the query
            ens.insert(i, hasher.signature(items(0..(10 + i as u32 * 30)).iter()));
        }
        ens.build();
        let query = hasher.signature(items(0..100).iter());
        let top = ens.query_top_k(&query, 3);
        assert_eq!(top.len(), 3);
        assert!(top[0].1 >= top[1].1 && top[1].1 >= top[2].1);
        assert!(top.iter().any(|(id, _)| *id == 9));
    }

    #[test]
    fn top_k_matches_full_scan() {
        // The probe-accelerated scan must be exactly equivalent to brute
        // force over the containment estimator.
        let hasher = MinHasher::one_permutation(128, 21);
        let mut ens = LshEnsemble::with_defaults();
        let mut signatures = Vec::new();
        for i in 0..40u64 {
            let lo = (i as u32 * 7) % 60;
            let sig = hasher.signature(items(lo..lo + 20 + (i as u32 % 50)).iter());
            ens.insert(i, sig.clone());
            signatures.push((i, sig));
        }
        ens.build();
        let query = hasher.signature(items(10..60).iter());
        let top = ens.query_top_k(&query, 5);
        let mut brute: Vec<(u64, f64)> = signatures
            .iter()
            .map(|(id, sig)| (*id, query.containment_in(sig)))
            .collect();
        brute.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        assert_eq!(top.len(), 5);
        for (got, want) in top.iter().zip(brute.iter()) {
            assert!(
                (got.1 - want.1).abs() < 1e-12,
                "scores diverge: {got:?} vs {want:?}"
            );
        }
    }

    #[test]
    fn thresholded_query_matches_full_scan() {
        let hasher = MinHasher::one_permutation(128, 22);
        let mut ens = LshEnsemble::with_defaults();
        let mut signatures = Vec::new();
        for i in 0..30u64 {
            let lo = (i as u32 * 11) % 40;
            let sig = hasher.signature(items(lo..lo + 15 + (i as u32 % 30)).iter());
            ens.insert(i, sig.clone());
            signatures.push((i, sig));
        }
        ens.build();
        let query = hasher.signature(items(5..35).iter());
        for threshold in [0.0, 0.2, 0.5, 0.9] {
            let got = ens.query(&query, threshold);
            let mut want: Vec<(u64, f64)> = signatures
                .iter()
                .map(|(id, sig)| (*id, query.containment_in(sig)))
                .filter(|(_, c)| *c >= threshold)
                .collect();
            want.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
            assert_eq!(
                got.len(),
                want.len(),
                "cardinality mismatch at threshold {threshold}"
            );
            for (g, w) in got.iter().zip(want.iter()) {
                assert!((g.1 - w.1).abs() < 1e-12, "{g:?} vs {w:?} at {threshold}");
            }
        }
    }

    #[test]
    fn unbuilt_query_still_works() {
        let hasher = MinHasher::new(128, 13);
        let mut ens = LshEnsemble::with_defaults();
        ens.insert(1, hasher.signature(items(0..50).iter()));
        assert!(!ens.is_built());
        let res = ens.query_top_k(&hasher.signature(items(0..50).iter()), 1);
        assert_eq!(res[0].0, 1);
    }

    #[test]
    fn containment_to_jaccard_conversion() {
        // Query of 10 items, upper bound 1000, containment threshold 0.9:
        // Jaccard threshold should be small (~0.009).
        let j = LshEnsemble::containment_to_jaccard(0.9, 10, 1000);
        assert!(j < 0.02);
        // Equal cardinalities: containment 1.0 -> Jaccard 1.0.
        let j2 = LshEnsemble::containment_to_jaccard(1.0, 100, 100);
        assert!((j2 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_ensemble() {
        let hasher = MinHasher::new(64, 14);
        let mut ens = LshEnsemble::with_defaults();
        ens.build();
        assert!(ens.is_empty());
        assert!(ens.query_top_k(&hasher.signature(["x1"]), 5).is_empty());
    }

    #[test]
    fn rebuild_after_insert() {
        let hasher = MinHasher::new(128, 15);
        let mut ens = LshEnsemble::with_defaults();
        ens.insert(1, hasher.signature(items(0..50).iter()));
        ens.build();
        ens.insert(2, hasher.signature(items(0..60).iter()));
        assert!(!ens.is_built());
        ens.build();
        assert_eq!(ens.len(), 2);
        let res = ens.query_top_k(&hasher.signature(items(0..50).iter()), 2);
        assert_eq!(res.len(), 2);
    }

    #[test]
    fn pending_delta_served_without_rebuild() {
        let hasher = MinHasher::one_permutation(128, 31);
        let mut ens = LshEnsemble::with_defaults();
        let mut signatures = Vec::new();
        for i in 0..30u64 {
            let lo = (i as u32 * 9) % 50;
            let sig = hasher.signature(items(lo..lo + 25).iter());
            ens.insert(i, sig.clone());
            signatures.push((i, sig));
        }
        ens.build();
        // Post-build inserts: the probe stays armed, the delta is scanned
        // exactly, and results still match brute force over everything.
        for i in 30..40u64 {
            let lo = (i as u32 * 9) % 50;
            let sig = hasher.signature(items(lo..lo + 25).iter());
            ens.insert(i, sig.clone());
            signatures.push((i, sig));
        }
        assert_eq!(ens.num_pending(), 10);
        assert!(!ens.is_built());
        let query = hasher.signature(items(10..45).iter());
        let got = ens.query_top_k(&query, 6);
        let mut want: Vec<(u64, f64)> = signatures
            .iter()
            .map(|(id, sig)| (*id, query.containment_in(sig)))
            .collect();
        want.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        assert_eq!(got.len(), 6);
        for (g, w) in got.iter().zip(want.iter()) {
            assert!((g.1 - w.1).abs() < 1e-12, "{g:?} vs {w:?}");
        }
        // Thresholded queries merge the delta too.
        let got = ens.query(&query, 0.3);
        let want_len = signatures
            .iter()
            .filter(|(_, sig)| query.containment_in(sig) >= 0.3)
            .count();
        assert_eq!(got.len(), want_len);
        // Compaction folds the delta into the dense layout.
        ens.compact();
        assert_eq!(ens.num_pending(), 0);
        assert!(ens.is_built());
        let folded = ens.query_top_k(&query, 6);
        for (g, w) in folded.iter().zip(want.iter()) {
            assert!((g.1 - w.1).abs() < 1e-12);
        }
    }

    #[test]
    fn remove_tombstones_until_compact() {
        let hasher = MinHasher::one_permutation(128, 32);
        let mut ens = LshEnsemble::with_defaults();
        for i in 0..12u64 {
            ens.insert(i, hasher.signature(items(0..20 + i as u32).iter()));
        }
        ens.build();
        // Pending entries are dropped physically.
        ens.insert(100, hasher.signature(items(0..25).iter()));
        assert!(ens.remove(100));
        assert_eq!(ens.num_pending(), 0);
        // Built rows are tombstoned.
        assert!(ens.remove(3));
        assert!(!ens.remove(3), "double removal is a no-op");
        assert!(!ens.remove(999), "unknown id is a no-op");
        assert_eq!(ens.len(), 11);
        assert_eq!(ens.num_tombstoned(), 1);
        let query = hasher.signature(items(0..20).iter());
        assert!(!ens
            .query_top_k(&query, 12)
            .iter()
            .any(|(id, _)| *id == 3 || *id == 100));
        assert!(!ens.query(&query, 0.0).iter().any(|(id, _)| *id == 3));
        // The compaction policy flags heavy delta state.
        assert!(!ens.needs_compaction(0.5));
        assert!(ens.needs_compaction(0.05));
        ens.compact();
        assert_eq!(ens.num_tombstoned(), 0);
        assert_eq!(ens.len(), 11);
        assert!(!ens.query_top_k(&query, 12).iter().any(|(id, _)| *id == 3));
    }

    #[test]
    fn shared_signatures_do_not_copy() {
        let hasher = MinHasher::new(64, 16);
        let sig = Arc::new(hasher.signature(items(0..30).iter()));
        let mut ens = LshEnsemble::with_defaults();
        ens.insert(1, Arc::clone(&sig));
        // The ensemble holds the same allocation, not a deep clone.
        assert_eq!(Arc::strong_count(&sig), 2);
        ens.build();
        let res = ens.query_top_k(&hasher.signature(items(0..30).iter()), 1);
        assert_eq!(res[0].0, 1);
    }

    #[test]
    fn underfull_top_k_pads_with_zero_containment() {
        let hasher = MinHasher::one_permutation(64, 18);
        let mut ens = LshEnsemble::with_defaults();
        ens.insert(1, hasher.signature(items(0..20).iter()));
        ens.insert(2, hasher.signature(items(1000..1020).iter()));
        ens.insert(3, hasher.signature(items(2000..2020).iter()));
        ens.build();
        // The query overlaps only set 1; the others pad the result at 0.
        let res = ens.query_top_k(&hasher.signature(items(0..20).iter()), 3);
        assert_eq!(res.len(), 3);
        assert_eq!(res[0].0, 1);
        assert!(res[0].1 > 0.9);
    }

    #[test]
    fn serde_roundtrip_requires_rebuild() {
        let hasher = MinHasher::new(64, 17);
        let mut ens = LshEnsemble::with_defaults();
        for i in 0..8u64 {
            ens.insert(
                i,
                hasher.signature(items(i as u32 * 5..i as u32 * 5 + 25).iter()),
            );
        }
        ens.build();
        let query = hasher.signature(items(0..25).iter());
        let before = ens.query_top_k(&query, 3);
        let json = serde_json::to_string(&ens).unwrap();
        let mut back: LshEnsemble = serde_json::from_str(&json).unwrap();
        // Deserialized indexes fall back to brute force until re-armed.
        let after = back.query_top_k(&query, 3);
        assert_eq!(before.len(), after.len());
        for (a, b) in before.iter().zip(after.iter()) {
            assert_eq!(a.0, b.0);
            assert!((a.1 - b.1).abs() < 1e-12);
        }
        // Re-arming the probe structure reproduces the same results.
        back.rebuild_postings();
        let rearmed = back.query_top_k(&query, 3);
        for (a, b) in before.iter().zip(rearmed.iter()) {
            assert_eq!(a.0, b.0);
            assert!((a.1 - b.1).abs() < 1e-12);
        }
    }
}
