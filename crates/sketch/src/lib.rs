//! # cmdl-sketch
//!
//! Similarity sketches used by the CMDL profiler (paper Section 3):
//!
//! * [`minhash`] — minwise hashing signatures for estimating Jaccard
//!   similarity and Jaccard *set containment* between discoverable elements.
//! * [`lsh`] — a banded Locality Sensitive Hashing index over MinHash
//!   signatures for approximate Jaccard-similarity search.
//! * [`lshensemble`] — the LSH Ensemble structure of Zhu et al. (VLDB 2016):
//!   signatures are partitioned by set cardinality and each partition uses
//!   band parameters tuned for *containment* queries, which is the metric
//!   CMDL relies on for cross-modality and PK-FK discovery.
//! * [`numeric`] — numeric column statistics (min/max/distinct/domain) and
//!   the range-overlap similarity used for numeric columns.
//! * [`similarity`] — exact set similarity helpers shared by tests and
//!   brute-force ground-truth generation.

pub mod lsh;
pub mod lshensemble;
pub mod minhash;
pub mod numeric;
pub mod similarity;

pub use lsh::LshIndex;
pub use lshensemble::{LshEnsemble, LshEnsembleConfig};
pub use minhash::{MinHash, MinHasher, SketchScheme};
pub use numeric::{numeric_overlap, NumericProfile};
pub use similarity::{exact_containment, exact_jaccard};
