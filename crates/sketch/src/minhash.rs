//! Minwise hashing signatures.
//!
//! A [`MinHash`] signature summarizes a set of strings with `k` minimum hash
//! values. The fraction of positions in which two signatures agree is an
//! estimator of the Jaccard similarity of the underlying sets. Combined with
//! exact set cardinalities, the Jaccard estimate can be converted into a
//! *set containment* estimate — the asymmetric measure CMDL prefers for
//! skewed cardinalities.
//!
//! Two sketching schemes are supported (selected by [`SketchScheme`]):
//!
//! * [`SketchScheme::Classic`] — `k` independent hash functions; every item
//!   is mixed `k` times, so a signature costs `O(n·k)`. This is the
//!   textbook construction the seed implementation used.
//! * [`SketchScheme::OnePermutation`] — one-permutation hashing with
//!   optimal densification (Li, Owen & Zhang 2012; Shrivastava 2017): every
//!   item is hashed once and routed to one of `k` bins, and empty bins are
//!   filled by borrowing from hashed non-empty bins. A signature costs
//!   `O(n + k)`, which at the paper's 512-hash profiler setting removes the
//!   dominant profiling cost. This is the CMDL default
//!   (`CmdlConfig::sketch_scheme`).
//!
//! Both schemes produce signatures with the same layout and estimators, but
//! signatures are only comparable when built by hashers with the same
//! scheme, seed, and length.

use serde::{Deserialize, Serialize};

/// Default number of hash permutations used across CMDL (matches the paper's
/// "512 hashes" profiler configuration for the scalability experiment, scaled
/// down by default for interactive use).
pub const DEFAULT_NUM_HASHES: usize = 128;

/// The MinHash construction used by a [`MinHasher`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum SketchScheme {
    /// `k` independent hash functions, `O(n·k)` per signature.
    Classic,
    /// One-permutation hashing + optimal densification, `O(n + k)`.
    #[default]
    OnePermutation,
}

/// A family of hash functions that produces MinHash signatures.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MinHasher {
    /// Per-permutation seeds (classic scheme only; empty for OPH).
    seeds: Vec<u64>,
    /// Signature length.
    num_hashes: usize,
    /// Base seed.
    seed: u64,
    /// Which construction `signature` uses.
    scheme: SketchScheme,
}

impl MinHasher {
    /// Create a **classic** hasher with `num_hashes` independent
    /// permutations derived from `seed`.
    pub fn new(num_hashes: usize, seed: u64) -> Self {
        Self::with_scheme(num_hashes, seed, SketchScheme::Classic)
    }

    /// Create a **one-permutation** hasher with `num_hashes` bins.
    pub fn one_permutation(num_hashes: usize, seed: u64) -> Self {
        Self::with_scheme(num_hashes, seed, SketchScheme::OnePermutation)
    }

    /// Create a hasher with an explicit scheme.
    pub fn with_scheme(num_hashes: usize, seed: u64, scheme: SketchScheme) -> Self {
        assert!(num_hashes > 0, "MinHasher requires at least one hash");
        let seeds = match scheme {
            SketchScheme::Classic => {
                let mut seeds = Vec::with_capacity(num_hashes);
                let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
                for _ in 0..num_hashes {
                    state = splitmix64(state);
                    seeds.push(state);
                }
                seeds
            }
            SketchScheme::OnePermutation => Vec::new(),
        };
        Self {
            seeds,
            num_hashes,
            seed,
            scheme,
        }
    }

    /// Create a classic hasher with the default number of permutations.
    pub fn default_with_seed(seed: u64) -> Self {
        Self::new(DEFAULT_NUM_HASHES, seed)
    }

    /// Number of hash permutations.
    pub fn num_hashes(&self) -> usize {
        self.num_hashes
    }

    /// The construction this hasher uses.
    pub fn scheme(&self) -> SketchScheme {
        self.scheme
    }

    /// Compute the signature of a set of string items.
    ///
    /// The exact cardinality of the set is stored alongside the signature so
    /// containment can be estimated later.
    pub fn signature<I, S>(&self, items: I) -> MinHash
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        match self.scheme {
            SketchScheme::Classic => self.signature_classic(items),
            SketchScheme::OnePermutation => self.signature_oph(items),
        }
    }

    fn signature_classic<I, S>(&self, items: I) -> MinHash
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut mins = vec![u64::MAX; self.num_hashes];
        let mut cardinality = 0usize;
        for item in items {
            cardinality += 1;
            let base = fnv1a(item.as_ref().as_bytes());
            for (slot, seed) in mins.iter_mut().zip(&self.seeds) {
                let h = splitmix64(base ^ seed);
                if h < *slot {
                    *slot = h;
                }
            }
        }
        MinHash {
            values: mins,
            cardinality,
        }
    }

    /// One-permutation hashing: each item is mixed once and routed to bin
    /// `⌊x·k / 2⁶⁴⌋`; the bin keeps the minimum of a second mix of `x`.
    /// Empty bins are then densified.
    fn signature_oph<I, S>(&self, items: I) -> MinHash
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let k = self.num_hashes;
        let mut bins = vec![u64::MAX; k];
        let mut cardinality = 0usize;
        for item in items {
            cardinality += 1;
            let x = splitmix64(fnv1a(item.as_ref().as_bytes()) ^ self.seed);
            let bin = fastrange(x, k);
            let value = splitmix64(x);
            if value < bins[bin] {
                bins[bin] = value;
            }
        }
        if cardinality > 0 {
            self.densify(&mut bins);
        }
        MinHash {
            values: bins,
            cardinality,
        }
    }

    /// Optimal densification (Shrivastava 2017): every empty bin `i` copies
    /// the value of the first non-empty bin on a hash sequence determined
    /// only by `(seed, i, attempt)`. Two sets with the same non-empty bins
    /// borrow identically, so densified positions still collide exactly when
    /// the borrowed positions collide, keeping the match-fraction estimator
    /// consistent.
    ///
    /// The attempt loop is capped: for sparse signatures (non-empty bins
    /// `m ≪ k`) uncapped probing costs `O(k²/m)` — worse than the classic
    /// scheme it replaces. After [`DENSIFY_MAX_ATTEMPTS`] misses the bin
    /// borrows directly from the `⌊hash·m⌋`-th non-empty bin (re-randomized
    /// densification à la Mai et al.), which is `O(1)` and still a function
    /// of `(seed, i, non-empty pattern)` only.
    fn densify(&self, bins: &mut [u64]) {
        let k = bins.len();
        if !bins.contains(&u64::MAX) {
            return;
        }
        let filled = bins.to_vec();
        let non_empty: Vec<u32> = (0..k as u32)
            .filter(|&i| filled[i as usize] != u64::MAX)
            .collect();
        debug_assert!(
            !non_empty.is_empty(),
            "densify requires at least one non-empty bin"
        );
        for (i, bin) in bins.iter_mut().enumerate() {
            if *bin != u64::MAX {
                continue;
            }
            let base = splitmix64(self.seed ^ (i as u64).wrapping_mul(0xA24B_AED4_963E_E407));
            let mut attempt = 1u64;
            *bin = loop {
                if attempt > DENSIFY_MAX_ATTEMPTS {
                    let j = non_empty[fastrange(base, non_empty.len())] as usize;
                    break filled[j];
                }
                let j = fastrange(splitmix64(base ^ attempt), k);
                if filled[j] != u64::MAX {
                    break filled[j];
                }
                attempt += 1;
            };
        }
    }
}

impl Default for MinHasher {
    fn default() -> Self {
        Self::new(DEFAULT_NUM_HASHES, 0x5EED_CAFE)
    }
}

/// Cap on per-bin densification probes before falling back to a direct
/// pick from the non-empty bin list.
const DENSIFY_MAX_ATTEMPTS: u64 = 4;

/// Map a uniform 64-bit value into `[0, n)` without modulo bias
/// (Lemire's fastrange).
#[inline]
fn fastrange(x: u64, n: usize) -> usize {
    ((x as u128 * n as u128) >> 64) as usize
}

/// A MinHash signature plus the exact cardinality of the summarized set.
///
/// Note: callers are expected to deduplicate items before calling
/// [`MinHasher::signature`]; CMDL always sketches *distinct* term/value sets,
/// so the stored cardinality is the distinct count.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MinHash {
    values: Vec<u64>,
    cardinality: usize,
}

impl MinHash {
    /// The raw signature values.
    pub fn values(&self) -> &[u64] {
        &self.values
    }

    /// Number of hash permutations in this signature.
    pub fn num_hashes(&self) -> usize {
        self.values.len()
    }

    /// Exact cardinality of the summarized set.
    pub fn cardinality(&self) -> usize {
        self.cardinality
    }

    /// Is this the signature of an empty set?
    pub fn is_empty(&self) -> bool {
        self.cardinality == 0
    }

    /// Estimate the Jaccard similarity with another signature.
    ///
    /// # Panics
    /// Panics if the signatures have different lengths (they must come from
    /// the same [`MinHasher`]).
    pub fn jaccard(&self, other: &MinHash) -> f64 {
        assert_eq!(
            self.values.len(),
            other.values.len(),
            "MinHash signatures must have the same length"
        );
        if self.is_empty() && other.is_empty() {
            return 0.0;
        }
        let matches = self
            .values
            .iter()
            .zip(&other.values)
            .filter(|(a, b)| a == b)
            .count();
        matches as f64 / self.values.len() as f64
    }

    /// Estimate the set containment of `self` in `other`: `|A ∩ B| / |A|`.
    ///
    /// Uses the standard conversion from a Jaccard estimate `j` and the exact
    /// cardinalities `|A|`, `|B|`:
    /// `|A ∩ B| ≈ j·(|A|+|B|) / (1+j)`, so containment `≈ j·(|A|+|B|) / ((1+j)·|A|)`.
    /// The result is clamped to `[0, 1]`.
    pub fn containment_in(&self, other: &MinHash) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        let j = self.jaccard(other);
        let a = self.cardinality as f64;
        let b = other.cardinality as f64;
        let inter = j * (a + b) / (1.0 + j);
        (inter / a).clamp(0.0, 1.0)
    }

    /// Merge with another signature, producing the signature of the union of
    /// the two underlying sets. The stored cardinality becomes an upper bound
    /// (sum) because exact union cardinality is unknown.
    ///
    /// Exact for [`SketchScheme::Classic`] signatures. For
    /// [`SketchScheme::OnePermutation`] signatures the result is an
    /// approximation: densified positions carry borrowed values, so the
    /// element-wise minimum can differ from the union's own densified
    /// signature in bins that were empty on one side.
    pub fn union(&self, other: &MinHash) -> MinHash {
        assert_eq!(self.values.len(), other.values.len());
        let values = self
            .values
            .iter()
            .zip(&other.values)
            .map(|(a, b)| *a.min(b))
            .collect();
        MinHash {
            values,
            cardinality: self.cardinality + other.cardinality,
        }
    }
}

/// SplitMix64 — a fast, well-distributed 64-bit mixer.
#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a hash of a byte slice.
#[inline]
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn set(range: std::ops::Range<u32>) -> BTreeSet<String> {
        range.map(|i| format!("item{i}")).collect()
    }

    #[test]
    fn identical_sets_have_jaccard_one() {
        let h = MinHasher::new(64, 1);
        let a = h.signature(set(0..100).iter());
        let b = h.signature(set(0..100).iter());
        assert!((a.jaccard(&b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_sets_have_low_jaccard() {
        let h = MinHasher::new(256, 2);
        let a = h.signature(set(0..200).iter());
        let b = h.signature(set(1000..1200).iter());
        assert!(a.jaccard(&b) < 0.05);
    }

    #[test]
    fn jaccard_estimate_close_to_exact() {
        let h = MinHasher::new(512, 3);
        // |A|=100, |B|=100, overlap 50 -> Jaccard = 50/150 = 1/3.
        let a = h.signature(set(0..100).iter());
        let b = h.signature(set(50..150).iter());
        let est = a.jaccard(&b);
        assert!(
            (est - 1.0 / 3.0).abs() < 0.08,
            "estimate {est} too far from 1/3"
        );
    }

    #[test]
    fn containment_of_subset_is_high() {
        let h = MinHasher::new(512, 4);
        let small = h.signature(set(0..20).iter());
        let large = h.signature(set(0..400).iter());
        let c = small.containment_in(&large);
        assert!(
            c > 0.8,
            "containment of a true subset should be close to 1, got {c}"
        );
        let reverse = large.containment_in(&small);
        assert!(
            reverse < 0.2,
            "reverse containment should be small, got {reverse}"
        );
    }

    #[test]
    fn empty_signature_behaviour() {
        let h = MinHasher::new(16, 5);
        let empty = h.signature(Vec::<String>::new());
        let full = h.signature(set(0..10).iter());
        assert!(empty.is_empty());
        assert_eq!(empty.containment_in(&full), 0.0);
        assert_eq!(empty.jaccard(&empty), 0.0);
    }

    #[test]
    fn union_signature_matches_union_set() {
        let h = MinHasher::new(256, 6);
        let a = h.signature(set(0..50).iter());
        let b = h.signature(set(50..100).iter());
        let u = a.union(&b);
        let direct = h.signature(set(0..100).iter());
        assert!((u.jaccard(&direct) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn deterministic_across_instances() {
        let h1 = MinHasher::new(64, 42);
        let h2 = MinHasher::new(64, 42);
        let a = h1.signature(["drug", "enzyme"]);
        let b = h2.signature(["drug", "enzyme"]);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        let a = MinHasher::new(16, 1).signature(["x"]);
        let b = MinHasher::new(32, 1).signature(["x"]);
        let _ = a.jaccard(&b);
    }

    #[test]
    fn serde_roundtrip() {
        let h = MinHasher::new(32, 9);
        let sig = h.signature(["alpha", "beta"]);
        let json = serde_json::to_string(&sig).unwrap();
        let back: MinHash = serde_json::from_str(&json).unwrap();
        assert_eq!(sig, back);
    }

    #[test]
    fn hasher_serde_roundtrip_preserves_scheme() {
        let h = MinHasher::one_permutation(64, 3);
        let json = serde_json::to_string(&h).unwrap();
        let back: MinHasher = serde_json::from_str(&json).unwrap();
        assert_eq!(back.scheme(), SketchScheme::OnePermutation);
        assert_eq!(back.signature(["x", "y"]), h.signature(["x", "y"]));
    }

    #[test]
    fn oph_identical_sets_have_jaccard_one() {
        let h = MinHasher::one_permutation(64, 1);
        let a = h.signature(set(0..100).iter());
        let b = h.signature(set(0..100).iter());
        assert!((a.jaccard(&b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn oph_disjoint_sets_have_low_jaccard() {
        let h = MinHasher::one_permutation(256, 2);
        let a = h.signature(set(0..200).iter());
        let b = h.signature(set(1000..1200).iter());
        assert!(a.jaccard(&b) < 0.05);
    }

    #[test]
    fn oph_jaccard_estimate_close_to_exact() {
        let h = MinHasher::one_permutation(512, 3);
        let a = h.signature(set(0..100).iter());
        let b = h.signature(set(50..150).iter());
        let est = a.jaccard(&b);
        assert!(
            (est - 1.0 / 3.0).abs() < 0.08,
            "estimate {est} too far from 1/3"
        );
    }

    #[test]
    fn oph_containment_of_subset_is_high() {
        let h = MinHasher::one_permutation(512, 4);
        let small = h.signature(set(0..20).iter());
        let large = h.signature(set(0..400).iter());
        let c = small.containment_in(&large);
        assert!(
            c > 0.8,
            "containment of a true subset should be close to 1, got {c}"
        );
        let reverse = large.containment_in(&small);
        assert!(
            reverse < 0.2,
            "reverse containment should be small, got {reverse}"
        );
    }

    #[test]
    fn oph_empty_signature_behaviour() {
        let h = MinHasher::one_permutation(16, 5);
        let empty = h.signature(Vec::<String>::new());
        let full = h.signature(set(0..10).iter());
        assert!(empty.is_empty());
        assert_eq!(empty.containment_in(&full), 0.0);
        assert_eq!(empty.jaccard(&empty), 0.0);
        // A non-empty signature is fully densified: no MAX sentinels remain.
        assert!(full.values().iter().all(|&v| v != u64::MAX));
    }

    #[test]
    fn oph_densification_is_consistent_across_sets() {
        // Sparse sets (fewer items than bins) rely on densification; two
        // identical sparse sets must still agree on every position.
        let h = MinHasher::one_permutation(256, 6);
        let a = h.signature(set(0..5).iter());
        let b = h.signature(set(0..5).iter());
        assert!((a.jaccard(&b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn oph_deterministic_across_instances() {
        let h1 = MinHasher::one_permutation(64, 42);
        let h2 = MinHasher::one_permutation(64, 42);
        assert_eq!(
            h1.signature(["drug", "enzyme"]),
            h2.signature(["drug", "enzyme"])
        );
    }

    #[test]
    fn oph_agrees_with_classic_estimates() {
        // The two schemes are different estimators of the same quantity;
        // with 512 hashes they should land close together.
        let classic = MinHasher::new(512, 7);
        let oph = MinHasher::one_permutation(512, 7);
        for (a_range, b_range) in [(0..300, 150..450), (0..50, 25..400), (0..80, 80..160)] {
            let exact = {
                let sa = set(a_range.clone());
                let sb = set(b_range.clone());
                let inter = sa.intersection(&sb).count() as f64;
                let union = sa.union(&sb).count() as f64;
                inter / union
            };
            let jc = classic
                .signature(set(a_range.clone()).iter())
                .jaccard(&classic.signature(set(b_range.clone()).iter()));
            let jo = oph
                .signature(set(a_range).iter())
                .jaccard(&oph.signature(set(b_range).iter()));
            assert!((jc - exact).abs() < 0.08, "classic {jc} vs exact {exact}");
            assert!((jo - exact).abs() < 0.08, "oph {jo} vs exact {exact}");
        }
    }
}
