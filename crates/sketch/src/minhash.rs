//! Minwise hashing signatures.
//!
//! A [`MinHash`] signature summarizes a set of strings with `k` minimum hash
//! values under `k` independent hash functions. The fraction of positions in
//! which two signatures agree is an unbiased estimator of the Jaccard
//! similarity of the underlying sets. Combined with exact set cardinalities,
//! the Jaccard estimate can be converted into a *set containment* estimate —
//! the asymmetric measure CMDL prefers for skewed cardinalities.

use serde::{Deserialize, Serialize};

/// Default number of hash permutations used across CMDL (matches the paper's
/// "512 hashes" profiler configuration for the scalability experiment, scaled
/// down by default for interactive use).
pub const DEFAULT_NUM_HASHES: usize = 128;

/// A family of hash functions that produces MinHash signatures.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MinHasher {
    seeds: Vec<u64>,
}

impl MinHasher {
    /// Create a hasher with `num_hashes` permutations derived from `seed`.
    pub fn new(num_hashes: usize, seed: u64) -> Self {
        assert!(num_hashes > 0, "MinHasher requires at least one hash");
        let mut seeds = Vec::with_capacity(num_hashes);
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        for _ in 0..num_hashes {
            state = splitmix64(state);
            seeds.push(state);
        }
        Self { seeds }
    }

    /// Create a hasher with the default number of permutations.
    pub fn default_with_seed(seed: u64) -> Self {
        Self::new(DEFAULT_NUM_HASHES, seed)
    }

    /// Number of hash permutations.
    pub fn num_hashes(&self) -> usize {
        self.seeds.len()
    }

    /// Compute the signature of a set of string items.
    ///
    /// The exact cardinality of the set is stored alongside the signature so
    /// containment can be estimated later.
    pub fn signature<I, S>(&self, items: I) -> MinHash
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut mins = vec![u64::MAX; self.seeds.len()];
        let mut cardinality = 0usize;
        let mut seen_any = false;
        for item in items {
            seen_any = true;
            cardinality += 1;
            let base = fnv1a(item.as_ref().as_bytes());
            for (slot, seed) in mins.iter_mut().zip(&self.seeds) {
                let h = splitmix64(base ^ seed);
                if h < *slot {
                    *slot = h;
                }
            }
        }
        if !seen_any {
            // Empty signature: keep MAX sentinels, cardinality 0.
        }
        MinHash {
            values: mins,
            cardinality,
        }
    }
}

impl Default for MinHasher {
    fn default() -> Self {
        Self::new(DEFAULT_NUM_HASHES, 0x5EED_CAFE)
    }
}

/// A MinHash signature plus the exact cardinality of the summarized set.
///
/// Note: callers are expected to deduplicate items before calling
/// [`MinHasher::signature`]; CMDL always sketches *distinct* term/value sets,
/// so the stored cardinality is the distinct count.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MinHash {
    values: Vec<u64>,
    cardinality: usize,
}

impl MinHash {
    /// The raw signature values.
    pub fn values(&self) -> &[u64] {
        &self.values
    }

    /// Number of hash permutations in this signature.
    pub fn num_hashes(&self) -> usize {
        self.values.len()
    }

    /// Exact cardinality of the summarized set.
    pub fn cardinality(&self) -> usize {
        self.cardinality
    }

    /// Is this the signature of an empty set?
    pub fn is_empty(&self) -> bool {
        self.cardinality == 0
    }

    /// Estimate the Jaccard similarity with another signature.
    ///
    /// # Panics
    /// Panics if the signatures have different lengths (they must come from
    /// the same [`MinHasher`]).
    pub fn jaccard(&self, other: &MinHash) -> f64 {
        assert_eq!(
            self.values.len(),
            other.values.len(),
            "MinHash signatures must have the same length"
        );
        if self.is_empty() && other.is_empty() {
            return 0.0;
        }
        let matches = self
            .values
            .iter()
            .zip(&other.values)
            .filter(|(a, b)| a == b)
            .count();
        matches as f64 / self.values.len() as f64
    }

    /// Estimate the set containment of `self` in `other`: `|A ∩ B| / |A|`.
    ///
    /// Uses the standard conversion from a Jaccard estimate `j` and the exact
    /// cardinalities `|A|`, `|B|`:
    /// `|A ∩ B| ≈ j·(|A|+|B|) / (1+j)`, so containment `≈ j·(|A|+|B|) / ((1+j)·|A|)`.
    /// The result is clamped to `[0, 1]`.
    pub fn containment_in(&self, other: &MinHash) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        let j = self.jaccard(other);
        let a = self.cardinality as f64;
        let b = other.cardinality as f64;
        let inter = j * (a + b) / (1.0 + j);
        (inter / a).clamp(0.0, 1.0)
    }

    /// Merge with another signature, producing the signature of the union of
    /// the two underlying sets. The stored cardinality becomes an upper bound
    /// (sum) because exact union cardinality is unknown.
    pub fn union(&self, other: &MinHash) -> MinHash {
        assert_eq!(self.values.len(), other.values.len());
        let values = self
            .values
            .iter()
            .zip(&other.values)
            .map(|(a, b)| *a.min(b))
            .collect();
        MinHash {
            values,
            cardinality: self.cardinality + other.cardinality,
        }
    }
}

/// SplitMix64 — a fast, well-distributed 64-bit mixer.
#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a hash of a byte slice.
#[inline]
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn set(range: std::ops::Range<u32>) -> BTreeSet<String> {
        range.map(|i| format!("item{i}")).collect()
    }

    #[test]
    fn identical_sets_have_jaccard_one() {
        let h = MinHasher::new(64, 1);
        let a = h.signature(set(0..100).iter());
        let b = h.signature(set(0..100).iter());
        assert!((a.jaccard(&b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_sets_have_low_jaccard() {
        let h = MinHasher::new(256, 2);
        let a = h.signature(set(0..200).iter());
        let b = h.signature(set(1000..1200).iter());
        assert!(a.jaccard(&b) < 0.05);
    }

    #[test]
    fn jaccard_estimate_close_to_exact() {
        let h = MinHasher::new(512, 3);
        // |A|=100, |B|=100, overlap 50 -> Jaccard = 50/150 = 1/3.
        let a = h.signature(set(0..100).iter());
        let b = h.signature(set(50..150).iter());
        let est = a.jaccard(&b);
        assert!((est - 1.0 / 3.0).abs() < 0.08, "estimate {est} too far from 1/3");
    }

    #[test]
    fn containment_of_subset_is_high() {
        let h = MinHasher::new(512, 4);
        let small = h.signature(set(0..20).iter());
        let large = h.signature(set(0..400).iter());
        let c = small.containment_in(&large);
        assert!(c > 0.8, "containment of a true subset should be close to 1, got {c}");
        let reverse = large.containment_in(&small);
        assert!(reverse < 0.2, "reverse containment should be small, got {reverse}");
    }

    #[test]
    fn empty_signature_behaviour() {
        let h = MinHasher::new(16, 5);
        let empty = h.signature(Vec::<String>::new());
        let full = h.signature(set(0..10).iter());
        assert!(empty.is_empty());
        assert_eq!(empty.containment_in(&full), 0.0);
        assert_eq!(empty.jaccard(&empty), 0.0);
    }

    #[test]
    fn union_signature_matches_union_set() {
        let h = MinHasher::new(256, 6);
        let a = h.signature(set(0..50).iter());
        let b = h.signature(set(50..100).iter());
        let u = a.union(&b);
        let direct = h.signature(set(0..100).iter());
        assert!((u.jaccard(&direct) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn deterministic_across_instances() {
        let h1 = MinHasher::new(64, 42);
        let h2 = MinHasher::new(64, 42);
        let a = h1.signature(["drug", "enzyme"]);
        let b = h2.signature(["drug", "enzyme"]);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        let a = MinHasher::new(16, 1).signature(["x"]);
        let b = MinHasher::new(32, 1).signature(["x"]);
        let _ = a.jaccard(&b);
    }

    #[test]
    fn serde_roundtrip() {
        let h = MinHasher::new(32, 9);
        let sig = h.signature(["alpha", "beta"]);
        let json = serde_json::to_string(&sig).unwrap();
        let back: MinHash = serde_json::from_str(&json).unwrap();
        assert_eq!(sig, back);
    }
}
