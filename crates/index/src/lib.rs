//! # cmdl-index
//!
//! The indexing framework of CMDL (paper Sections 2.2 and 3). Two index
//! families are provided:
//!
//! * [`bm25`] — an in-memory inverted index with BM25 (TF/IDF-style) and
//!   LM-Dirichlet ranking. This plays the role of the Elastic Search indexes
//!   the paper builds on document/column content and metadata, both as a
//!   retrieval baseline and as the keyword-based labeling functions of the
//!   weak-supervision framework.
//! * [`ann`] — an approximate-nearest-neighbour index over dense embedding
//!   vectors built from a forest of random-projection trees (the same
//!   algorithmic family as Annoy, which the paper uses to index solo and
//!   joint embeddings), plus a brute-force exact fallback.
//!
//! Both indexes key elements with opaque `u64` ids; the mapping between ids
//! and discoverable elements lives in `cmdl-core`.

pub mod ann;
pub mod bm25;
pub mod embedding_store;
pub mod topk;

pub use ann::{AnnIndex, AnnIndexConfig, BruteForceIndex};
pub use bm25::{Bm25Params, CorpusStats, InvertedIndex, ScoringFunction};
pub use embedding_store::EmbeddingStore;
pub use topk::TopK;
