//! A bounded top-k accumulator for `(id, score)` pairs.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

#[derive(Debug, Clone, PartialEq)]
struct HeapItem {
    score: f64,
    id: u64,
}

impl Eq for HeapItem {}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse ordering on score so the heap is a min-heap by score; ties
        // orient so the heap's maximum (the evicted item) is the *largest*
        // id of the lowest tie group — the last element of the ranking
        // (score desc, id asc) that `into_sorted_vec` emits. Eviction and
        // ranking agreeing on one total order is what keeps the retained
        // set independent of `k` and of arrival order.
        other
            .score
            .partial_cmp(&self.score)
            .unwrap_or(Ordering::Equal)
            .then_with(|| self.id.cmp(&other.id))
    }
}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Keeps the `k` highest-scoring `(id, score)` pairs seen so far.
#[derive(Debug, Clone)]
pub struct TopK {
    k: usize,
    heap: BinaryHeap<HeapItem>,
}

impl TopK {
    /// Create an accumulator keeping at most `k` items.
    pub fn new(k: usize) -> Self {
        // `k` may be usize::MAX ("fetch everything" in the query API), so
        // the pre-allocation is saturated and capped; the heap still grows
        // to whatever is actually pushed.
        Self {
            k,
            heap: BinaryHeap::with_capacity(k.saturating_add(1).min(4096)),
        }
    }

    /// Offer an `(id, score)` pair.
    #[inline]
    pub fn push(&mut self, id: u64, score: f64) {
        if self.k == 0 || !score.is_finite() {
            return;
        }
        self.heap.push(HeapItem { score, id });
        if self.heap.len() > self.k {
            self.heap.pop();
        }
    }

    /// Would a pair with this score enter the accumulator right now?
    ///
    /// Lets scoring loops skip more expensive admission work (e.g. filter
    /// predicates or id resolution) for scores that cannot make the cut.
    /// A score *equal* to the current threshold is accepted: `push` resolves
    /// the tie by id (the largest id among the lowest-scoring tie group is
    /// evicted), so the retained set is always the top `k` under the total
    /// order (score desc, id asc) — independent of arrival order and of `k`.
    /// That k-independence is what makes paginated fetches of different
    /// depths consistent.
    #[inline]
    pub fn would_accept(&self, score: f64) -> bool {
        if self.k == 0 || !score.is_finite() {
            return false;
        }
        match self.threshold() {
            Some(threshold) => score >= threshold,
            None => true,
        }
    }

    /// Current number of retained items.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Is the accumulator empty?
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The lowest retained score, if the accumulator is full.
    #[inline]
    pub fn threshold(&self) -> Option<f64> {
        if self.heap.len() == self.k {
            self.heap.peek().map(|i| i.score)
        } else {
            None
        }
    }

    /// Consume the accumulator and return the retained items sorted by score
    /// descending (ties broken by ascending id for determinism).
    pub fn into_sorted_vec(self) -> Vec<(u64, f64)> {
        let mut items: Vec<(u64, f64)> = self.heap.into_iter().map(|i| (i.id, i.score)).collect();
        items.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(Ordering::Equal)
                .then_with(|| a.0.cmp(&b.0))
        });
        items
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_highest_k() {
        let mut tk = TopK::new(3);
        for (id, score) in [(1, 0.1), (2, 0.9), (3, 0.5), (4, 0.7), (5, 0.3)] {
            tk.push(id, score);
        }
        let out = tk.into_sorted_vec();
        assert_eq!(
            out.iter().map(|(id, _)| *id).collect::<Vec<_>>(),
            vec![2, 4, 3]
        );
    }

    #[test]
    fn fewer_items_than_k() {
        let mut tk = TopK::new(10);
        tk.push(1, 0.5);
        tk.push(2, 0.6);
        assert_eq!(tk.len(), 2);
        assert!(tk.threshold().is_none());
        assert_eq!(tk.into_sorted_vec().len(), 2);
    }

    #[test]
    fn zero_k_keeps_nothing() {
        let mut tk = TopK::new(0);
        tk.push(1, 1.0);
        assert!(tk.is_empty());
    }

    #[test]
    fn nan_scores_ignored() {
        let mut tk = TopK::new(2);
        tk.push(1, f64::NAN);
        tk.push(2, 0.5);
        assert_eq!(tk.into_sorted_vec(), vec![(2, 0.5)]);
    }

    #[test]
    fn ties_broken_by_id() {
        let mut tk = TopK::new(2);
        tk.push(9, 0.5);
        tk.push(3, 0.5);
        tk.push(7, 0.5);
        let out = tk.into_sorted_vec();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].1, 0.5);
    }

    #[test]
    fn boundary_ties_resolve_by_id_regardless_of_arrival_order() {
        // The retained set must be the top k under (score desc, id asc) no
        // matter the insertion order — otherwise paginated fetches with
        // different probe depths disagree inside tie groups.
        let items = [(7, 0.5), (3, 0.5), (9, 0.5), (1, 0.5), (5, 0.9)];
        for rotation in 0..items.len() {
            let mut tk = TopK::new(3);
            for i in 0..items.len() {
                let (id, score) = items[(i + rotation) % items.len()];
                if tk.would_accept(score) {
                    tk.push(id, score);
                }
            }
            assert_eq!(
                tk.into_sorted_vec(),
                vec![(5, 0.9), (1, 0.5), (3, 0.5)],
                "rotation {rotation}"
            );
        }
    }

    #[test]
    fn threshold_reported_when_full() {
        let mut tk = TopK::new(2);
        tk.push(1, 0.9);
        tk.push(2, 0.4);
        assert_eq!(tk.threshold(), Some(0.4));
        tk.push(3, 0.8);
        assert_eq!(tk.threshold(), Some(0.8));
    }
}
