//! Approximate nearest-neighbour search over dense vectors.
//!
//! CMDL indexes solo and joint embeddings with an Annoy-style structure
//! (paper Section 3, "Indexing Profiler-Generated Sketches"). [`AnnIndex`]
//! implements the same algorithmic family: a forest of random-projection
//! trees. Each tree recursively splits the point set by a random hyperplane
//! through two sampled points; queries descend each tree, gather candidate
//! leaves, and rank candidates exactly by cosine similarity. A
//! [`BruteForceIndex`] provides the exact reference used in tests and for
//! small collections.
//!
//! ## Storage layout
//!
//! Vectors live in a contiguous row-major [`EmbeddingStore`] (norms
//! precomputed at insert time), so ranking a candidate run is a streak of
//! cache-local dot products. With
//! [`AnnIndexConfig::quantize`] the store keeps an `i8` scalar-quantized
//! mirror: candidate ranking then *pre-ranks* with the cheap integer
//! kernel, keeps `top_k × rerank_factor` survivors, and reranks those
//! exactly in `f32` — with a wide-enough rerank pool the returned top-k is
//! identical to the pure-`f32` scan (asserted by the parity tests on the
//! bench lake).
//!
//! ## Incremental maintenance
//!
//! Vectors added after [`build`](AnnIndex::build) land in a *delta tail*
//! that queries scan exactly (every delta vector is a candidate), so the
//! forest keeps serving without a rebuild while the tail stays small.
//! [`remove`](AnnIndex::remove) tombstones a vector in place, and
//! [`compact`](AnnIndex::compact) drops tombstoned vectors, folds the delta
//! tail into the forest, and rebuilds the trees.

use std::cell::RefCell;

use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use cmdl_nn::{dot_f32, norm_f32};

use crate::embedding_store::EmbeddingStore;
use crate::topk::TopK;

/// Cosine similarity between two equal-length vectors (0 when either is a
/// zero vector; panics on a length mismatch — the old implementation
/// silently truncated). Chunked 8-lane kernels, auto-vectorized; the denominator
/// is `sqrt(|a|²·|b|²)` in `f64`, which keeps the self-similarity of a
/// vector exactly `1.0` (callers compare against sharp thresholds).
pub fn cosine_similarity(a: &[f32], b: &[f32]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let (na, nb) = (dot_f32(a, a), dot_f32(b, b));
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        f64::from(dot_f32(a, b)) / (f64::from(na) * f64::from(nb)).sqrt()
    }
}

/// Configuration for [`AnnIndex`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AnnIndexConfig {
    /// Number of random-projection trees. More trees → better recall, more
    /// memory. Default 10.
    pub num_trees: usize,
    /// Maximum number of points in a leaf. Default 16.
    pub leaf_size: usize,
    /// RNG seed for reproducible tree construction.
    pub seed: u64,
    /// Keep an `i8` scalar-quantized mirror and pre-rank candidates with it
    /// before the exact `f32` rerank. Default off (pure `f32` scoring).
    pub quantize: bool,
    /// Rerank pool size as a multiple of `top_k` when `quantize` is on.
    /// Default 4.
    pub rerank_factor: usize,
}

impl Default for AnnIndexConfig {
    fn default() -> Self {
        Self {
            num_trees: 10,
            leaf_size: 16,
            seed: 0xA11CE,
            quantize: false,
            rerank_factor: 4,
        }
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
enum Node {
    Leaf {
        items: Vec<usize>,
    },
    Split {
        /// Hyperplane normal.
        normal: Vec<f32>,
        /// Offset along the normal.
        offset: f32,
        left: usize,
        right: usize,
    },
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Tree {
    nodes: Vec<Node>,
    root: usize,
}

thread_local! {
    /// Reusable per-thread query scratch: a seen-bitmap (cleared back to
    /// zero after every query), the deduplicated candidate list, and the
    /// quantized-query buffer. `execute_many`'s rayon workers each reuse
    /// their own copy, so batched serving allocates nothing here in steady
    /// state.
    static QUERY_SCRATCH: RefCell<QueryScratch> = RefCell::new(QueryScratch::default());
}

#[derive(Default)]
struct QueryScratch {
    /// One bit per vector position ("already a candidate").
    seen: Vec<u64>,
    candidates: Vec<usize>,
    quantized_query: Vec<i8>,
}

/// A forest of random-projection trees for approximate nearest-neighbour
/// search under cosine similarity.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AnnIndex {
    config: AnnIndexConfig,
    ids: Vec<u64>,
    /// Indexed vectors: contiguous row-major storage with precomputed
    /// norms (and the optional `i8` mirror).
    vectors: EmbeddingStore,
    dim: usize,
    trees: Vec<Tree>,
    built: bool,
    /// Number of leading vectors covered by the built forest; vectors at
    /// positions `built_len..` form the exactly-scanned delta tail.
    built_len: usize,
    /// Tombstone flags by position (`true` = removed). May be shorter than
    /// `ids` (older entries are implicitly live).
    dead: Vec<bool>,
    /// Number of tombstoned vectors.
    num_dead: usize,
    /// External id → position, for removal. Rebuilt lazily after
    /// deserialization.
    #[serde(skip)]
    id_to_pos: std::collections::HashMap<u64, u32>,
}

impl AnnIndex {
    /// Create an empty index for vectors of dimension `dim`.
    pub fn new(dim: usize, config: AnnIndexConfig) -> Self {
        let vectors = EmbeddingStore::new(dim, config.quantize);
        Self {
            config,
            ids: Vec::new(),
            vectors,
            dim,
            trees: Vec::new(),
            built: false,
            built_len: 0,
            dead: Vec::new(),
            num_dead: 0,
            id_to_pos: std::collections::HashMap::new(),
        }
    }

    /// Create an index with default configuration.
    pub fn with_defaults(dim: usize) -> Self {
        Self::new(dim, AnnIndexConfig::default())
    }

    /// Vector dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of live (non-tombstoned) vectors.
    pub fn len(&self) -> usize {
        self.ids.len() - self.num_dead
    }

    /// Is the index empty (of live vectors)?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of live vectors in the exactly-scanned delta tail (a
    /// tombstoned tail vector is counted by
    /// [`num_tombstoned`](Self::num_tombstoned) only, so the two never
    /// double-count).
    pub fn num_delta(&self) -> usize {
        (self.built_len..self.ids.len())
            .filter(|&pos| !self.is_dead(pos))
            .count()
    }

    /// Number of tombstoned vectors awaiting [`compact`](Self::compact).
    pub fn num_tombstoned(&self) -> usize {
        self.num_dead
    }

    /// Is the vector at `pos` tombstoned?
    #[inline]
    fn is_dead(&self, pos: usize) -> bool {
        self.dead.get(pos).copied().unwrap_or(false)
    }

    /// Add a vector under `id` (copied into the contiguous store).
    ///
    /// Before the first [`build`](Self::build) the index serves queries by
    /// brute force. After a build, added vectors join the delta tail: the
    /// forest keeps serving and the tail is scanned exactly, so no rebuild
    /// is needed until [`compact`](Self::compact).
    ///
    /// # Panics
    /// Panics if the vector dimension does not match the index dimension.
    pub fn add(&mut self, id: u64, vector: &[f32]) {
        assert_eq!(vector.len(), self.dim, "vector dimension mismatch");
        self.ensure_id_map();
        self.id_to_pos.insert(id, self.ids.len() as u32);
        self.ids.push(id);
        self.vectors.push(vector);
    }

    /// Tombstone the vector indexed under `id`. Returns `false` if the id is
    /// unknown (or already removed).
    pub fn remove(&mut self, id: u64) -> bool {
        self.ensure_id_map();
        let Some(pos) = self.id_to_pos.remove(&id) else {
            return false;
        };
        let pos = pos as usize;
        if self.dead.len() <= pos {
            self.dead.resize(self.ids.len(), false);
        }
        if self.dead[pos] {
            return false;
        }
        self.dead[pos] = true;
        self.num_dead += 1;
        true
    }

    fn ensure_id_map(&mut self) {
        if self.id_to_pos.is_empty() && !self.ids.is_empty() {
            self.id_to_pos = self
                .ids
                .iter()
                .enumerate()
                .filter(|&(pos, _)| !self.dead.get(pos).copied().unwrap_or(false))
                .map(|(pos, &id)| (id, pos as u32))
                .collect();
        }
    }

    /// Build the random-projection forest over the live vectors.
    pub fn build(&mut self) {
        let mut rng = ChaCha8Rng::seed_from_u64(self.config.seed);
        self.trees = (0..self.config.num_trees.max(1))
            .map(|_| self.build_tree(&mut rng))
            .collect();
        self.built = true;
        self.built_len = self.ids.len();
    }

    /// Drop tombstoned vectors, fold the delta tail into the forest, and
    /// rebuild the trees.
    pub fn compact(&mut self) {
        if self.num_dead > 0 {
            let mut ids = Vec::with_capacity(self.len());
            let mut vectors = EmbeddingStore::new(self.dim, self.config.quantize);
            for pos in 0..self.ids.len() {
                if !self.is_dead(pos) {
                    ids.push(self.ids[pos]);
                    vectors.push(self.vectors.row(pos));
                }
            }
            self.ids = ids;
            self.vectors = vectors;
            self.dead.clear();
            self.num_dead = 0;
            self.id_to_pos.clear();
            self.ensure_id_map();
        }
        self.build();
    }

    /// Has the forest been built (the delta tail may still be non-empty)?
    pub fn is_built(&self) -> bool {
        self.built
    }

    fn build_tree(&self, rng: &mut ChaCha8Rng) -> Tree {
        let mut nodes = Vec::new();
        let all: Vec<usize> = (0..self.vectors.len())
            .filter(|&i| !self.is_dead(i))
            .collect();
        let root = self.build_node(&all, rng, &mut nodes, 0);
        Tree { nodes, root }
    }

    fn build_node(
        &self,
        items: &[usize],
        rng: &mut ChaCha8Rng,
        nodes: &mut Vec<Node>,
        depth: usize,
    ) -> usize {
        if items.len() <= self.config.leaf_size || depth > 40 {
            nodes.push(Node::Leaf {
                items: items.to_vec(),
            });
            return nodes.len() - 1;
        }
        // Pick two distinct points and split by the perpendicular bisector of
        // the segment between them (Annoy's strategy).
        let a = *items.choose(rng).expect("non-empty");
        let b = loop {
            let cand = *items.choose(rng).expect("non-empty");
            if cand != a || items.iter().all(|&i| i == a) {
                break cand;
            }
        };
        let va: &[f32] = self.vectors.row(a);
        let vb: &[f32] = self.vectors.row(b);
        let mut normal: Vec<f32> = va.iter().zip(vb).map(|(x, y)| x - y).collect();
        let norm: f32 = norm_f32(&normal);
        if norm < 1e-12 {
            // Degenerate split (identical points): random hyperplane.
            for n in normal.iter_mut() {
                *n = rng.gen_range(-1.0..1.0);
            }
        }
        let midpoint: Vec<f32> = va.iter().zip(vb).map(|(x, y)| (x + y) / 2.0).collect();
        let offset: f32 = dot_f32(&normal, &midpoint);

        let mut left = Vec::new();
        let mut right = Vec::new();
        for &i in items {
            let side: f32 = dot_f32(&normal, self.vectors.row(i));
            if side < offset {
                left.push(i);
            } else {
                right.push(i);
            }
        }
        // Guard against degenerate splits that would not reduce the set.
        if left.is_empty() || right.is_empty() {
            nodes.push(Node::Leaf {
                items: items.to_vec(),
            });
            return nodes.len() - 1;
        }
        let left_idx = self.build_node(&left, rng, nodes, depth + 1);
        let right_idx = self.build_node(&right, rng, nodes, depth + 1);
        nodes.push(Node::Split {
            normal,
            offset,
            left: left_idx,
            right: right_idx,
        });
        nodes.len() - 1
    }

    /// Query for the `top_k` most cosine-similar vectors. Returns
    /// `(id, similarity)` sorted descending. Falls back to brute force when
    /// the forest has not been built; vectors in the delta tail are always
    /// scanned exactly.
    pub fn query(&self, vector: &[f32], top_k: usize) -> Vec<(u64, f64)> {
        assert_eq!(vector.len(), self.dim, "query dimension mismatch");
        QUERY_SCRATCH.with_borrow_mut(|scratch| {
            scratch.candidates.clear();
            if !self.built || self.trees.is_empty() {
                // Exhaustive scan: every live row is a candidate, so use
                // the full-scan scorers (no per-row index arithmetic).
                if self.dim > 0 {
                    return self.rank_all(vector, top_k, &mut scratch.quantized_query);
                }
                scratch.candidates.extend(0..self.ids.len());
            } else {
                let words = self.ids.len().div_ceil(64);
                if scratch.seen.len() < words {
                    scratch.seen.resize(words, 0);
                }
                for tree in &self.trees {
                    self.collect_candidates(tree, tree.root, vector, scratch);
                }
                // The delta tail is not in any tree: every live tail vector
                // is a candidate, keeping post-build inserts exact. (Tail
                // positions cannot appear in tree leaves, so no dedup is
                // needed against the bitmap.)
                scratch.candidates.extend(self.built_len..self.ids.len());
                // Restore the all-zeros bitmap invariant for the next query.
                for &pos in &scratch.candidates {
                    if pos < self.built_len {
                        scratch.seen[pos / 64] &= !(1u64 << (pos % 64));
                    }
                }
            }
            self.rank_candidates(
                &scratch.candidates,
                vector,
                top_k,
                &mut scratch.quantized_query,
            )
        })
    }

    /// Rank *every* stored vector (the exhaustive/brute-force path) with
    /// the streaming full-scan scorers: same pre-rank/rerank policy as
    /// [`Self::rank_candidates`], but the hot loop walks the matrix with
    /// `chunks_exact` instead of per-row index arithmetic.
    fn rank_all(
        &self,
        vector: &[f32],
        top_k: usize,
        quantized_query: &mut Vec<i8>,
    ) -> Vec<(u64, f64)> {
        let inv_qnorm = EmbeddingStore::inv_query_norm(vector);
        let pool = top_k.saturating_mul(self.config.rerank_factor.max(1));
        if pool < self.vectors.len() {
            if let Some(q_scale) = self.vectors.quantize_query(vector, quantized_query) {
                let q_factor = q_scale * inv_qnorm;
                let scorer = self
                    .vectors
                    .quantized_scorer()
                    .expect("quantize_query succeeded");
                let mut pre = TopK::new(pool);
                if self.num_dead == 0 {
                    for (pos, score) in scorer.approx_cosines(quantized_query, q_factor).enumerate()
                    {
                        if pre.would_accept(score) {
                            pre.push(pos as u64, score);
                        }
                    }
                } else {
                    for (pos, score) in scorer.approx_cosines(quantized_query, q_factor).enumerate()
                    {
                        if !self.is_dead(pos) && pre.would_accept(score) {
                            pre.push(pos as u64, score);
                        }
                    }
                }
                let mut tk = TopK::new(top_k);
                for (pos, _) in pre.into_sorted_vec() {
                    let pos = pos as usize;
                    tk.push(self.ids[pos], self.vectors.cosine(pos, vector, inv_qnorm));
                }
                return tk.into_sorted_vec();
            }
        }
        let mut tk = TopK::new(top_k);
        if self.num_dead == 0 {
            for (pos, score) in self.vectors.cosines(vector, inv_qnorm).enumerate() {
                if tk.would_accept(score) {
                    tk.push(self.ids[pos], score);
                }
            }
        } else {
            for (pos, score) in self.vectors.cosines(vector, inv_qnorm).enumerate() {
                if !self.is_dead(pos) && tk.would_accept(score) {
                    tk.push(self.ids[pos], score);
                }
            }
        }
        tk.into_sorted_vec()
    }

    /// Rank deduplicated candidate positions: quantized pre-rank + exact
    /// rerank when the store keeps an `i8` mirror (and the pool is actually
    /// smaller than the candidate set), pure `f32` scoring otherwise.
    fn rank_candidates(
        &self,
        candidates: &[usize],
        vector: &[f32],
        top_k: usize,
        quantized_query: &mut Vec<i8>,
    ) -> Vec<(u64, f64)> {
        let inv_qnorm = EmbeddingStore::inv_query_norm(vector);
        let pool = top_k.saturating_mul(self.config.rerank_factor.max(1));
        if pool < candidates.len() {
            if let Some(q_scale) = self.vectors.quantize_query(vector, quantized_query) {
                // Pre-rank every candidate with the integer kernel, keeping
                // a pool of `top_k * rerank_factor` positions...
                let q_factor = q_scale * inv_qnorm;
                let scorer = self
                    .vectors
                    .quantized_scorer()
                    .expect("quantize_query succeeded");
                let mut pre = TopK::new(pool);
                for &pos in candidates {
                    if !self.is_dead(pos) {
                        let score = scorer.approx_cosine(pos, quantized_query, q_factor);
                        if pre.would_accept(score) {
                            pre.push(pos as u64, score);
                        }
                    }
                }
                // ...then rerank the pool exactly in f32.
                let mut tk = TopK::new(top_k);
                for (pos, _) in pre.into_sorted_vec() {
                    let pos = pos as usize;
                    tk.push(self.ids[pos], self.vectors.cosine(pos, vector, inv_qnorm));
                }
                return tk.into_sorted_vec();
            }
        }
        let mut tk = TopK::new(top_k);
        for &pos in candidates {
            if !self.is_dead(pos) {
                let score = self.vectors.cosine(pos, vector, inv_qnorm);
                if tk.would_accept(score) {
                    tk.push(self.ids[pos], score);
                }
            }
        }
        tk.into_sorted_vec()
    }

    fn collect_candidates(
        &self,
        tree: &Tree,
        node: usize,
        vector: &[f32],
        scratch: &mut QueryScratch,
    ) {
        match &tree.nodes[node] {
            Node::Leaf { items } => {
                for &pos in items {
                    let (word, bit) = (pos / 64, 1u64 << (pos % 64));
                    if scratch.seen[word] & bit == 0 {
                        scratch.seen[word] |= bit;
                        scratch.candidates.push(pos);
                    }
                }
            }
            Node::Split {
                normal,
                offset,
                left,
                right,
            } => {
                let side: f32 = dot_f32(normal, vector);
                if side < *offset {
                    self.collect_candidates(tree, *left, vector, scratch);
                } else {
                    self.collect_candidates(tree, *right, vector, scratch);
                }
            }
        }
    }
}

/// An exact nearest-neighbour index (linear scan) used as reference and for
/// small collections.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct BruteForceIndex {
    ids: Vec<u64>,
    vectors: Vec<Vec<f32>>,
}

impl BruteForceIndex {
    /// Create an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of indexed vectors.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Is the index empty?
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Add a vector under `id`.
    pub fn add(&mut self, id: u64, vector: Vec<f32>) {
        self.ids.push(id);
        self.vectors.push(vector);
    }

    /// Exact top-k query by cosine similarity.
    pub fn query(&self, vector: &[f32], top_k: usize) -> Vec<(u64, f64)> {
        let mut tk = TopK::new(top_k);
        for (i, v) in self.vectors.iter().enumerate() {
            if v.len() == vector.len() {
                tk.push(self.ids[i], cosine_similarity(vector, v));
            }
        }
        tk.into_sorted_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(dim: usize, hot: usize) -> Vec<f32> {
        let mut v = vec![0.0; dim];
        v[hot] = 1.0;
        v
    }

    fn random_vectors(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..n)
            .map(|_| (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
            .collect()
    }

    #[test]
    fn cosine_basics() {
        assert!((cosine_similarity(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-9);
        assert!(cosine_similarity(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-9);
        assert!((cosine_similarity(&[1.0, 0.0], &[-1.0, 0.0]) + 1.0).abs() < 1e-9);
        assert_eq!(cosine_similarity(&[0.0, 0.0], &[1.0, 0.0]), 0.0);
    }

    #[test]
    fn exact_neighbour_found() {
        let mut idx = AnnIndex::with_defaults(8);
        for i in 0..8u64 {
            idx.add(i, &unit(8, i as usize));
        }
        idx.build();
        let res = idx.query(&unit(8, 3), 1);
        assert_eq!(res[0].0, 3);
        assert!((res[0].1 - 1.0).abs() < 1e-6);
    }

    #[test]
    fn ann_recall_reasonable() {
        let dim = 16;
        let vectors = random_vectors(500, dim, 99);
        let mut ann = AnnIndex::new(
            dim,
            AnnIndexConfig {
                num_trees: 15,
                leaf_size: 10,
                seed: 7,
                ..AnnIndexConfig::default()
            },
        );
        let mut exact = BruteForceIndex::new();
        for (i, v) in vectors.iter().enumerate() {
            ann.add(i as u64, v);
            exact.add(i as u64, v.clone());
        }
        ann.build();
        let queries = random_vectors(20, dim, 123);
        let mut hits = 0;
        let mut total = 0;
        for q in &queries {
            let truth: std::collections::HashSet<u64> =
                exact.query(q, 10).into_iter().map(|(id, _)| id).collect();
            let approx = ann.query(q, 10);
            total += truth.len();
            hits += approx.iter().filter(|(id, _)| truth.contains(id)).count();
        }
        let recall = hits as f64 / total as f64;
        assert!(recall > 0.5, "ANN recall@10 too low: {recall}");
    }

    #[test]
    fn unbuilt_index_falls_back_to_exact() {
        let mut idx = AnnIndex::with_defaults(4);
        idx.add(1, &unit(4, 0));
        idx.add(2, &unit(4, 1));
        let res = idx.query(&unit(4, 1), 1);
        assert_eq!(res[0].0, 2);
    }

    #[test]
    fn empty_index_query() {
        let mut idx = AnnIndex::with_defaults(4);
        idx.build();
        assert!(idx.query(&unit(4, 0), 3).is_empty());
    }

    #[test]
    fn duplicate_vectors_handled() {
        let mut idx = AnnIndex::with_defaults(4);
        for i in 0..50u64 {
            idx.add(i, &unit(4, 0));
        }
        idx.build();
        let res = idx.query(&unit(4, 0), 5);
        assert_eq!(res.len(), 5);
    }

    #[test]
    fn delta_tail_is_exact_after_build() {
        let mut idx = AnnIndex::with_defaults(8);
        for i in 0..6u64 {
            idx.add(i, &unit(8, i as usize));
        }
        idx.build();
        // Post-build inserts are served exactly without a rebuild.
        idx.add(7, &unit(8, 7));
        assert!(idx.is_built());
        assert_eq!(idx.num_delta(), 1);
        let res = idx.query(&unit(8, 7), 1);
        assert_eq!(res[0].0, 7);
        assert!((res[0].1 - 1.0).abs() < 1e-6);
        // Compact folds the tail into the forest.
        idx.compact();
        assert_eq!(idx.num_delta(), 0);
        assert_eq!(idx.query(&unit(8, 7), 1)[0].0, 7);
    }

    #[test]
    fn remove_tombstones_until_compact() {
        let mut idx = AnnIndex::with_defaults(4);
        idx.add(1, &unit(4, 0));
        idx.add(2, &unit(4, 1));
        idx.add(3, &unit(4, 2));
        idx.build();
        assert!(idx.remove(2));
        assert!(!idx.remove(2));
        assert!(!idx.remove(99));
        assert_eq!(idx.len(), 2);
        assert_eq!(idx.num_tombstoned(), 1);
        let res = idx.query(&unit(4, 1), 3);
        assert!(!res.iter().any(|(id, _)| *id == 2));
        idx.compact();
        assert_eq!(idx.num_tombstoned(), 0);
        assert_eq!(idx.len(), 2);
        assert!(!idx.query(&unit(4, 1), 3).iter().any(|(id, _)| *id == 2));
    }

    #[test]
    fn serde_roundtrip_preserves_delta_state() {
        let mut idx = AnnIndex::with_defaults(4);
        idx.add(1, &unit(4, 0));
        idx.add(2, &unit(4, 1));
        idx.build();
        idx.add(3, &unit(4, 2));
        idx.remove(1);
        let json = serde_json::to_string(&idx).unwrap();
        let mut back: AnnIndex = serde_json::from_str(&json).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.num_delta(), 1);
        assert!(!back.query(&unit(4, 0), 3).iter().any(|(id, _)| *id == 1));
        assert_eq!(back.query(&unit(4, 2), 1)[0].0, 3);
        // The id map is rebuilt lazily: removing after a roundtrip works.
        assert!(back.remove(3));
        assert!(back.query(&unit(4, 2), 3).iter().all(|(id, _)| *id != 3));
    }

    #[test]
    #[should_panic]
    fn dimension_mismatch_panics() {
        let mut idx = AnnIndex::with_defaults(4);
        idx.add(1, &[0.0; 3]);
    }

    #[test]
    fn brute_force_ordering() {
        let mut idx = BruteForceIndex::new();
        idx.add(1, vec![1.0, 0.0]);
        idx.add(2, vec![0.9, 0.1]);
        idx.add(3, vec![0.0, 1.0]);
        let res = idx.query(&[1.0, 0.0], 3);
        assert_eq!(res[0].0, 1);
        assert_eq!(res[2].0, 3);
    }

    #[test]
    fn quantized_prerank_matches_exact_on_random_vectors() {
        let dim = 32;
        let vectors = random_vectors(400, dim, 21);
        let mut exact = AnnIndex::new(
            dim,
            AnnIndexConfig {
                num_trees: 8,
                seed: 5,
                ..AnnIndexConfig::default()
            },
        );
        let mut quantized = AnnIndex::new(
            dim,
            AnnIndexConfig {
                num_trees: 8,
                seed: 5,
                quantize: true,
                rerank_factor: 4,
                ..AnnIndexConfig::default()
            },
        );
        for (i, v) in vectors.iter().enumerate() {
            exact.add(i as u64, v);
            quantized.add(i as u64, v);
        }
        exact.build();
        quantized.build();
        for q in random_vectors(25, dim, 77) {
            let a = exact.query(&q, 10);
            let b = quantized.query(&q, 10);
            assert_eq!(a, b, "i8 pre-rank + f32 rerank must match pure f32");
        }
        // Tombstones and the delta tail go through the same rank path.
        assert!(exact.remove(3) && quantized.remove(3));
        exact.add(1000, &vectors[0]);
        quantized.add(1000, &vectors[0]);
        for q in random_vectors(10, dim, 78) {
            assert_eq!(exact.query(&q, 7), quantized.query(&q, 7));
        }
    }
}
