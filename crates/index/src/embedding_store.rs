//! Contiguous storage for dense embedding vectors.
//!
//! [`EmbeddingStore`] replaces the former `Vec<Arc<Vec<f32>>>` layout of the
//! ANN index: all vectors live in **one row-major `f32` matrix**, so a
//! query that scores a run of candidates walks flat cache-local memory
//! instead of chasing a pointer per vector. Per-row Euclidean norms are
//! precomputed at insert time — a cosine similarity then costs one dot
//! product instead of three.
//!
//! Optionally the store keeps an **`i8` scalar-quantized mirror** (per-row
//! symmetric max-abs scaling). The mirror supports a cheap approximate
//! cosine — integer multiply-accumulate at 4× the element throughput of
//! `f32`, and a quarter the memory traffic — used by the ANN index to
//! *pre-rank* candidates before an exact `f32` rerank of the survivors.

use serde::{Deserialize, Serialize};

use cmdl_nn::{dot_f32, dot_i8, norm_f32};

/// The `i8` scalar-quantized mirror of a store (row-major). Instead of the
/// raw de-quantization scale, each row stores `scale / ‖row‖` — the one
/// factor the approximate-cosine kernel needs, so scoring a row is a
/// single multiply with no division.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct QuantizedMirror {
    data: Vec<i8>,
    scale_over_norm: Vec<f32>,
}

/// A contiguous row-major store of equal-dimension `f32` vectors with
/// precomputed norms and an optional `i8` quantized mirror.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EmbeddingStore {
    dim: usize,
    /// Row-major vector data (`len * dim` floats).
    data: Vec<f32>,
    /// Per-row *inverse* Euclidean norm (`0` for a zero row, which makes a
    /// zero row score 0 with no branch). Stored inverted so a cosine is a
    /// dot product and two multiplies — no per-row division.
    inv_norms: Vec<f32>,
    /// The quantized mirror, if enabled at construction.
    quantized: Option<QuantizedMirror>,
}

impl EmbeddingStore {
    /// An empty store for vectors of dimension `dim`; `quantize` enables
    /// the `i8` mirror.
    pub fn new(dim: usize, quantize: bool) -> Self {
        Self {
            dim,
            data: Vec::new(),
            inv_norms: Vec::new(),
            quantized: quantize.then(QuantizedMirror::default),
        }
    }

    /// Vector dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of stored vectors.
    pub fn len(&self) -> usize {
        self.inv_norms.len()
    }

    /// Is the store empty?
    pub fn is_empty(&self) -> bool {
        self.inv_norms.is_empty()
    }

    /// Does the store keep an `i8` mirror?
    pub fn is_quantized(&self) -> bool {
        self.quantized.is_some()
    }

    /// Append a vector (copied into the contiguous matrix; the norm and —
    /// if enabled — the quantized row are computed here).
    ///
    /// # Panics
    /// Panics if the vector dimension does not match the store dimension.
    pub fn push(&mut self, vector: &[f32]) {
        assert_eq!(vector.len(), self.dim, "vector dimension mismatch");
        self.data.extend_from_slice(vector);
        let norm = norm_f32(vector);
        let inv_norm = if norm == 0.0 { 0.0 } else { 1.0 / norm };
        self.inv_norms.push(inv_norm);
        if let Some(mirror) = &mut self.quantized {
            let scale = quantize_append(vector, &mut mirror.data);
            mirror.scale_over_norm.push(scale * inv_norm);
        }
    }

    /// Borrow row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// The precomputed inverse norm of row `i` (`0` for a zero row).
    #[inline]
    pub fn inv_norm(&self, i: usize) -> f32 {
        self.inv_norms[i]
    }

    /// Exact cosine similarity between row `i` and a query whose *inverse*
    /// norm the caller computed once (see [`Self::inv_query_norm`]). Zero
    /// vectors score 0 through the zero inverse norm — no branch.
    #[inline]
    pub fn cosine(&self, i: usize, query: &[f32], inv_query_norm: f32) -> f64 {
        f64::from(dot_f32(self.row(i), query))
            * f64::from(self.inv_norms[i])
            * f64::from(inv_query_norm)
    }

    /// Stream the exact cosine of *every* row in order — the full-scan
    /// form of [`Self::cosine`]: `chunks_exact` walks the matrix with no
    /// per-row bounds arithmetic. Requires `dim > 0` (callers with an
    /// empty dimension use the indexed form).
    #[inline]
    pub fn cosines<'q>(
        &'q self,
        query: &'q [f32],
        inv_query_norm: f32,
    ) -> impl Iterator<Item = f64> + 'q {
        self.data
            .chunks_exact(self.dim.max(1))
            .zip(&self.inv_norms)
            .map(move |(row, &inv_norm)| {
                f64::from(dot_f32(row, query)) * f64::from(inv_norm) * f64::from(inv_query_norm)
            })
    }

    /// The inverse norm of a query vector (`0` for the zero query).
    pub fn inv_query_norm(query: &[f32]) -> f32 {
        let norm = norm_f32(query);
        if norm == 0.0 {
            0.0
        } else {
            1.0 / norm
        }
    }

    /// Quantize a query vector against this store's mirror. Returns `None`
    /// when the store keeps no mirror — or when the query is the zero
    /// vector: a zero dequantization scale would make every approximate
    /// score 0.0, so the pre-rank pool would be selected by store position
    /// instead of similarity; callers fall back to the exact path, which
    /// handles the all-ties case with its id tie-break.
    pub fn quantize_query(&self, query: &[f32], out: &mut Vec<i8>) -> Option<f32> {
        self.quantized.as_ref()?;
        out.clear();
        let scale = quantize_append(query, out);
        (scale != 0.0).then_some(scale)
    }

    /// Approximate cosine similarity between row `i` and a pre-quantized
    /// query. Convenience wrapper over [`Self::quantized_scorer`] (which a
    /// scoring loop should hoist out of its per-row body).
    #[inline]
    pub fn approx_cosine(&self, i: usize, q: &[i8], q_factor: f32) -> f64 {
        self.quantized_scorer()
            .expect("quantized mirror present")
            .approx_cosine(i, q, q_factor)
    }

    /// Borrow the `i8` pre-ranking kernel, resolving the mirror option and
    /// layout once so the per-row scoring body is just one integer dot
    /// product and two multiplies.
    pub fn quantized_scorer(&self) -> Option<QuantizedScorer<'_>> {
        self.quantized.as_ref().map(|mirror| QuantizedScorer {
            dim: self.dim,
            data: &mirror.data,
            scale_over_norm: &mirror.scale_over_norm,
        })
    }
}

/// The borrowed `i8` pre-ranking kernel of an [`EmbeddingStore`] mirror.
pub struct QuantizedScorer<'a> {
    dim: usize,
    data: &'a [i8],
    scale_over_norm: &'a [f32],
}

impl QuantizedScorer<'_> {
    /// Approximate cosine similarity between row `i` and a pre-quantized
    /// query. `q_factor` is the query-constant `q_scale · inv_query_norm`.
    /// Only relative order matters; the exact rerank recomputes survivors
    /// in `f32`.
    #[inline]
    pub fn approx_cosine(&self, i: usize, q: &[i8], q_factor: f32) -> f64 {
        let dot = dot_i8(&self.data[i * self.dim..(i + 1) * self.dim], q) as f32;
        f64::from(dot * self.scale_over_norm[i] * q_factor)
    }

    /// Stream the approximate cosine of *every* row in order — the
    /// full-scan form: `chunks_exact` walks the mirror with no per-row
    /// bounds arithmetic, so the loop body is the integer dot product and
    /// two multiplies. Requires `dim > 0` (callers with an empty dimension
    /// use the indexed form).
    #[inline]
    pub fn approx_cosines<'q>(
        &'q self,
        q: &'q [i8],
        q_factor: f32,
    ) -> impl Iterator<Item = f64> + 'q {
        self.data
            .chunks_exact(self.dim.max(1))
            .zip(self.scale_over_norm)
            .map(move |(row, &scale_over_norm)| {
                f64::from(dot_i8(row, q) as f32 * scale_over_norm * q_factor)
            })
    }
}

/// Symmetric max-abs scalar quantization of one vector, appended to `out`;
/// returns the de-quantization scale (`0` for the zero vector).
fn quantize_append(vector: &[f32], out: &mut Vec<i8>) -> f32 {
    let max_abs = vector.iter().fold(0.0f32, |m, v| m.max(v.abs()));
    if max_abs == 0.0 {
        out.extend(std::iter::repeat_n(0i8, vector.len()));
        return 0.0;
    }
    let scale = max_abs / 127.0;
    out.extend(
        vector
            .iter()
            .map(|v| (v / scale).round().clamp(-127.0, 127.0) as i8),
    );
    scale
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_and_norms() {
        let mut store = EmbeddingStore::new(3, false);
        store.push(&[3.0, 0.0, 4.0]);
        store.push(&[0.0, 0.0, 0.0]);
        assert_eq!(store.len(), 2);
        assert_eq!(store.row(0), &[3.0, 0.0, 4.0]);
        assert!((store.inv_norm(0) - 0.2).abs() < 1e-6);
        // Zero rows score 0 against anything (zero inverse norm).
        assert_eq!(store.cosine(1, &[1.0, 0.0, 0.0], 1.0), 0.0);
        let inv_qn = EmbeddingStore::inv_query_norm(&[3.0, 0.0, 4.0]);
        assert!((store.cosine(0, &[3.0, 0.0, 4.0], inv_qn) - 1.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic]
    fn dimension_mismatch_panics() {
        let mut store = EmbeddingStore::new(3, false);
        store.push(&[1.0, 2.0]);
    }

    #[test]
    fn quantized_mirror_tracks_rows() {
        let mut store = EmbeddingStore::new(4, true);
        store.push(&[1.0, -0.5, 0.25, 0.0]);
        store.push(&[0.0; 4]);
        assert!(store.is_quantized());
        let mut q = Vec::new();
        let scale = store
            .quantize_query(&[1.0, -0.5, 0.25, 0.0], &mut q)
            .unwrap();
        assert!(scale > 0.0);
        let q_factor = scale * EmbeddingStore::inv_query_norm(&[1.0, -0.5, 0.25, 0.0]);
        let approx = store.approx_cosine(0, &q, q_factor);
        assert!(
            (approx - 1.0).abs() < 0.02,
            "approx self-similarity: {approx}"
        );
        assert_eq!(store.approx_cosine(1, &q, q_factor), 0.0);
    }

    #[test]
    fn approx_cosine_close_to_exact() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(11);
        let dim = 48;
        let mut store = EmbeddingStore::new(dim, true);
        let rows: Vec<Vec<f32>> = (0..50)
            .map(|_| (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
            .collect();
        for row in &rows {
            store.push(row);
        }
        let query: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let inv_qn = EmbeddingStore::inv_query_norm(&query);
        let mut q = Vec::new();
        let scale = store.quantize_query(&query, &mut q).unwrap();
        for i in 0..rows.len() {
            let exact = store.cosine(i, &query, inv_qn);
            let approx = store.approx_cosine(i, &q, scale * inv_qn);
            assert!(
                (exact - approx).abs() < 0.02,
                "row {i}: exact {exact} vs approx {approx}"
            );
        }
    }

    #[test]
    fn serde_roundtrip_keeps_mirror() {
        let mut store = EmbeddingStore::new(2, true);
        store.push(&[0.5, -1.5]);
        let json = serde_json::to_string(&store).unwrap();
        let back: EmbeddingStore = serde_json::from_str(&json).unwrap();
        assert_eq!(back.len(), 1);
        assert!(back.is_quantized());
        assert_eq!(back.row(0), store.row(0));
        assert_eq!(back.inv_norm(0), store.inv_norm(0));
    }
}
