//! In-memory inverted index with BM25 and LM-Dirichlet ranking.
//!
//! This index plays the role of the Elastic Search / BM25 engine in the
//! paper: it is built over the bag-of-words content and over the metadata of
//! every discoverable element, serves keyword-search queries, acts as the
//! keyword-based labeling functions in the weak-supervision framework, and is
//! one of the baselines in the Doc→Table evaluation (Figure 6, labels
//! "Elastic-BM25", "Elastic-LMDirichlet", "Elastic BM25-Content Only",
//! "Elastic BM25-Schema Only").
//!
//! ## Layout
//!
//! Terms are interned to dense `u32` ids and postings reference documents by
//! a dense `u32` index (the external `u64` id is resolved only when a result
//! is emitted). The finalized portion of every posting list lives in **one
//! contiguous arena** (`Vec<Posting>`) addressed by per-term
//! `(offset, len)` spans — a query walks flat cache-local memory instead of
//! chasing one heap allocation per term. Each arena span additionally
//! carries **per-`BLOCK_POSTINGS`-posting block metadata**: the Pareto
//! frontier of the block's `(term_freq, doc_length)` pairs. Every
//! supported scoring function is monotone increasing in term frequency and
//! non-increasing in document length, so the frontier maximum — evaluated
//! at query time with the *current* IDF, average document length, and
//! scoring parameters — is the exact block-max impact: as tight as a
//! precomputed impact score, yet still a correct bound under incremental
//! mutation, re-weighted parameters, and stale-IDF serving.
//!
//! The document-at-a-time scan uses those bounds for Block-Max-WAND-style
//! skipping: once the top-k heap is full, whenever the sum of every
//! cursor's current block bound cannot beat the heap threshold, the scan
//! jumps all cursors past the earliest block boundary instead of scoring
//! the covered documents one by one. Pruning is *exact* — a skipped
//! document provably scores strictly below the threshold, so the returned
//! top-k (ids and scores) is bit-identical to the exhaustive scan.
//!
//! ## Incremental maintenance
//!
//! [`add`](InvertedIndex::add) appends postings to a small per-term *tail*
//! (dense doc indexes are append-only, so the arena-then-tail concatenation
//! stays sorted); [`finalize`](InvertedIndex::finalize) folds the tail into
//! the arena and recomputes block maxima. [`remove`](InvertedIndex::remove)
//! tombstones an element in place, and [`compact`](InvertedIndex::compact)
//! folds tombstones back into the dense layout, after which scores are
//! identical to a freshly built index over the surviving elements. Live
//! per-term document frequencies under tombstones are *memoized* per
//! mutation epoch (computed at most once per term between mutations)
//! instead of rescanning the posting list on every probe.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use serde::{Deserialize, Serialize};

use cmdl_text::BagOfWords;

use crate::topk::TopK;

/// BM25 free parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Bm25Params {
    /// Term-frequency saturation. Default 1.2.
    pub k1: f64,
    /// Length normalization. Default 0.75.
    pub b: f64,
}

impl Default for Bm25Params {
    fn default() -> Self {
        Self { k1: 1.2, b: 0.75 }
    }
}

/// Ranking function used by [`InvertedIndex::search`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ScoringFunction {
    /// Okapi BM25 (the Elastic Search default the paper uses).
    Bm25(Bm25Params),
    /// Language model with Dirichlet smoothing (`mu` prior).
    LmDirichlet {
        /// Dirichlet prior; Elastic's default is 2000.
        mu: f64,
    },
}

impl Default for ScoringFunction {
    fn default() -> Self {
        ScoringFunction::Bm25(Bm25Params::default())
    }
}

/// Corpus-level statistics injected into
/// [`InvertedIndex::search_filtered_with_stats`] in place of the index's own.
///
/// A sharded deployment gathers these by *integer* summation across shards
/// (live document counts, live token counts, per-term live document
/// frequencies, raw per-term corpus frequencies), so the floating-point
/// values derived from them — BM25 IDF, the average document length, the
/// LM-Dirichlet background model — are bit-identical to what a single
/// unpartitioned index would compute from the same corpus.
#[derive(Debug, Clone, Default)]
pub struct CorpusStats {
    /// Live documents across the whole corpus ([`InvertedIndex::len`]).
    pub num_docs: usize,
    /// Live tokens across the whole corpus
    /// ([`InvertedIndex::live_total_length`]).
    pub total_length: u64,
    /// Live per-term document frequency ([`InvertedIndex::doc_freq`]),
    /// for the query's terms.
    pub doc_freq: HashMap<String, usize>,
    /// Raw per-term corpus frequency ([`InvertedIndex::term_total`]), for
    /// the query's terms.
    pub term_totals: HashMap<String, u64>,
}

impl CorpusStats {
    /// Average live document length, with the same arithmetic as
    /// [`InvertedIndex::avg_doc_length`] (subtract-free here because the
    /// inputs are already live totals).
    pub fn avg_doc_length(&self) -> f64 {
        if self.num_docs == 0 {
            0.0
        } else {
            self.total_length as f64 / self.num_docs as f64
        }
    }

    /// Fold one shard's statistics for `terms` into this accumulator.
    pub fn absorb(&mut self, index: &InvertedIndex, terms: &BagOfWords) {
        self.num_docs += index.len();
        self.total_length += index.live_total_length();
        for (term, _) in terms.iter() {
            let df = index.doc_freq(term);
            if df > 0 {
                *self.doc_freq.entry(term.to_string()).or_insert(0) += df;
            }
            let cf = index.term_total(term);
            if cf > 0 {
                *self.term_totals.entry(term.to_string()).or_insert(0) += cf;
            }
        }
    }
}

#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct Posting {
    /// Dense document index (position in `doc_ids` / `doc_lengths`).
    doc: u32,
    term_freq: u32,
}

/// Postings per block-max block. 128 packs a block into two cache lines
/// (8-byte postings) while keeping the per-block score bounds tight enough
/// to skip most of a common term's list once the top-k threshold is high.
const BLOCK_POSTINGS: usize = 128;

/// One term's span into the postings arena.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
struct Span {
    /// First posting in the arena.
    offset: usize,
    /// Number of arena postings (the term's tail postings are *not*
    /// included).
    len: usize,
    /// First block in the block-metadata table.
    block_offset: usize,
}

impl Span {
    fn num_blocks(&self) -> usize {
        self.len.div_ceil(BLOCK_POSTINGS)
    }
}

/// One point of a block's `(term_freq, doc_length)` Pareto frontier.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct FrontierPoint {
    tf: u32,
    dl: u64,
}

/// Per-block metadata: the span of the block's Pareto frontier in the
/// shared frontier table. The frontier holds the block's postings that are
/// not dominated under (higher tf, lower dl); the maximum of any monotone
/// scoring function over the block is attained on it, so evaluating ≤
/// [`MAX_FRONTIER`] points yields the exact block-max impact.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
struct BlockMeta {
    frontier_offset: usize,
    frontier_len: u32,
}

/// Cap on stored frontier points per block; a longer frontier folds its
/// remainder into one conservative `(max remaining tf, min remaining dl)`
/// point (still a valid upper bound, marginally less tight).
const MAX_FRONTIER: usize = 8;

/// Append the Pareto frontier of `postings` (tf maximal, dl minimal) to
/// `out`, capped at [`MAX_FRONTIER`] points.
fn push_frontier(postings: &[Posting], doc_lengths: &[u64], out: &mut Vec<FrontierPoint>) {
    let mut pairs: Vec<(u32, u64)> = postings
        .iter()
        .map(|p| (p.term_freq, doc_lengths[p.doc as usize]))
        .collect();
    // Sort by tf descending, dl ascending; the frontier is the strictly
    // dl-decreasing prefix sweep.
    pairs.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    let start = out.len();
    let mut best_dl = u64::MAX;
    for &(tf, dl) in &pairs {
        if dl >= best_dl {
            continue;
        }
        if out.len() - start == MAX_FRONTIER {
            // Fold the remaining frontier into the last stored point:
            // `tf` is the largest remaining tf (descending order) and the
            // block-wide minimum dl dominates every remaining dl.
            let min_dl = pairs.iter().map(|&(_, dl)| dl).min().unwrap_or(dl);
            let last = out.last_mut().expect("cap > 0");
            *last = FrontierPoint {
                tf: last.tf.max(tf),
                dl: last.dl.min(min_dl),
            };
            break;
        }
        out.push(FrontierPoint { tf, dl });
        best_dl = dl;
    }
}

/// Per-term live-document-frequency memo, valid for one mutation epoch.
#[derive(Debug, Default)]
struct DfMemo {
    epoch: u64,
    df: HashMap<u32, usize>,
}

/// An inverted index over bag-of-words elements keyed by opaque `u64` ids.
#[derive(Debug, Default, Serialize, Deserialize)]
pub struct InvertedIndex {
    /// Term → dense term id.
    term_ids: HashMap<String, u32>,
    /// The contiguous posting arena: every term's finalized postings,
    /// term-major, each span sorted by dense doc index.
    arena: Vec<Posting>,
    /// Per-term span into `arena` / `blocks`.
    spans: Vec<Span>,
    /// Per-block frontier spans for the arena, term-major (see
    /// [`Span::block_offset`]).
    blocks: Vec<BlockMeta>,
    /// The shared Pareto-frontier table the blocks index into.
    frontier: Vec<FrontierPoint>,
    /// Per-term postings appended since the last arena rebuild. Dense doc
    /// indexes are append-only, so every tail doc is strictly greater than
    /// any arena doc of the same term.
    tail: Vec<Vec<Posting>>,
    /// Total corpus occurrences by term id (for LM-Dirichlet).
    term_totals: Vec<u64>,
    /// Dense doc index → external id.
    doc_ids: Vec<u64>,
    /// Token count by dense doc index.
    doc_lengths: Vec<u64>,
    /// Sum of all document lengths.
    total_length: u64,
    /// Tombstone flags by dense doc index (`true` = removed). May be shorter
    /// than `doc_ids` (older entries are implicitly live).
    tombstones: Vec<bool>,
    /// Number of tombstoned documents.
    dead_docs: usize,
    /// Sum of tombstoned document lengths.
    dead_length: u64,
    /// External id → dense doc index for removal. Rebuilt lazily after
    /// deserialization.
    #[serde(skip)]
    id_to_dense: HashMap<u64, u32>,
    /// Precomputed BM25 IDF by term id (valid when `idf_docs == doc_ids.len()`).
    #[serde(skip)]
    idf_cache: Vec<f64>,
    /// Document count the IDF cache was computed for.
    #[serde(skip)]
    idf_docs: usize,
    /// Mutations (adds/removes) since the last IDF refresh.
    #[serde(skip)]
    stale_ops: usize,
    /// Automatic IDF refresh policy: refresh once `stale_ops` exceeds this
    /// fraction of the live corpus. `None` (the default) never refreshes
    /// automatically, preserving the classic add-then-`finalize` behaviour.
    #[serde(skip)]
    idf_refresh_ratio: Option<f64>,
    /// Monotone mutation counter; bumping it invalidates `live_df`.
    #[serde(skip)]
    mutation_epoch: u64,
    /// Live-doc-frequency memo (per term, per mutation epoch): replaces the
    /// per-probe "rescan the posting list and count survivors" under
    /// tombstones. Never shared between clones (see the manual [`Clone`]).
    #[serde(skip)]
    live_df: Arc<Mutex<DfMemo>>,
}

impl Clone for InvertedIndex {
    fn clone(&self) -> Self {
        Self {
            term_ids: self.term_ids.clone(),
            arena: self.arena.clone(),
            spans: self.spans.clone(),
            blocks: self.blocks.clone(),
            frontier: self.frontier.clone(),
            tail: self.tail.clone(),
            term_totals: self.term_totals.clone(),
            doc_ids: self.doc_ids.clone(),
            doc_lengths: self.doc_lengths.clone(),
            total_length: self.total_length,
            tombstones: self.tombstones.clone(),
            dead_docs: self.dead_docs,
            dead_length: self.dead_length,
            id_to_dense: self.id_to_dense.clone(),
            idf_cache: self.idf_cache.clone(),
            idf_docs: self.idf_docs,
            stale_ops: self.stale_ops,
            idf_refresh_ratio: self.idf_refresh_ratio,
            mutation_epoch: self.mutation_epoch,
            // A fresh (empty) memo: the clone and the original may mutate
            // independently from here on, and their epoch counters would
            // collide if they kept sharing one memo.
            live_df: Arc::new(Mutex::new(DfMemo::default())),
        }
    }
}

impl InvertedIndex {
    /// Create an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live (non-tombstoned) elements.
    pub fn len(&self) -> usize {
        self.doc_ids.len() - self.dead_docs
    }

    /// Is the index empty (of live elements)?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of tombstoned elements awaiting [`compact`](Self::compact).
    pub fn num_tombstoned(&self) -> usize {
        self.dead_docs
    }

    /// Number of distinct terms.
    pub fn vocabulary_size(&self) -> usize {
        self.spans.len()
    }

    /// Average live element length in tokens.
    pub fn avg_doc_length(&self) -> f64 {
        let live = self.len();
        if live == 0 {
            0.0
        } else {
            (self.total_length - self.dead_length) as f64 / live as f64
        }
    }

    /// Total live token count (the numerator of
    /// [`avg_doc_length`](Self::avg_doc_length)). A sharded deployment sums
    /// this across shards to reconstruct the global average document length
    /// with the same integer-sum-then-divide arithmetic a single index uses.
    pub fn live_total_length(&self) -> u64 {
        self.total_length - self.dead_length
    }

    /// Raw corpus frequency of a term (total occurrences, tombstoned
    /// occurrences *included* until the next [`compact`](Self::compact) —
    /// exactly the value the LM-Dirichlet background model reads). Sharded
    /// deployments sum this across shards for [`CorpusStats`].
    pub fn term_total(&self, term: &str) -> u64 {
        self.term_ids
            .get(term)
            .map(|&tid| self.term_totals[tid as usize])
            .unwrap_or(0)
    }

    /// All postings of a term: the arena span followed by the delta tail
    /// (sorted by dense doc index across the concatenation).
    #[inline]
    fn term_postings(&self, tid: u32) -> (&[Posting], &[Posting]) {
        let span = &self.spans[tid as usize];
        (
            &self.arena[span.offset..span.offset + span.len],
            &self.tail[tid as usize],
        )
    }

    /// Total posting count of a term (arena + tail, tombstoned included).
    #[inline]
    fn term_len(&self, tid: u32) -> usize {
        self.spans[tid as usize].len + self.tail[tid as usize].len()
    }

    /// Document frequency of a term among live elements.
    pub fn doc_freq(&self, term: &str) -> usize {
        self.term_ids
            .get(term)
            .map(|&tid| self.live_doc_freq(tid))
            .unwrap_or(0)
    }

    /// Live document frequency of a term. With no tombstones this is the
    /// posting count; under tombstones the count is memoized per mutation
    /// epoch, so repeated probes of the same term between mutations cost
    /// one hash lookup instead of a posting-list rescan.
    fn live_doc_freq(&self, tid: u32) -> usize {
        if self.dead_docs == 0 {
            return self.term_len(tid);
        }
        {
            let mut memo = self.live_df.lock().unwrap_or_else(|p| p.into_inner());
            if memo.epoch != self.mutation_epoch {
                memo.epoch = self.mutation_epoch;
                memo.df.clear();
            }
            if let Some(&df) = memo.df.get(&tid) {
                return df;
            }
        }
        // Count outside the lock — a long posting-list rescan must not
        // convoy every other reader thread behind the memo Mutex. Two
        // threads may race to count the same term; both compute the same
        // value, so the double insert is benign.
        let (span, tail) = self.term_postings(tid);
        let df = span
            .iter()
            .chain(tail)
            .filter(|p| !self.is_dead(p.doc))
            .count();
        let mut memo = self.live_df.lock().unwrap_or_else(|p| p.into_inner());
        if memo.epoch == self.mutation_epoch {
            memo.df.insert(tid, df);
        }
        df
    }

    /// Is the dense doc index tombstoned?
    #[inline]
    fn is_dead(&self, dense: u32) -> bool {
        self.tombstones
            .get(dense as usize)
            .copied()
            .unwrap_or(false)
    }

    /// Index an element's bag of words under `id`.
    ///
    /// Indexing the same id twice adds the new postings without removing the
    /// old ones; callers should use fresh ids.
    pub fn add(&mut self, id: u64, bow: &BagOfWords) {
        // Rebuild the (serde-skipped) id map before the first mutation after
        // deserialization — inserting into a stale-empty map would leave
        // every pre-existing document unremovable.
        self.ensure_id_map();
        let dense = self.doc_ids.len() as u32;
        self.doc_ids.push(id);
        self.id_to_dense.insert(id, dense);
        let mut length = 0u64;
        for (term, count) in bow.iter() {
            let tid = match self.term_ids.get(term) {
                Some(&tid) => tid,
                None => {
                    let tid = self.spans.len() as u32;
                    self.term_ids.insert(term.to_string(), tid);
                    self.spans.push(Span::default());
                    self.tail.push(Vec::new());
                    self.term_totals.push(0);
                    tid
                }
            };
            self.tail[tid as usize].push(Posting {
                doc: dense,
                term_freq: count,
            });
            self.term_totals[tid as usize] += u64::from(count);
            length += u64::from(count);
        }
        self.total_length += length;
        self.doc_lengths.push(length);
        self.note_mutation();
    }

    /// Tombstone the element indexed under `id`. Its postings stay in place
    /// but every scan skips them; [`compact`](Self::compact) reclaims the
    /// space. Returns `false` if the id is unknown (or already removed).
    pub fn remove(&mut self, id: u64) -> bool {
        self.ensure_id_map();
        let Some(dense) = self.id_to_dense.remove(&id) else {
            return false;
        };
        let dense = dense as usize;
        if self.tombstones.len() <= dense {
            self.tombstones.resize(self.doc_ids.len(), false);
        }
        if self.tombstones[dense] {
            return false;
        }
        self.tombstones[dense] = true;
        self.dead_docs += 1;
        self.dead_length += self.doc_lengths[dense];
        self.note_mutation();
        true
    }

    fn ensure_id_map(&mut self) {
        if self.id_to_dense.is_empty() && !self.doc_ids.is_empty() {
            self.rebuild_id_map();
        }
    }

    fn rebuild_id_map(&mut self) {
        self.id_to_dense = self
            .doc_ids
            .iter()
            .enumerate()
            .filter(|&(dense, _)| !self.is_dead(dense as u32))
            .map(|(dense, &id)| (id, dense as u32))
            .collect();
    }

    /// Record a mutation (invalidating the live-df memo) and refresh the
    /// IDF table if the configured staleness bound has been exceeded.
    fn note_mutation(&mut self) {
        self.stale_ops += 1;
        self.mutation_epoch += 1;
        if let Some(ratio) = self.idf_refresh_ratio {
            if self.stale_ops as f64 > ratio * self.len().max(1) as f64 {
                self.finalize();
            }
        }
    }

    /// Opt into automatic lazy IDF refresh: after a mutation, the IDF table
    /// is re-finalized once the number of mutations since the last refresh
    /// exceeds `ratio × live elements` (a ratio of `0.0` refreshes on every
    /// mutation; `None` — the default — never refreshes automatically).
    pub fn set_idf_refresh_ratio(&mut self, ratio: Option<f64>) {
        self.idf_refresh_ratio = ratio;
    }

    /// Mutations since the last IDF refresh (the staleness the scorer is
    /// currently operating under).
    pub fn idf_staleness(&self) -> usize {
        self.stale_ops
    }

    /// Rebuild the contiguous arena from the current arena + tails,
    /// optionally remapping dense doc indexes (`u32::MAX` drops a posting),
    /// and recompute the block maxima. `doc_lengths` must already reflect
    /// the remapped layout when a remap is given.
    fn rebuild_arena(&mut self, remap: Option<&[u32]>) {
        let old_arena = std::mem::take(&mut self.arena);
        let old_tail = std::mem::take(&mut self.tail);
        let total: usize = self.spans.iter().map(|s| s.len).sum::<usize>()
            + old_tail.iter().map(Vec::len).sum::<usize>();
        let mut arena: Vec<Posting> = Vec::with_capacity(total);
        let mut blocks: Vec<BlockMeta> = Vec::new();
        let mut frontier: Vec<FrontierPoint> = Vec::new();
        for (tid, span) in self.spans.iter_mut().enumerate() {
            let offset = arena.len();
            let old_span = &old_arena[span.offset..span.offset + span.len];
            for p in old_span.iter().chain(&old_tail[tid]) {
                let doc = match remap {
                    Some(remap) => {
                        let to = remap[p.doc as usize];
                        if to == u32::MAX {
                            continue;
                        }
                        to
                    }
                    None => p.doc,
                };
                arena.push(Posting {
                    doc,
                    term_freq: p.term_freq,
                });
            }
            let len = arena.len() - offset;
            let block_offset = blocks.len();
            for chunk in arena[offset..offset + len].chunks(BLOCK_POSTINGS) {
                let frontier_offset = frontier.len();
                push_frontier(chunk, &self.doc_lengths, &mut frontier);
                blocks.push(BlockMeta {
                    frontier_offset,
                    frontier_len: (frontier.len() - frontier_offset) as u32,
                });
            }
            if remap.is_some() {
                self.term_totals[tid] = arena[offset..offset + len]
                    .iter()
                    .map(|p| u64::from(p.term_freq))
                    .sum();
            }
            *span = Span {
                offset,
                len,
                block_offset,
            };
        }
        self.arena = arena;
        self.blocks = blocks;
        self.frontier = frontier;
        self.tail = vec![Vec::new(); self.spans.len()];
    }

    /// Fold the delta tails into the arena (recomputing block maxima) and
    /// precompute the per-term BM25 IDF table. Queries work without calling
    /// this (they fall back to computing IDF per query term), but bulk
    /// loaders should call it once after their final [`add`](Self::add).
    pub fn finalize(&mut self) {
        if self.tail.iter().any(|t| !t.is_empty()) {
            self.rebuild_arena(None);
        }
        let n = self.len() as f64;
        self.idf_cache = (0..self.spans.len() as u32)
            .map(|tid| {
                let df = if self.dead_docs == 0 {
                    self.spans[tid as usize].len
                } else {
                    let (span, tail) = self.term_postings(tid);
                    span.iter()
                        .chain(tail)
                        .filter(|p| !self.is_dead(p.doc))
                        .count()
                };
                bm25_idf(n, df as f64)
            })
            .collect();
        self.idf_docs = self.doc_ids.len();
        self.stale_ops = 0;
    }

    /// Is the precomputed IDF table in sync with the index contents?
    pub fn is_finalized(&self) -> bool {
        self.idf_docs == self.doc_ids.len()
            && self.idf_cache.len() == self.spans.len()
            && self.stale_ops == 0
    }

    /// Fold tombstones back into the dense layout: drop dead postings,
    /// remap dense indices (preserving the surviving order), recompute
    /// corpus statistics, and re-finalize. After `compact`, scores are
    /// identical to a freshly built index over the surviving elements.
    pub fn compact(&mut self) {
        if self.dead_docs > 0 {
            let mut remap: Vec<u32> = vec![u32::MAX; self.doc_ids.len()];
            let mut doc_ids = Vec::with_capacity(self.len());
            let mut doc_lengths = Vec::with_capacity(self.len());
            for (dense, slot) in remap.iter_mut().enumerate() {
                if !self.tombstones.get(dense).copied().unwrap_or(false) {
                    *slot = doc_ids.len() as u32;
                    doc_ids.push(self.doc_ids[dense]);
                    doc_lengths.push(self.doc_lengths[dense]);
                }
            }
            self.doc_ids = doc_ids;
            self.doc_lengths = doc_lengths;
            self.rebuild_arena(Some(&remap));
            self.total_length = self.doc_lengths.iter().sum();
            self.tombstones.clear();
            self.dead_docs = 0;
            self.dead_length = 0;
            self.mutation_epoch += 1;
            self.rebuild_id_map();
        }
        self.finalize();
    }

    /// Search with the default BM25 scoring.
    pub fn search(&self, query: &BagOfWords, top_k: usize) -> Vec<(u64, f64)> {
        self.search_with(query, top_k, ScoringFunction::default())
    }

    /// Search with an explicit scoring function. Returns `(id, score)` sorted
    /// by score descending.
    pub fn search_with(
        &self,
        query: &BagOfWords,
        top_k: usize,
        scoring: ScoringFunction,
    ) -> Vec<(u64, f64)> {
        self.search_filtered(query, top_k, scoring, |_| true)
    }

    /// Search restricted to documents accepted by `filter` (called with the
    /// external document id). The filter is applied *while* streaming
    /// candidates into the top-k heap, so the result contains up to `top_k`
    /// accepted documents no matter how selective the filter is — callers
    /// never need to over-fetch.
    pub fn search_filtered(
        &self,
        query: &BagOfWords,
        top_k: usize,
        scoring: ScoringFunction,
        filter: impl Fn(u64) -> bool,
    ) -> Vec<(u64, f64)> {
        if self.is_empty() || top_k == 0 {
            return Vec::new();
        }
        let cursors = self.cursors(query, scoring);
        let avgdl = self.avg_doc_length().max(1e-9);
        if self.doc_ids.len() <= TAAT_MAX_DOCS {
            self.scan_taat(cursors, top_k, scoring, filter, avgdl)
        } else {
            self.scan_daat_pruned(cursors, top_k, scoring, filter, avgdl)
        }
    }

    /// [`search_filtered`](Self::search_filtered) scoring against externally
    /// supplied corpus statistics instead of this index's own.
    ///
    /// This is the scatter half of sharded keyword search: each shard holds
    /// only its partition of the corpus, so its local document counts,
    /// document frequencies, and average document length would skew BM25 IDF
    /// and length normalization. The router sums the integer statistics
    /// across shards into one [`CorpusStats`] and every shard scores its own
    /// postings with the *global* values — per-document scores then come out
    /// bit-identical to a single unpartitioned index (term weights and the
    /// average document length are derived here with the same arithmetic the
    /// local path uses). Block-max pruning stays exact: block bounds are
    /// evaluated with the injected term weights.
    pub fn search_filtered_with_stats(
        &self,
        query: &BagOfWords,
        top_k: usize,
        scoring: ScoringFunction,
        filter: impl Fn(u64) -> bool,
        stats: &CorpusStats,
    ) -> Vec<(u64, f64)> {
        if self.is_empty() || top_k == 0 {
            return Vec::new();
        }
        let cursors = self.cursors_with_stats(query, scoring, stats);
        let avgdl = stats.avg_doc_length().max(1e-9);
        if self.doc_ids.len() <= TAAT_MAX_DOCS {
            self.scan_taat(cursors, top_k, scoring, filter, avgdl)
        } else {
            self.scan_daat_pruned(cursors, top_k, scoring, filter, avgdl)
        }
    }

    /// Force the block-max-pruned document-at-a-time scan regardless of
    /// corpus size (production queries via
    /// [`search_with`](Self::search_with) use the TAAT strategy below
    /// `TAAT_MAX_DOCS` documents). A parity-testing and benchmarking
    /// surface: must return exactly what
    /// [`search_unpruned`](Self::search_unpruned) returns.
    pub fn search_pruned(
        &self,
        query: &BagOfWords,
        top_k: usize,
        scoring: ScoringFunction,
    ) -> Vec<(u64, f64)> {
        if self.is_empty() || top_k == 0 {
            return Vec::new();
        }
        let cursors = self.cursors(query, scoring);
        let avgdl = self.avg_doc_length().max(1e-9);
        self.scan_daat_pruned(cursors, top_k, scoring, |_| true, avgdl)
    }

    /// The pre-block-max document-at-a-time scan: identical ranking, no
    /// pruning. Kept as the in-process baseline of the hot-path benchmark
    /// and as the reference the block-max parity tests compare against.
    pub fn search_unpruned(
        &self,
        query: &BagOfWords,
        top_k: usize,
        scoring: ScoringFunction,
    ) -> Vec<(u64, f64)> {
        if self.is_empty() || top_k == 0 {
            return Vec::new();
        }
        let cursors = self.cursors(query, scoring);
        let avgdl = self.avg_doc_length().max(1e-9);
        self.scan_daat(cursors, top_k, scoring, |_| true, avgdl)
    }

    fn cursors(&self, query: &BagOfWords, scoring: ScoringFunction) -> Vec<Cursor<'_>> {
        match scoring {
            ScoringFunction::Bm25(params) => self.bm25_cursors(query, params),
            ScoringFunction::LmDirichlet { mu } => self.lm_cursors(query, mu),
        }
    }

    /// Build one scoring cursor per query term that the index knows.
    ///
    /// IDF comes from the precomputed table when it is fresh, or — in the
    /// incremental-ingestion mode (an automatic refresh ratio is set) — from
    /// the *stale* table for terms it covers: the refresh policy bounds how
    /// far the cached values can drift, and terms added since the last
    /// refresh fall back to an exact on-the-fly computation.
    fn bm25_cursors(&self, query: &BagOfWords, _params: Bm25Params) -> Vec<Cursor<'_>> {
        let n = self.len() as f64;
        let finalized = self.is_finalized();
        let use_stale = self.idf_refresh_ratio.is_some();
        query
            .iter()
            .filter_map(|(term, _qf)| {
                let &tid = self.term_ids.get(term)?;
                if self.term_len(tid) == 0 {
                    return None;
                }
                let idf = if finalized || (use_stale && (tid as usize) < self.idf_cache.len()) {
                    self.idf_cache[tid as usize]
                } else {
                    let df = self.live_doc_freq(tid);
                    if df == 0 {
                        return None;
                    }
                    bm25_idf(n, df as f64)
                };
                let (arena, tail) = self.term_postings(tid);
                Some(Cursor {
                    arena,
                    tail,
                    blocks: self.term_blocks(tid),
                    frontier: &self.frontier,
                    pos: 0,
                    weight: idf,
                    background: 0.0,
                })
            })
            .collect()
    }

    /// Build scoring cursors whose term weights come from an injected
    /// [`CorpusStats`] instead of this index's own statistics. BM25 IDF is
    /// recomputed from the global `(num_docs, doc_freq)` pair with the same
    /// formula [`bm25_cursors`](Self::bm25_cursors) uses on the exact path;
    /// the LM-Dirichlet background model reads the global corpus frequency
    /// and live token count.
    fn cursors_with_stats(
        &self,
        query: &BagOfWords,
        scoring: ScoringFunction,
        stats: &CorpusStats,
    ) -> Vec<Cursor<'_>> {
        let n = stats.num_docs as f64;
        let corpus_len = stats.total_length.max(1) as f64;
        query
            .iter()
            .filter_map(|(term, qf)| {
                let &tid = self.term_ids.get(term)?;
                if self.term_len(tid) == 0 {
                    return None;
                }
                let (weight, background) = match scoring {
                    ScoringFunction::Bm25(_) => {
                        let df = stats.doc_freq.get(term).copied().unwrap_or(0);
                        if df == 0 {
                            return None;
                        }
                        (bm25_idf(n, df as f64), 0.0)
                    }
                    ScoringFunction::LmDirichlet { mu } => {
                        let cf = stats.term_totals.get(term).copied().unwrap_or(0) as f64;
                        if cf == 0.0 {
                            return None;
                        }
                        (f64::from(qf), mu * (cf / corpus_len))
                    }
                };
                let (arena, tail) = self.term_postings(tid);
                Some(Cursor {
                    arena,
                    tail,
                    blocks: self.term_blocks(tid),
                    frontier: &self.frontier,
                    pos: 0,
                    weight,
                    background,
                })
            })
            .collect()
    }

    fn lm_cursors(&self, query: &BagOfWords, mu: f64) -> Vec<Cursor<'_>> {
        // `term_totals` still includes tombstoned occurrences until the next
        // `compact()`; the background model is therefore as stale as the
        // tombstone count, which the compaction policy bounds.
        let corpus_len = (self.total_length - self.dead_length).max(1) as f64;
        query
            .iter()
            .filter_map(|(term, qf)| {
                let &tid = self.term_ids.get(term)?;
                let cf = self.term_totals[tid as usize] as f64;
                if self.term_len(tid) == 0 || cf == 0.0 {
                    return None;
                }
                let (arena, tail) = self.term_postings(tid);
                Some(Cursor {
                    arena,
                    tail,
                    blocks: self.term_blocks(tid),
                    frontier: &self.frontier,
                    pos: 0,
                    weight: f64::from(qf),
                    background: mu * (cf / corpus_len),
                })
            })
            .collect()
    }

    /// The block-maxima of a term's arena span.
    #[inline]
    fn term_blocks(&self, tid: u32) -> &[BlockMeta] {
        let span = &self.spans[tid as usize];
        &self.blocks[span.block_offset..span.block_offset + span.num_blocks()]
    }

    /// Reference implementation of the pre-optimization query path: score
    /// every touched document into a `HashMap`, then sort. Kept for the
    /// estimator-parity tests and as the in-process baseline of the
    /// throughput benchmarks; production queries use
    /// [`search_with`](Self::search_with).
    pub fn search_exhaustive(
        &self,
        query: &BagOfWords,
        top_k: usize,
        scoring: ScoringFunction,
    ) -> Vec<(u64, f64)> {
        if self.is_empty() {
            return Vec::new();
        }
        let avgdl = self.avg_doc_length().max(1e-9);
        let cursors = self.cursors(query, scoring);
        let mut scores: HashMap<u64, f64> = HashMap::new();
        for cursor in &cursors {
            for posting in cursor.arena.iter().chain(cursor.tail) {
                if self.is_dead(posting.doc) {
                    continue;
                }
                let doc = posting.doc as usize;
                let dl = self.doc_lengths[doc] as f64;
                let tf = f64::from(posting.term_freq);
                let add = contribution(scoring, cursor.weight, cursor.background, tf, dl, avgdl);
                *scores.entry(self.doc_ids[doc]).or_insert(0.0) += add;
            }
        }
        let mut tk = TopK::new(top_k);
        for (id, score) in scores {
            if score > 0.0 {
                tk.push(id, score);
            }
        }
        tk.into_sorted_vec()
    }

    /// Term-at-a-time scan: accumulate every term's contributions into a
    /// dense per-document score array, then stream the touched documents
    /// into the top-k heap. One branch-free addition per posting — the
    /// fastest strategy while the score array fits comfortably in memory
    /// (up to `TAAT_MAX_DOCS` documents); larger corpora use the
    /// document-at-a-time merge instead. The score array and touched list
    /// are reused from a thread-local scratch (zeroed back after each
    /// query), so a serving thread — including every rayon worker inside
    /// `execute_many` — allocates nothing here in steady state.
    fn scan_taat(
        &self,
        cursors: Vec<Cursor<'_>>,
        top_k: usize,
        scoring: ScoringFunction,
        filter: impl Fn(u64) -> bool,
        avgdl: f64,
    ) -> Vec<(u64, f64)> {
        // The user-supplied filter runs while the scratch is borrowed, so a
        // filter that itself searches (reentrancy) must not double-borrow:
        // the inner call simply falls back to a fresh local scratch.
        TAAT_SCRATCH.with(|cell| match cell.try_borrow_mut() {
            Ok(mut scratch) => {
                let (scores, touched) = &mut *scratch;
                self.scan_taat_with(scores, touched, &cursors, top_k, scoring, &filter, avgdl)
            }
            Err(_) => {
                let (mut scores, mut touched) = (Vec::new(), Vec::new());
                self.scan_taat_with(
                    &mut scores,
                    &mut touched,
                    &cursors,
                    top_k,
                    scoring,
                    &filter,
                    avgdl,
                )
            }
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn scan_taat_with(
        &self,
        scores: &mut Vec<f64>,
        touched: &mut Vec<u32>,
        cursors: &[Cursor<'_>],
        top_k: usize,
        scoring: ScoringFunction,
        filter: &impl Fn(u64) -> bool,
        avgdl: f64,
    ) -> Vec<(u64, f64)> {
        if scores.len() < self.doc_ids.len() {
            scores.resize(self.doc_ids.len(), 0.0);
        }
        touched.clear();
        // Drop-guard over the scratch: the all-zeros invariant is restored
        // on every exit path — including a panicking filter closure, which
        // would otherwise leave stale scores behind for the next query on
        // this thread (rayon workers survive propagated panics).
        struct Scratch<'a> {
            scores: &'a mut Vec<f64>,
            touched: &'a mut Vec<u32>,
        }
        impl Drop for Scratch<'_> {
            fn drop(&mut self) {
                for &doc in self.touched.iter() {
                    self.scores[doc as usize] = 0.0;
                }
                self.touched.clear();
            }
        }
        let scratch = Scratch { scores, touched };
        for cursor in cursors {
            for posting in cursor.arena.iter().chain(cursor.tail) {
                let doc = posting.doc as usize;
                let dl = self.doc_lengths[doc] as f64;
                let tf = f64::from(posting.term_freq);
                let add = contribution(scoring, cursor.weight, cursor.background, tf, dl, avgdl);
                // Both scoring functions only produce positive
                // contributions, so a zero score means "untouched".
                if scratch.scores[doc] == 0.0 {
                    scratch.touched.push(posting.doc);
                }
                scratch.scores[doc] += add;
            }
        }
        let mut tk = TopK::new(top_k);
        for &doc in scratch.touched.iter() {
            if self.is_dead(doc) {
                continue;
            }
            let score = scratch.scores[doc as usize];
            if score > 0.0 && tk.would_accept(score) {
                let id = self.doc_ids[doc as usize];
                if filter(id) {
                    tk.push(id, score);
                }
            }
        }
        tk.into_sorted_vec()
    }

    /// Document-at-a-time scan: merge the posting cursors in dense-doc
    /// order, score each touched document once, and keep the best `top_k`.
    /// No pruning — this is the reference the block-max scan is
    /// parity-tested (and benchmarked) against.
    fn scan_daat(
        &self,
        mut cursors: Vec<Cursor<'_>>,
        top_k: usize,
        scoring: ScoringFunction,
        filter: impl Fn(u64) -> bool,
        avgdl: f64,
    ) -> Vec<(u64, f64)> {
        let mut tk = TopK::new(top_k);
        // Min-heap of (dense doc, cursor index) — postings are sorted by
        // dense doc, so repeatedly draining the minimum visits each touched
        // document exactly once, in order.
        let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<(u32, usize)>> = cursors
            .iter()
            .enumerate()
            .filter(|(_, c)| c.pos < c.len())
            .map(|(ci, c)| std::cmp::Reverse((c.doc_at(c.pos), ci)))
            .collect();
        while let Some(&std::cmp::Reverse((doc, _))) = heap.peek() {
            let dl = self.doc_lengths[doc as usize] as f64;
            let mut score = 0.0;
            while let Some(&std::cmp::Reverse((d, ci))) = heap.peek() {
                if d != doc {
                    break;
                }
                heap.pop();
                let cursor = &mut cursors[ci];
                let tf = f64::from(cursor.posting_at(cursor.pos).term_freq);
                score += contribution(scoring, cursor.weight, cursor.background, tf, dl, avgdl);
                cursor.pos += 1;
                if cursor.pos < cursor.len() {
                    heap.push(std::cmp::Reverse((cursor.doc_at(cursor.pos), ci)));
                }
            }
            if score > 0.0 && !self.is_dead(doc) {
                let id = self.doc_ids[doc as usize];
                if tk.would_accept(score) && filter(id) {
                    tk.push(id, score);
                }
            }
        }
        tk.into_sorted_vec()
    }

    /// The block-max-pruned document-at-a-time scan: identical output to
    /// [`scan_daat`](Self::scan_daat), but once the top-k heap is full,
    /// whenever the sum of every cursor's *current-block* upper bound (the
    /// frontier maximum, cached per cursor and refreshed only on block
    /// transitions) cannot reach the heap threshold, no document covered by
    /// all current blocks can be admitted — every cursor jumps past the
    /// earliest current-block boundary by binary search instead of scoring
    /// the covered documents one at a time. Pruning is exact: a skipped
    /// document provably scores strictly below the threshold, which
    /// [`TopK::would_accept`] rejects anyway.
    fn scan_daat_pruned(
        &self,
        mut cursors: Vec<Cursor<'_>>,
        top_k: usize,
        scoring: ScoringFunction,
        filter: impl Fn(u64) -> bool,
        avgdl: f64,
    ) -> Vec<(u64, f64)> {
        if cursors.len() == 1 {
            let cursor = cursors.pop().expect("one cursor");
            return self.scan_single_pruned(cursor, top_k, scoring, filter, avgdl);
        }
        let mut tk = TopK::new(top_k);
        let mut states: Vec<BoundState> = cursors
            .iter()
            .map(|c| {
                let mut state = BoundState::new(c, &self.doc_lengths);
                state.refresh(c, scoring, avgdl);
                state
            })
            .collect();
        // Term-level upper bounds (max block bound over the whole run)
        // for the WAND pivot — computed lazily on the first pivot check,
        // so queries whose heap never fills (huge top_k, tiny result sets)
        // never pay the full frontier walk.
        let mut term_bounds: Option<Vec<f64>> = None;
        // Maintained incrementally as cursors cross block boundaries; the
        // exact sum is recomputed before any skip actually fires, so
        // accumulated float drift can only ever *delay* a skip.
        let mut bound_sum: f64 = states.iter().map(|s| s.bound).sum();
        let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<(u32, usize)>> = cursors
            .iter()
            .enumerate()
            .filter(|(_, c)| c.pos < c.len())
            .map(|(ci, c)| std::cmp::Reverse((c.doc_at(c.pos), ci)))
            .collect();
        // The WAND pivot check runs every WAND_PERIOD iterations: frequent
        // enough that a sparse high-impact term drags the scan straight
        // from one of its postings to the next (the dense partners are
        // *sorted past* the gap), rare enough that dense-only queries pay
        // ~1/WAND_PERIOD of a sort per document.
        let mut wand_countdown = 1usize;
        let mut order: Vec<(u32, usize)> = Vec::with_capacity(cursors.len());
        while let Some(&std::cmp::Reverse((doc, _))) = heap.peek() {
            if let Some(threshold) = tk.threshold() {
                wand_countdown -= 1;
                if wand_countdown == 0 {
                    wand_countdown = WAND_PERIOD;
                    let term_bounds = term_bounds.get_or_insert_with(|| {
                        cursors
                            .iter()
                            .zip(&states)
                            .map(|(c, state)| state.term_bound(c, scoring, avgdl))
                            .collect()
                    });
                    // Sort the live cursors by current doc and find the
                    // pivot: the first prefix whose summed *term* bounds
                    // can reach the threshold. Docs before the pivot's
                    // current doc are reachable only by cursors whose
                    // total possible contribution falls short — skip them.
                    order.clear();
                    order.extend(
                        cursors
                            .iter()
                            .enumerate()
                            .filter(|(_, c)| c.pos < c.len())
                            .map(|(ci, c)| (c.doc_at(c.pos), ci)),
                    );
                    order.sort_unstable();
                    let mut acc = 0.0;
                    let mut pivot_doc = None;
                    for &(cursor_doc, ci) in &order {
                        acc += term_bounds[ci];
                        if acc * (1.0 + BOUND_SLACK) >= threshold {
                            pivot_doc = Some(cursor_doc);
                            break;
                        }
                    }
                    let Some(pivot_doc) = pivot_doc else {
                        // Even all terms together cannot reach the
                        // threshold any more: nothing left to admit.
                        break;
                    };
                    if pivot_doc > doc {
                        heap.clear();
                        for (ci, cursor) in cursors.iter_mut().enumerate() {
                            if cursor.pos < cursor.len() && cursor.doc_at(cursor.pos) < pivot_doc {
                                cursor.seek_past(pivot_doc - 1);
                                states[ci].refresh(cursor, scoring, avgdl);
                            }
                            if cursor.pos < cursor.len() {
                                heap.push(std::cmp::Reverse((cursor.doc_at(cursor.pos), ci)));
                            }
                        }
                        bound_sum = states.iter().map(|s| s.bound).sum();
                        continue;
                    }
                }
                if bound_sum * (1.0 + BOUND_SLACK) < threshold {
                    let exact: f64 = states.iter().map(|s| s.bound).sum();
                    if exact * (1.0 + BOUND_SLACK) < threshold {
                        // Skip every document up to the earliest current
                        // block boundary and re-seed the merge heap.
                        let earliest = cursors
                            .iter()
                            .filter(|c| c.pos < c.len())
                            .map(Cursor::block_end_doc)
                            .min()
                            .expect("heap non-empty implies a live cursor");
                        heap.clear();
                        for (ci, cursor) in cursors.iter_mut().enumerate() {
                            cursor.seek_past(earliest);
                            states[ci].refresh(cursor, scoring, avgdl);
                            if cursor.pos < cursor.len() {
                                heap.push(std::cmp::Reverse((cursor.doc_at(cursor.pos), ci)));
                            }
                        }
                        bound_sum = states.iter().map(|s| s.bound).sum();
                        continue;
                    }
                    bound_sum = exact;
                }
            }
            let dl = self.doc_lengths[doc as usize] as f64;
            let mut score = 0.0;
            while let Some(&std::cmp::Reverse((d, ci))) = heap.peek() {
                if d != doc {
                    break;
                }
                heap.pop();
                let cursor = &mut cursors[ci];
                let tf = f64::from(cursor.posting_at(cursor.pos).term_freq);
                score += contribution(scoring, cursor.weight, cursor.background, tf, dl, avgdl);
                cursor.pos += 1;
                let old = states[ci].bound;
                if states[ci].refresh(cursor, scoring, avgdl) {
                    bound_sum += states[ci].bound - old;
                }
                if cursor.pos < cursor.len() {
                    heap.push(std::cmp::Reverse((cursor.doc_at(cursor.pos), ci)));
                }
            }
            if score > 0.0 && !self.is_dead(doc) {
                let id = self.doc_ids[doc as usize];
                if tk.would_accept(score) && filter(id) {
                    tk.push(id, score);
                }
            }
        }
        tk.into_sorted_vec()
    }

    /// Single-cursor specialization of the pruned scan (the common
    /// single-term query): no merge heap at all — walk the posting run,
    /// and once the top-k heap is full skip whole blocks whose bound
    /// cannot beat the threshold.
    fn scan_single_pruned(
        &self,
        mut cursor: Cursor<'_>,
        top_k: usize,
        scoring: ScoringFunction,
        filter: impl Fn(u64) -> bool,
        avgdl: f64,
    ) -> Vec<(u64, f64)> {
        let mut tk = TopK::new(top_k);
        let mut state = BoundState::new(&cursor, &self.doc_lengths);
        state.refresh(&cursor, scoring, avgdl);
        while cursor.pos < cursor.len() {
            if let Some(threshold) = tk.threshold() {
                if state.bound * (1.0 + BOUND_SLACK) < threshold {
                    cursor.seek_past(cursor.block_end_doc());
                    state.refresh(&cursor, scoring, avgdl);
                    continue;
                }
            }
            let posting = *cursor.posting_at(cursor.pos);
            cursor.pos += 1;
            state.refresh(&cursor, scoring, avgdl);
            let dl = self.doc_lengths[posting.doc as usize] as f64;
            let score = contribution(
                scoring,
                cursor.weight,
                cursor.background,
                f64::from(posting.term_freq),
                dl,
                avgdl,
            );
            if score > 0.0 && !self.is_dead(posting.doc) {
                let id = self.doc_ids[posting.doc as usize];
                if tk.would_accept(score) && filter(id) {
                    tk.push(id, score);
                }
            }
        }
        tk.into_sorted_vec()
    }
}

/// Largest corpus for which queries use the dense term-at-a-time score
/// array (8 bytes per document, reused from a thread-local scratch). Above
/// this the index switches to the allocation-light document-at-a-time merge
/// with block-max pruning.
const TAAT_MAX_DOCS: usize = 1 << 16;

thread_local! {
    /// Reusable TAAT scratch (dense score array + touched list). The score
    /// array upholds an all-zeros-between-queries invariant: only touched
    /// entries are re-zeroed after each scan.
    static TAAT_SCRATCH: RefCell<(Vec<f64>, Vec<u32>)> = const { RefCell::new((Vec::new(), Vec::new())) };
}

/// BM25+-style IDF, never negative.
#[inline]
fn bm25_idf(n: f64, df: f64) -> f64 {
    ((n - df + 0.5) / (df + 0.5) + 1.0).ln()
}

/// One term's score contribution for a posting with `tf` occurrences in a
/// document of length `dl` — the single formula every scan strategy (and
/// the block-bound evaluation) shares. `weight` is the cursor's
/// query-independent factor (BM25 IDF / LM query-tf); `background` is the
/// LM-Dirichlet `mu·P(t|corpus)` term.
#[inline]
fn contribution(
    scoring: ScoringFunction,
    weight: f64,
    background: f64,
    tf: f64,
    dl: f64,
    avgdl: f64,
) -> f64 {
    match scoring {
        ScoringFunction::Bm25(params) => {
            let denom = tf + params.k1 * (1.0 - params.b + params.b * dl / avgdl);
            weight * tf * (params.k1 + 1.0) / denom
        }
        ScoringFunction::LmDirichlet { mu } => {
            // log P(t|d) with Dirichlet smoothing, weighted by query tf and
            // normalized against the pure-background score so only matching
            // terms contribute.
            let smoothed = (tf + background) / (dl + mu);
            let bg = background / (dl + mu);
            weight * (smoothed / bg).ln()
        }
    }
}

/// Relative slack applied when comparing a block-bound sum against the
/// top-k threshold: the bound is mathematically an upper bound, but its
/// floating-point evaluation can sit an ulp below a posting's actually
/// computed score (e.g. the LM formula's dl cancels algebraically, not
/// numerically). Requiring `bound · (1 + SLACK) < threshold` keeps pruning
/// strictly conservative; the lost pruning opportunity is negligible.
const BOUND_SLACK: f64 = 1e-9;

/// Iterations of the pruned document-at-a-time merge between WAND pivot
/// checks. The check costs one small sort; amortizing it keeps dense
/// multi-term queries (where the pivot never skips) at full merge speed
/// while still letting a sparse high-impact term skip the gaps between
/// its postings within at most this many scored documents.
const WAND_PERIOD: usize = 16;

/// A scoring cursor over one query term's posting list: the contiguous
/// arena span followed by the (strictly newer) delta tail.
///
/// `weight` is the term's precomputed query-independent factor (IDF for
/// BM25, query term frequency for LM-Dirichlet); `background` is the
/// LM-Dirichlet `mu·P(t|corpus)` term (unused by BM25).
struct Cursor<'a> {
    arena: &'a [Posting],
    tail: &'a [Posting],
    blocks: &'a [BlockMeta],
    frontier: &'a [FrontierPoint],
    pos: usize,
    weight: f64,
    background: f64,
}

impl Cursor<'_> {
    #[inline]
    fn len(&self) -> usize {
        self.arena.len() + self.tail.len()
    }

    #[inline]
    fn posting_at(&self, pos: usize) -> &Posting {
        if pos < self.arena.len() {
            &self.arena[pos]
        } else {
            &self.tail[pos - self.arena.len()]
        }
    }

    #[inline]
    fn doc_at(&self, pos: usize) -> u32 {
        self.posting_at(pos).doc
    }

    /// The last document covered by the current block (the whole tail acts
    /// as one block).
    #[inline]
    fn block_end_doc(&self) -> u32 {
        if self.pos < self.arena.len() {
            let block_end = ((self.pos / BLOCK_POSTINGS) + 1) * BLOCK_POSTINGS;
            self.arena[block_end.min(self.arena.len()) - 1].doc
        } else {
            self.tail.last().map(|p| p.doc).unwrap_or(u32::MAX)
        }
    }

    /// Advance to the first posting with `doc > bound` (binary search in
    /// the arena remainder, then in the tail).
    fn seek_past(&mut self, bound: u32) {
        if self.pos < self.arena.len() {
            self.pos += self.arena[self.pos..].partition_point(|p| p.doc <= bound);
        }
        if self.pos >= self.arena.len() {
            let tail_pos = self.pos - self.arena.len();
            if tail_pos < self.tail.len() {
                self.pos += self.tail[tail_pos..].partition_point(|p| p.doc <= bound);
            }
        }
    }
}

/// The tail pseudo-block id in [`BoundState::cached_block`].
const TAIL_BLOCK: usize = usize::MAX;
/// "No block" sentinel (exhausted cursor, or bound not yet computed).
const NO_BLOCK: usize = usize::MAX - 1;

/// Query-time pruning state of one cursor: the delta tail's frontier
/// (computed at query start — the tail has no precomputed blocks) and the
/// cached upper bound of the cursor's *current* block, refreshed only when
/// the cursor crosses a block boundary.
struct BoundState {
    tail_frontier: Vec<FrontierPoint>,
    /// Block the cached bound belongs to ([`TAIL_BLOCK`] / [`NO_BLOCK`]).
    cached_block: usize,
    /// Upper bound of the cursor's contribution within its current block.
    bound: f64,
}

impl BoundState {
    fn new(cursor: &Cursor<'_>, doc_lengths: &[u64]) -> Self {
        let mut tail_frontier = Vec::new();
        push_frontier(cursor.tail, doc_lengths, &mut tail_frontier);
        Self {
            tail_frontier,
            cached_block: NO_BLOCK,
            bound: 0.0,
        }
    }

    #[inline]
    fn block_of(cursor: &Cursor<'_>) -> usize {
        if cursor.pos < cursor.arena.len() {
            cursor.pos / BLOCK_POSTINGS
        } else if cursor.pos < cursor.len() {
            TAIL_BLOCK
        } else {
            NO_BLOCK
        }
    }

    /// Re-evaluate the cached bound if the cursor moved to a different
    /// block; returns whether the bound changed. The bound is the maximum
    /// of the shared [`contribution`] formula over the block's frontier —
    /// valid for any tombstone state because dropping postings can only
    /// lower the true maximum, and consistent with stale-IDF serving
    /// because it uses the same `weight` the actual scoring uses.
    #[inline]
    fn refresh(&mut self, cursor: &Cursor<'_>, scoring: ScoringFunction, avgdl: f64) -> bool {
        let block = Self::block_of(cursor);
        if block == self.cached_block {
            return false;
        }
        self.cached_block = block;
        let points: &[FrontierPoint] = match block {
            NO_BLOCK => &[],
            TAIL_BLOCK => &self.tail_frontier,
            b => {
                let meta = &cursor.blocks[b];
                &cursor.frontier
                    [meta.frontier_offset..meta.frontier_offset + meta.frontier_len as usize]
            }
        };
        self.bound = frontier_bound(points, cursor, scoring, avgdl);
        true
    }

    /// The cursor's *term-level* upper bound: the maximum block bound over
    /// the whole posting run (every arena block plus the tail). Drives the
    /// WAND pivot — docs reachable only by cursors whose term bounds sum
    /// below the threshold can be skipped outright.
    fn term_bound(&self, cursor: &Cursor<'_>, scoring: ScoringFunction, avgdl: f64) -> f64 {
        let mut bound = frontier_bound(&self.tail_frontier, cursor, scoring, avgdl);
        for meta in cursor.blocks {
            let points = &cursor.frontier
                [meta.frontier_offset..meta.frontier_offset + meta.frontier_len as usize];
            bound = bound.max(frontier_bound(points, cursor, scoring, avgdl));
        }
        bound
    }
}

/// Maximum of the scoring contribution over a frontier (the exact block
/// maximum — see [`BlockMeta`]).
#[inline]
fn frontier_bound(
    points: &[FrontierPoint],
    cursor: &Cursor<'_>,
    scoring: ScoringFunction,
    avgdl: f64,
) -> f64 {
    points
        .iter()
        .map(|pt| {
            contribution(
                scoring,
                cursor.weight,
                cursor.background,
                f64::from(pt.tf),
                pt.dl as f64,
                avgdl,
            )
        })
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bow(words: &[&str]) -> BagOfWords {
        BagOfWords::from_tokens(words.iter().copied())
    }

    fn sample_index() -> InvertedIndex {
        let mut idx = InvertedIndex::new();
        idx.add(
            1,
            &bow(&["pemetrexed", "antifolate", "synthase", "inhibitor"]),
        );
        idx.add(2, &bow(&["citric", "acid", "anticoagulant"]));
        idx.add(3, &bow(&["geneticin", "aminoglycoside", "antibiotic"]));
        idx.add(4, &bow(&["synthase", "enzyme", "target", "reductase"]));
        idx
    }

    #[test]
    fn bm25_ranks_matching_docs_first() {
        let idx = sample_index();
        let results = idx.search(&bow(&["synthase", "inhibitor"]), 4);
        assert_eq!(results[0].0, 1, "doc 1 matches both terms");
        assert!(results.iter().any(|(id, _)| *id == 4));
        assert!(!results.iter().any(|(id, _)| *id == 2));
    }

    #[test]
    fn bm25_scores_positive_and_sorted() {
        let idx = sample_index();
        let results = idx.search(&bow(&["synthase"]), 10);
        assert!(!results.is_empty());
        for w in results.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        assert!(results.iter().all(|(_, s)| *s > 0.0));
    }

    #[test]
    fn rare_term_scores_higher_than_common() {
        let mut idx = InvertedIndex::new();
        for i in 0..20 {
            idx.add(i, &bow(&["common", "filler"]));
        }
        idx.add(100, &bow(&["common", "rare"]));
        let common = idx.search(&bow(&["common"]), 1)[0].1;
        let rare = idx.search(&bow(&["rare"]), 1)[0].1;
        assert!(rare > common, "IDF should boost the rare term");
    }

    #[test]
    fn lm_dirichlet_ranks_matching_docs() {
        let idx = sample_index();
        let results = idx.search_with(
            &bow(&["synthase", "enzyme"]),
            4,
            ScoringFunction::LmDirichlet { mu: 100.0 },
        );
        assert_eq!(results[0].0, 4);
        assert!(results.iter().all(|(_, s)| *s > 0.0));
    }

    #[test]
    fn empty_query_and_unknown_terms() {
        let idx = sample_index();
        assert!(idx.search(&BagOfWords::new(), 5).is_empty());
        assert!(idx.search(&bow(&["zzzznotaword"]), 5).is_empty());
    }

    #[test]
    fn empty_index_returns_nothing() {
        let idx = InvertedIndex::new();
        assert!(idx.search(&bow(&["anything"]), 5).is_empty());
        assert_eq!(idx.avg_doc_length(), 0.0);
    }

    #[test]
    fn term_frequency_increases_score() {
        let mut idx = InvertedIndex::new();
        idx.add(
            1,
            &BagOfWords::from_tokens(["drug", "drug", "drug", "other"]),
        );
        idx.add(
            2,
            &BagOfWords::from_tokens(["drug", "other", "filler", "words"]),
        );
        let results = idx.search(&bow(&["drug"]), 2);
        assert_eq!(results[0].0, 1);
    }

    #[test]
    fn statistics() {
        let idx = sample_index();
        assert_eq!(idx.len(), 4);
        assert_eq!(idx.doc_freq("synthase"), 2);
        assert_eq!(idx.doc_freq("missing"), 0);
        assert!(idx.vocabulary_size() >= 10);
        assert!(idx.avg_doc_length() > 3.0);
    }

    #[test]
    fn top_k_truncates() {
        let idx = sample_index();
        let results = idx.search(&bow(&["synthase"]), 1);
        assert_eq!(results.len(), 1);
    }

    #[test]
    fn serde_roundtrip() {
        let idx = sample_index();
        let json = serde_json::to_string(&idx).unwrap();
        let back: InvertedIndex = serde_json::from_str(&json).unwrap();
        assert_eq!(back.len(), 4);
        let results = back.search(&bow(&["synthase"]), 2);
        assert_eq!(results.len(), 2);
    }

    #[test]
    fn finalize_does_not_change_scores() {
        let mut idx = sample_index();
        let before = idx.search(&bow(&["synthase", "inhibitor"]), 4);
        idx.finalize();
        assert!(idx.is_finalized());
        let after = idx.search(&bow(&["synthase", "inhibitor"]), 4);
        assert_eq!(before, after);
        // Adding after finalize invalidates the cache but keeps correctness.
        idx.add(9, &bow(&["synthase"]));
        assert!(!idx.is_finalized());
        assert!(idx
            .search(&bow(&["synthase"]), 5)
            .iter()
            .any(|(id, _)| *id == 9));
    }

    #[test]
    fn finalize_folds_tail_into_arena() {
        let mut idx = sample_index();
        assert!(idx.arena.is_empty(), "pre-finalize postings live in tails");
        idx.finalize();
        assert!(idx.tail.iter().all(Vec::is_empty));
        assert_eq!(
            idx.arena.len(),
            idx.spans.iter().map(|s| s.len).sum::<usize>()
        );
        // Every span's blocks cover its postings.
        for span in &idx.spans {
            assert_eq!(span.num_blocks(), span.len.div_ceil(BLOCK_POSTINGS));
        }
        // Post-finalize adds land in the tail and keep doc order sorted.
        idx.add(9, &bow(&["synthase"]));
        let (span, tail) = idx.term_postings(idx.term_ids["synthase"]);
        assert_eq!(tail.len(), 1);
        assert!(span.last().unwrap().doc < tail[0].doc);
    }

    #[test]
    fn filtered_search_fills_top_k() {
        // 30 even docs about "alpha", 5 odd docs about "alpha" with lower
        // term frequency: a filter for odd ids must still return all 5 odd
        // matches even though the top of the unfiltered ranking is even.
        let mut idx = InvertedIndex::new();
        for i in 0..30u64 {
            idx.add(i * 2, &BagOfWords::from_tokens(["alpha", "alpha", "alpha"]));
        }
        for i in 0..5u64 {
            idx.add(
                i * 2 + 1,
                &BagOfWords::from_tokens(["alpha", "pad", "pad", "pad"]),
            );
        }
        let odd = idx.search_filtered(&bow(&["alpha"]), 5, ScoringFunction::default(), |id| {
            id % 2 == 1
        });
        assert_eq!(odd.len(), 5, "filter-aware search must fill top_k");
        assert!(odd.iter().all(|(id, _)| id % 2 == 1));
    }

    #[test]
    fn taat_and_daat_strategies_agree() {
        let mut idx = InvertedIndex::new();
        for i in 0..50u64 {
            let mut words = vec!["common"];
            if i % 3 == 0 {
                words.push("fizz");
            }
            if i % 5 == 0 {
                words.push("buzz");
            }
            if i % 7 == 0 {
                words.extend(["rare", "rare"]);
            }
            idx.add(i, &BagOfWords::from_tokens(words));
        }
        idx.finalize();
        for scoring in [
            ScoringFunction::default(),
            ScoringFunction::LmDirichlet { mu: 50.0 },
        ] {
            let query = bow(&["common", "fizz", "rare"]);
            let avgdl = idx.avg_doc_length().max(1e-9);
            let taat = idx.scan_taat(idx.cursors(&query, scoring), 8, scoring, |_| true, avgdl);
            let daat = idx.scan_daat(idx.cursors(&query, scoring), 8, scoring, |_| true, avgdl);
            let pruned =
                idx.scan_daat_pruned(idx.cursors(&query, scoring), 8, scoring, |_| true, avgdl);
            assert_eq!(taat, daat, "scan strategies must rank identically");
            assert_eq!(daat, pruned, "block-max pruning must be exact");
        }
    }

    #[test]
    fn pruned_scan_matches_baseline_on_multi_block_lists() {
        // > BLOCK_POSTINGS docs per term so the arena has real blocks, with
        // a skewed tf distribution so the threshold climbs early and the
        // pruning path actually triggers.
        let mut idx = InvertedIndex::new();
        for i in 0..1000u64 {
            let mut words = vec!["common"; 1 + (i % 4) as usize];
            if i % 10 == 0 {
                words.push("decade");
            }
            if i % 97 == 0 {
                words.extend(["rare"; 3]);
            }
            idx.add(i, &BagOfWords::from_tokens(words.iter().copied()));
        }
        idx.finalize();
        // Tombstone some and leave a delta tail behind.
        for id in [3, 97, 500, 501] {
            assert!(idx.remove(id));
        }
        for i in 1000..1040u64 {
            idx.add(i, &bow(&["common", "decade"]));
        }
        for scoring in [
            ScoringFunction::default(),
            ScoringFunction::Bm25(Bm25Params { k1: 0.9, b: 0.4 }),
            ScoringFunction::LmDirichlet { mu: 200.0 },
        ] {
            for query in [
                &["common"][..],
                &["common", "decade"],
                &["common", "decade", "rare"],
            ] {
                for k in [1, 5, 17] {
                    let avgdl = idx.avg_doc_length().max(1e-9);
                    let baseline = idx.scan_daat(
                        idx.cursors(&bow(query), scoring),
                        k,
                        scoring,
                        |_| true,
                        avgdl,
                    );
                    let pruned = idx.scan_daat_pruned(
                        idx.cursors(&bow(query), scoring),
                        k,
                        scoring,
                        |_| true,
                        avgdl,
                    );
                    assert_eq!(
                        baseline, pruned,
                        "query {query:?} k={k} scoring {scoring:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn remove_tombstones_until_compact() {
        let mut idx = sample_index();
        idx.finalize();
        assert!(idx.remove(4));
        assert!(!idx.remove(4), "double removal is a no-op");
        assert!(!idx.remove(99), "unknown id is a no-op");
        assert_eq!(idx.len(), 3);
        assert_eq!(idx.num_tombstoned(), 1);
        // Doc 4 no longer surfaces, for any scan strategy.
        let results = idx.search(&bow(&["synthase"]), 10);
        assert!(!results.iter().any(|(id, _)| *id == 4));
        assert!(results.iter().any(|(id, _)| *id == 1));
        let exhaustive = idx.search_exhaustive(&bow(&["synthase"]), 10, ScoringFunction::default());
        assert!(!exhaustive.iter().any(|(id, _)| *id == 4));
        // Live document frequency excludes the tombstoned doc.
        assert_eq!(idx.doc_freq("synthase"), 1);
        idx.compact();
        assert_eq!(idx.len(), 3);
        assert_eq!(idx.num_tombstoned(), 0);
        assert!(idx.is_finalized());
        assert!(!idx.search(&bow(&["synthase"]), 10).is_empty());
    }

    #[test]
    fn live_df_memo_tracks_mutations() {
        let mut idx = sample_index();
        idx.finalize();
        assert_eq!(idx.doc_freq("synthase"), 2);
        idx.remove(1);
        // First probe under tombstones computes and memoizes; the second
        // hits the memo. Both must see the live count.
        assert_eq!(idx.doc_freq("synthase"), 1);
        assert_eq!(idx.doc_freq("synthase"), 1);
        // A mutation invalidates the memo.
        idx.add(10, &bow(&["synthase", "synthase"]));
        assert_eq!(idx.doc_freq("synthase"), 2);
        idx.remove(4);
        assert_eq!(idx.doc_freq("synthase"), 1);
        idx.compact();
        assert_eq!(idx.doc_freq("synthase"), 1);
        // A clone never shares its parent's memo.
        let cloned = idx.clone();
        idx.remove(10);
        assert_eq!(idx.doc_freq("synthase"), 0);
        assert_eq!(cloned.doc_freq("synthase"), 1);
    }

    #[test]
    fn compact_matches_fresh_build_of_survivors() {
        // Incremental adds + removes, then compact: scores must be
        // identical to an index built over only the surviving elements.
        let mut incremental = InvertedIndex::new();
        let corpora: Vec<(u64, Vec<&str>)> = vec![
            (1, vec!["alpha", "beta", "gamma"]),
            (2, vec!["beta", "beta", "delta"]),
            (3, vec!["alpha", "delta", "epsilon"]),
            (4, vec!["gamma", "gamma", "zeta"]),
            (5, vec!["alpha", "zeta"]),
        ];
        for (id, words) in &corpora {
            incremental.add(*id, &BagOfWords::from_tokens(words.iter().copied()));
        }
        incremental.remove(2);
        incremental.remove(4);
        incremental.compact();

        let mut fresh = InvertedIndex::new();
        for (id, words) in &corpora {
            if *id != 2 && *id != 4 {
                fresh.add(*id, &BagOfWords::from_tokens(words.iter().copied()));
            }
        }
        fresh.finalize();

        for query in [&["alpha"][..], &["beta", "delta"], &["zeta", "gamma"]] {
            for scoring in [
                ScoringFunction::default(),
                ScoringFunction::LmDirichlet { mu: 100.0 },
            ] {
                let a = incremental.search_with(&bow(query), 5, scoring);
                let b = fresh.search_with(&bow(query), 5, scoring);
                assert_eq!(a.len(), b.len(), "query {query:?}");
                for (x, y) in a.iter().zip(b.iter()) {
                    assert_eq!(x.0, y.0, "query {query:?}");
                    assert!((x.1 - y.1).abs() < 1e-12, "query {query:?}: {x:?} vs {y:?}");
                }
            }
        }
    }

    #[test]
    fn lazy_idf_refresh_bounds_staleness() {
        let mut idx = sample_index();
        idx.set_idf_refresh_ratio(Some(0.3));
        idx.finalize();
        assert_eq!(idx.idf_staleness(), 0);
        // One mutation: 1 <= 0.3 * 5 live docs, so the cache stays stale.
        idx.add(10, &bow(&["synthase", "novel"]));
        assert_eq!(idx.idf_staleness(), 1);
        assert!(!idx.is_finalized());
        // Queries still see the new doc (stale IDF, exact postings).
        assert!(idx
            .search(&bow(&["synthase"]), 10)
            .iter()
            .any(|(id, _)| *id == 10));
        // Crossing the ratio (2 > 0.3 × 6) triggers the automatic refresh.
        idx.add(11, &bow(&["synthase"]));
        assert!(idx.is_finalized(), "refresh should have fired");
        assert_eq!(idx.idf_staleness(), 0);
    }

    #[test]
    fn serde_roundtrip_preserves_tombstones() {
        let mut idx = sample_index();
        idx.remove(2);
        let json = serde_json::to_string(&idx).unwrap();
        let back: InvertedIndex = serde_json::from_str(&json).unwrap();
        assert_eq!(back.len(), 3);
        assert_eq!(back.num_tombstoned(), 1);
        assert!(!back
            .search(&bow(&["citric", "acid"]), 5)
            .iter()
            .any(|(id, _)| *id == 2));
        // The id map is rebuilt lazily: removing after a roundtrip works.
        let mut back = back;
        assert!(back.remove(3));
        assert_eq!(back.len(), 2);
    }

    #[test]
    fn remove_preexisting_doc_after_roundtrip_and_add() {
        // `add` must rebuild the serde-skipped id map before inserting, or
        // pre-roundtrip documents become unremovable once anything new has
        // been indexed.
        let idx = sample_index();
        let json = serde_json::to_string(&idx).unwrap();
        let mut back: InvertedIndex = serde_json::from_str(&json).unwrap();
        back.add(50, &bow(&["fresh", "doc"]));
        assert!(back.remove(1), "pre-roundtrip doc must be removable");
        assert!(!back
            .search(&bow(&["pemetrexed"]), 5)
            .iter()
            .any(|(id, _)| *id == 1));
    }

    #[test]
    fn taat_scratch_survives_reentrant_and_panicking_filters() {
        let idx = sample_index();
        let query = bow(&["synthase", "enzyme"]);
        let clean = idx.search(&query, 10);
        // A filter that itself searches the index (reentrant borrow of the
        // thread-local scratch) must work, not panic.
        let reentrant = idx.search_filtered(&query, 10, ScoringFunction::default(), |_| {
            !idx.search(&bow(&["citric"]), 1).is_empty()
        });
        assert_eq!(reentrant, clean);
        // A panicking filter must not corrupt the scratch for later
        // queries on this thread.
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            idx.search_filtered(&query, 10, ScoringFunction::default(), |_| {
                panic!("filter exploded")
            })
        }));
        assert!(panicked.is_err());
        assert_eq!(idx.search(&query, 10), clean, "scratch left dirty");
    }

    #[test]
    fn filtered_matches_postfilter_of_exhaustive() {
        let idx = sample_index();
        let all = idx.search(&bow(&["synthase", "enzyme", "acid"]), 10);
        let filtered = idx.search_filtered(
            &bow(&["synthase", "enzyme", "acid"]),
            10,
            ScoringFunction::default(),
            |id| id != 2,
        );
        let expected: Vec<(u64, f64)> = all.into_iter().filter(|(id, _)| *id != 2).collect();
        assert_eq!(filtered, expected);
    }
}
