//! In-memory inverted index with BM25 and LM-Dirichlet ranking.
//!
//! This index plays the role of the Elastic Search / BM25 engine in the
//! paper: it is built over the bag-of-words content and over the metadata of
//! every discoverable element, serves keyword-search queries, acts as the
//! keyword-based labeling functions in the weak-supervision framework, and is
//! one of the baselines in the Doc→Table evaluation (Figure 6, labels
//! "Elastic-BM25", "Elastic-LMDirichlet", "Elastic BM25-Content Only",
//! "Elastic BM25-Schema Only").

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use cmdl_text::BagOfWords;

use crate::topk::TopK;

/// BM25 free parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Bm25Params {
    /// Term-frequency saturation. Default 1.2.
    pub k1: f64,
    /// Length normalization. Default 0.75.
    pub b: f64,
}

impl Default for Bm25Params {
    fn default() -> Self {
        Self { k1: 1.2, b: 0.75 }
    }
}

/// Ranking function used by [`InvertedIndex::search`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ScoringFunction {
    /// Okapi BM25 (the Elastic Search default the paper uses).
    Bm25(Bm25Params),
    /// Language model with Dirichlet smoothing (`mu` prior).
    LmDirichlet {
        /// Dirichlet prior; Elastic's default is 2000.
        mu: f64,
    },
}

impl Default for ScoringFunction {
    fn default() -> Self {
        ScoringFunction::Bm25(Bm25Params::default())
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Posting {
    doc: u64,
    term_freq: u32,
}

#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct DocStats {
    length: u64,
}

/// An inverted index over bag-of-words elements keyed by opaque `u64` ids.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct InvertedIndex {
    postings: HashMap<String, Vec<Posting>>,
    docs: HashMap<u64, DocStats>,
    total_length: u64,
    /// Total occurrences of each term across the corpus (for LM-Dirichlet).
    term_totals: HashMap<String, u64>,
}

impl InvertedIndex {
    /// Create an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of indexed elements.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// Is the index empty?
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// Number of distinct terms.
    pub fn vocabulary_size(&self) -> usize {
        self.postings.len()
    }

    /// Average element length in tokens.
    pub fn avg_doc_length(&self) -> f64 {
        if self.docs.is_empty() {
            0.0
        } else {
            self.total_length as f64 / self.docs.len() as f64
        }
    }

    /// Document frequency of a term.
    pub fn doc_freq(&self, term: &str) -> usize {
        self.postings.get(term).map(|p| p.len()).unwrap_or(0)
    }

    /// Index an element's bag of words under `id`.
    ///
    /// Indexing the same id twice adds the new postings without removing the
    /// old ones; callers should use fresh ids.
    pub fn add(&mut self, id: u64, bow: &BagOfWords) {
        let mut length = 0u64;
        for (term, count) in bow.iter() {
            self.postings
                .entry(term.to_string())
                .or_default()
                .push(Posting { doc: id, term_freq: count });
            *self.term_totals.entry(term.to_string()).or_insert(0) += u64::from(count);
            length += u64::from(count);
        }
        self.total_length += length;
        self.docs.insert(id, DocStats { length });
    }

    /// Search with the default BM25 scoring.
    pub fn search(&self, query: &BagOfWords, top_k: usize) -> Vec<(u64, f64)> {
        self.search_with(query, top_k, ScoringFunction::default())
    }

    /// Search with an explicit scoring function. Returns `(id, score)` sorted
    /// by score descending.
    pub fn search_with(
        &self,
        query: &BagOfWords,
        top_k: usize,
        scoring: ScoringFunction,
    ) -> Vec<(u64, f64)> {
        match scoring {
            ScoringFunction::Bm25(params) => self.search_bm25(query, top_k, params),
            ScoringFunction::LmDirichlet { mu } => self.search_lm(query, top_k, mu),
        }
    }

    fn search_bm25(&self, query: &BagOfWords, top_k: usize, params: Bm25Params) -> Vec<(u64, f64)> {
        let n = self.docs.len() as f64;
        if n == 0.0 {
            return Vec::new();
        }
        let avgdl = self.avg_doc_length().max(1e-9);
        let mut scores: HashMap<u64, f64> = HashMap::new();
        for (term, _qf) in query.iter() {
            let Some(postings) = self.postings.get(term) else { continue };
            let df = postings.len() as f64;
            // BM25+-style IDF, never negative.
            let idf = ((n - df + 0.5) / (df + 0.5) + 1.0).ln();
            for p in postings {
                let dl = self.docs[&p.doc].length as f64;
                let tf = p.term_freq as f64;
                let denom = tf + params.k1 * (1.0 - params.b + params.b * dl / avgdl);
                let contrib = idf * tf * (params.k1 + 1.0) / denom;
                *scores.entry(p.doc).or_insert(0.0) += contrib;
            }
        }
        collect_top_k(scores, top_k)
    }

    fn search_lm(&self, query: &BagOfWords, top_k: usize, mu: f64) -> Vec<(u64, f64)> {
        if self.docs.is_empty() {
            return Vec::new();
        }
        let corpus_len = self.total_length.max(1) as f64;
        // Only score documents containing at least one query term (standard
        // practice; keeps the index sparse-friendly).
        let mut candidates: HashMap<u64, f64> = HashMap::new();
        for (term, qf) in query.iter() {
            let cf = *self.term_totals.get(term).unwrap_or(&0) as f64;
            if cf == 0.0 {
                continue;
            }
            let p_corpus = cf / corpus_len;
            let Some(postings) = self.postings.get(term) else { continue };
            let mut term_docs: HashMap<u64, f64> = HashMap::new();
            for p in postings {
                term_docs.insert(p.doc, p.term_freq as f64);
            }
            for p in postings {
                let entry = candidates.entry(p.doc).or_insert(0.0);
                let dl = self.docs[&p.doc].length as f64;
                let tf = term_docs.get(&p.doc).copied().unwrap_or(0.0);
                // log P(t|d) with Dirichlet smoothing, weighted by query tf,
                // normalized against the pure-background score so that scores
                // stay non-negative and only matching terms contribute.
                let smoothed = (tf + mu * p_corpus) / (dl + mu);
                let background = (mu * p_corpus) / (dl + mu);
                *entry += f64::from(qf) * (smoothed / background).ln();
            }
        }
        collect_top_k(candidates, top_k)
    }
}

fn collect_top_k(scores: HashMap<u64, f64>, top_k: usize) -> Vec<(u64, f64)> {
    let mut tk = TopK::new(top_k);
    for (id, score) in scores {
        if score > 0.0 {
            tk.push(id, score);
        }
    }
    tk.into_sorted_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bow(words: &[&str]) -> BagOfWords {
        BagOfWords::from_tokens(words.iter().copied())
    }

    fn sample_index() -> InvertedIndex {
        let mut idx = InvertedIndex::new();
        idx.add(1, &bow(&["pemetrexed", "antifolate", "synthase", "inhibitor"]));
        idx.add(2, &bow(&["citric", "acid", "anticoagulant"]));
        idx.add(3, &bow(&["geneticin", "aminoglycoside", "antibiotic"]));
        idx.add(4, &bow(&["synthase", "enzyme", "target", "reductase"]));
        idx
    }

    #[test]
    fn bm25_ranks_matching_docs_first() {
        let idx = sample_index();
        let results = idx.search(&bow(&["synthase", "inhibitor"]), 4);
        assert_eq!(results[0].0, 1, "doc 1 matches both terms");
        assert!(results.iter().any(|(id, _)| *id == 4));
        assert!(!results.iter().any(|(id, _)| *id == 2));
    }

    #[test]
    fn bm25_scores_positive_and_sorted() {
        let idx = sample_index();
        let results = idx.search(&bow(&["synthase"]), 10);
        assert!(!results.is_empty());
        for w in results.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        assert!(results.iter().all(|(_, s)| *s > 0.0));
    }

    #[test]
    fn rare_term_scores_higher_than_common() {
        let mut idx = InvertedIndex::new();
        for i in 0..20 {
            idx.add(i, &bow(&["common", "filler"]));
        }
        idx.add(100, &bow(&["common", "rare"]));
        let common = idx.search(&bow(&["common"]), 1)[0].1;
        let rare = idx.search(&bow(&["rare"]), 1)[0].1;
        assert!(rare > common, "IDF should boost the rare term");
    }

    #[test]
    fn lm_dirichlet_ranks_matching_docs() {
        let idx = sample_index();
        let results = idx.search_with(
            &bow(&["synthase", "enzyme"]),
            4,
            ScoringFunction::LmDirichlet { mu: 100.0 },
        );
        assert_eq!(results[0].0, 4);
        assert!(results.iter().all(|(_, s)| *s > 0.0));
    }

    #[test]
    fn empty_query_and_unknown_terms() {
        let idx = sample_index();
        assert!(idx.search(&BagOfWords::new(), 5).is_empty());
        assert!(idx.search(&bow(&["zzzznotaword"]), 5).is_empty());
    }

    #[test]
    fn empty_index_returns_nothing() {
        let idx = InvertedIndex::new();
        assert!(idx.search(&bow(&["anything"]), 5).is_empty());
        assert_eq!(idx.avg_doc_length(), 0.0);
    }

    #[test]
    fn term_frequency_increases_score() {
        let mut idx = InvertedIndex::new();
        idx.add(1, &BagOfWords::from_tokens(["drug", "drug", "drug", "other"]));
        idx.add(2, &BagOfWords::from_tokens(["drug", "other", "filler", "words"]));
        let results = idx.search(&bow(&["drug"]), 2);
        assert_eq!(results[0].0, 1);
    }

    #[test]
    fn statistics() {
        let idx = sample_index();
        assert_eq!(idx.len(), 4);
        assert_eq!(idx.doc_freq("synthase"), 2);
        assert_eq!(idx.doc_freq("missing"), 0);
        assert!(idx.vocabulary_size() >= 10);
        assert!(idx.avg_doc_length() > 3.0);
    }

    #[test]
    fn top_k_truncates() {
        let idx = sample_index();
        let results = idx.search(&bow(&["synthase"]), 1);
        assert_eq!(results.len(), 1);
    }

    #[test]
    fn serde_roundtrip() {
        let idx = sample_index();
        let json = serde_json::to_string(&idx).unwrap();
        let back: InvertedIndex = serde_json::from_str(&json).unwrap();
        assert_eq!(back.len(), 4);
        let results = back.search(&bow(&["synthase"]), 2);
        assert_eq!(results.len(), 2);
    }
}
