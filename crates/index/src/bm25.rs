//! In-memory inverted index with BM25 and LM-Dirichlet ranking.
//!
//! This index plays the role of the Elastic Search / BM25 engine in the
//! paper: it is built over the bag-of-words content and over the metadata of
//! every discoverable element, serves keyword-search queries, acts as the
//! keyword-based labeling functions in the weak-supervision framework, and is
//! one of the baselines in the Doc→Table evaluation (Figure 6, labels
//! "Elastic-BM25", "Elastic-LMDirichlet", "Elastic BM25-Content Only",
//! "Elastic BM25-Schema Only").
//!
//! ## Layout
//!
//! Terms are interned to dense `u32` ids, postings reference documents by a
//! dense `u32` index (the external `u64` id is resolved only when a result
//! is emitted), and document lengths live in a flat `Vec`. Scoring walks the
//! query's posting lists document-at-a-time with a small cursor heap and
//! accumulates results in a bounded [`TopK`] heap, so a query performs no
//! per-document hashing and no `HashMap` allocation. Per-term BM25 IDF is
//! precomputed by [`InvertedIndex::finalize`] (called automatically by the
//! index catalog after bulk loading) and recomputed on the fly only when
//! the index has been mutated since.
//!
//! ## Incremental maintenance
//!
//! The index supports in-place deltas for the incremental-ingestion path:
//! [`add`](InvertedIndex::add) appends postings without re-finalizing, and
//! [`remove`](InvertedIndex::remove) tombstones an element (its postings stay
//! in place but are skipped by every scan). Instead of running a full
//! `finalize()` per mutation, the index keeps a mutation epoch and refreshes
//! the IDF table lazily: with
//! [`set_idf_refresh_ratio`](InvertedIndex::set_idf_refresh_ratio) a bulk
//! loader opts into automatic refresh once the number of mutations since the
//! last refresh exceeds the given fraction of the live corpus, which bounds
//! how stale any cached IDF can get. [`compact`](InvertedIndex::compact)
//! folds tombstones back into the dense layout and re-finalizes, after which
//! scores are identical to a freshly built index over the surviving
//! elements.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use cmdl_text::BagOfWords;

use crate::topk::TopK;

/// BM25 free parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Bm25Params {
    /// Term-frequency saturation. Default 1.2.
    pub k1: f64,
    /// Length normalization. Default 0.75.
    pub b: f64,
}

impl Default for Bm25Params {
    fn default() -> Self {
        Self { k1: 1.2, b: 0.75 }
    }
}

/// Ranking function used by [`InvertedIndex::search`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ScoringFunction {
    /// Okapi BM25 (the Elastic Search default the paper uses).
    Bm25(Bm25Params),
    /// Language model with Dirichlet smoothing (`mu` prior).
    LmDirichlet {
        /// Dirichlet prior; Elastic's default is 2000.
        mu: f64,
    },
}

impl Default for ScoringFunction {
    fn default() -> Self {
        ScoringFunction::Bm25(Bm25Params::default())
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Posting {
    /// Dense document index (position in `doc_ids` / `doc_lengths`).
    doc: u32,
    term_freq: u32,
}

/// An inverted index over bag-of-words elements keyed by opaque `u64` ids.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct InvertedIndex {
    /// Term → dense term id.
    term_ids: HashMap<String, u32>,
    /// Posting lists by term id, each sorted by dense doc index.
    postings: Vec<Vec<Posting>>,
    /// Total corpus occurrences by term id (for LM-Dirichlet).
    term_totals: Vec<u64>,
    /// Dense doc index → external id.
    doc_ids: Vec<u64>,
    /// Token count by dense doc index.
    doc_lengths: Vec<u64>,
    /// Sum of all document lengths.
    total_length: u64,
    /// Tombstone flags by dense doc index (`true` = removed). May be shorter
    /// than `doc_ids` (older entries are implicitly live).
    tombstones: Vec<bool>,
    /// Number of tombstoned documents.
    dead_docs: usize,
    /// Sum of tombstoned document lengths.
    dead_length: u64,
    /// External id → dense doc index for removal. Rebuilt lazily after
    /// deserialization.
    #[serde(skip)]
    id_to_dense: HashMap<u64, u32>,
    /// Precomputed BM25 IDF by term id (valid when `idf_docs == doc_ids.len()`).
    #[serde(skip)]
    idf_cache: Vec<f64>,
    /// Document count the IDF cache was computed for.
    #[serde(skip)]
    idf_docs: usize,
    /// Mutations (adds/removes) since the last IDF refresh.
    #[serde(skip)]
    stale_ops: usize,
    /// Automatic IDF refresh policy: refresh once `stale_ops` exceeds this
    /// fraction of the live corpus. `None` (the default) never refreshes
    /// automatically, preserving the classic add-then-`finalize` behaviour.
    #[serde(skip)]
    idf_refresh_ratio: Option<f64>,
}

impl InvertedIndex {
    /// Create an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live (non-tombstoned) elements.
    pub fn len(&self) -> usize {
        self.doc_ids.len() - self.dead_docs
    }

    /// Is the index empty (of live elements)?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of tombstoned elements awaiting [`compact`](Self::compact).
    pub fn num_tombstoned(&self) -> usize {
        self.dead_docs
    }

    /// Number of distinct terms.
    pub fn vocabulary_size(&self) -> usize {
        self.postings.len()
    }

    /// Average live element length in tokens.
    pub fn avg_doc_length(&self) -> f64 {
        let live = self.len();
        if live == 0 {
            0.0
        } else {
            (self.total_length - self.dead_length) as f64 / live as f64
        }
    }

    /// Document frequency of a term among live elements.
    pub fn doc_freq(&self, term: &str) -> usize {
        self.term_ids
            .get(term)
            .map(|&tid| {
                let postings = &self.postings[tid as usize];
                if self.dead_docs == 0 {
                    postings.len()
                } else {
                    postings.iter().filter(|p| !self.is_dead(p.doc)).count()
                }
            })
            .unwrap_or(0)
    }

    /// Is the dense doc index tombstoned?
    #[inline]
    fn is_dead(&self, dense: u32) -> bool {
        self.tombstones
            .get(dense as usize)
            .copied()
            .unwrap_or(false)
    }

    /// Index an element's bag of words under `id`.
    ///
    /// Indexing the same id twice adds the new postings without removing the
    /// old ones; callers should use fresh ids.
    pub fn add(&mut self, id: u64, bow: &BagOfWords) {
        // Rebuild the (serde-skipped) id map before the first mutation after
        // deserialization — inserting into a stale-empty map would leave
        // every pre-existing document unremovable.
        self.ensure_id_map();
        let dense = self.doc_ids.len() as u32;
        self.doc_ids.push(id);
        self.id_to_dense.insert(id, dense);
        let mut length = 0u64;
        for (term, count) in bow.iter() {
            let tid = match self.term_ids.get(term) {
                Some(&tid) => tid,
                None => {
                    let tid = self.postings.len() as u32;
                    self.term_ids.insert(term.to_string(), tid);
                    self.postings.push(Vec::new());
                    self.term_totals.push(0);
                    tid
                }
            };
            self.postings[tid as usize].push(Posting {
                doc: dense,
                term_freq: count,
            });
            self.term_totals[tid as usize] += u64::from(count);
            length += u64::from(count);
        }
        self.total_length += length;
        self.doc_lengths.push(length);
        self.note_mutation();
    }

    /// Tombstone the element indexed under `id`. Its postings stay in place
    /// but every scan skips them; [`compact`](Self::compact) reclaims the
    /// space. Returns `false` if the id is unknown (or already removed).
    pub fn remove(&mut self, id: u64) -> bool {
        self.ensure_id_map();
        let Some(dense) = self.id_to_dense.remove(&id) else {
            return false;
        };
        let dense = dense as usize;
        if self.tombstones.len() <= dense {
            self.tombstones.resize(self.doc_ids.len(), false);
        }
        if self.tombstones[dense] {
            return false;
        }
        self.tombstones[dense] = true;
        self.dead_docs += 1;
        self.dead_length += self.doc_lengths[dense];
        self.note_mutation();
        true
    }

    fn ensure_id_map(&mut self) {
        if self.id_to_dense.is_empty() && !self.doc_ids.is_empty() {
            self.rebuild_id_map();
        }
    }

    fn rebuild_id_map(&mut self) {
        self.id_to_dense = self
            .doc_ids
            .iter()
            .enumerate()
            .filter(|&(dense, _)| !self.is_dead(dense as u32))
            .map(|(dense, &id)| (id, dense as u32))
            .collect();
    }

    /// Record a mutation and refresh the IDF table if the configured
    /// staleness bound has been exceeded.
    fn note_mutation(&mut self) {
        self.stale_ops += 1;
        if let Some(ratio) = self.idf_refresh_ratio {
            if self.stale_ops as f64 > ratio * self.len().max(1) as f64 {
                self.finalize();
            }
        }
    }

    /// Opt into automatic lazy IDF refresh: after a mutation, the IDF table
    /// is re-finalized once the number of mutations since the last refresh
    /// exceeds `ratio × live elements` (a ratio of `0.0` refreshes on every
    /// mutation; `None` — the default — never refreshes automatically).
    pub fn set_idf_refresh_ratio(&mut self, ratio: Option<f64>) {
        self.idf_refresh_ratio = ratio;
    }

    /// Mutations since the last IDF refresh (the staleness the scorer is
    /// currently operating under).
    pub fn idf_staleness(&self) -> usize {
        self.stale_ops
    }

    /// Precompute the per-term BM25 IDF table. Queries work without calling
    /// this (they fall back to computing IDF per query term), but bulk
    /// loaders should call it once after their final [`add`](Self::add).
    pub fn finalize(&mut self) {
        let n = self.len() as f64;
        self.idf_cache = self
            .postings
            .iter()
            .map(|postings| {
                let df = if self.dead_docs == 0 {
                    postings.len()
                } else {
                    postings.iter().filter(|p| !self.is_dead(p.doc)).count()
                };
                bm25_idf(n, df as f64)
            })
            .collect();
        self.idf_docs = self.doc_ids.len();
        self.stale_ops = 0;
    }

    /// Is the precomputed IDF table in sync with the index contents?
    pub fn is_finalized(&self) -> bool {
        self.idf_docs == self.doc_ids.len()
            && self.idf_cache.len() == self.postings.len()
            && self.stale_ops == 0
    }

    /// Fold tombstones back into the dense layout: drop dead postings,
    /// remap dense indices (preserving the surviving order), recompute
    /// corpus statistics, and re-finalize. After `compact`, scores are
    /// identical to a freshly built index over the surviving elements.
    pub fn compact(&mut self) {
        if self.dead_docs > 0 {
            let mut remap: Vec<u32> = vec![u32::MAX; self.doc_ids.len()];
            let mut doc_ids = Vec::with_capacity(self.len());
            let mut doc_lengths = Vec::with_capacity(self.len());
            for (dense, slot) in remap.iter_mut().enumerate() {
                if !self.tombstones.get(dense).copied().unwrap_or(false) {
                    *slot = doc_ids.len() as u32;
                    doc_ids.push(self.doc_ids[dense]);
                    doc_lengths.push(self.doc_lengths[dense]);
                }
            }
            for (tid, postings) in self.postings.iter_mut().enumerate() {
                postings.retain_mut(|p| {
                    let to = remap[p.doc as usize];
                    if to == u32::MAX {
                        false
                    } else {
                        p.doc = to;
                        true
                    }
                });
                self.term_totals[tid] = postings.iter().map(|p| u64::from(p.term_freq)).sum();
            }
            self.doc_ids = doc_ids;
            self.doc_lengths = doc_lengths;
            self.total_length = self.doc_lengths.iter().sum();
            self.tombstones.clear();
            self.dead_docs = 0;
            self.dead_length = 0;
            self.rebuild_id_map();
        }
        self.finalize();
    }

    /// Search with the default BM25 scoring.
    pub fn search(&self, query: &BagOfWords, top_k: usize) -> Vec<(u64, f64)> {
        self.search_with(query, top_k, ScoringFunction::default())
    }

    /// Search with an explicit scoring function. Returns `(id, score)` sorted
    /// by score descending.
    pub fn search_with(
        &self,
        query: &BagOfWords,
        top_k: usize,
        scoring: ScoringFunction,
    ) -> Vec<(u64, f64)> {
        self.search_filtered(query, top_k, scoring, |_| true)
    }

    /// Search restricted to documents accepted by `filter` (called with the
    /// external document id). The filter is applied *while* streaming
    /// candidates into the top-k heap, so the result contains up to `top_k`
    /// accepted documents no matter how selective the filter is — callers
    /// never need to over-fetch.
    pub fn search_filtered(
        &self,
        query: &BagOfWords,
        top_k: usize,
        scoring: ScoringFunction,
        filter: impl Fn(u64) -> bool,
    ) -> Vec<(u64, f64)> {
        if self.is_empty() || top_k == 0 {
            return Vec::new();
        }
        let cursors = match scoring {
            ScoringFunction::Bm25(params) => self.bm25_cursors(query, params),
            ScoringFunction::LmDirichlet { mu } => self.lm_cursors(query, mu),
        };
        if self.doc_ids.len() <= TAAT_MAX_DOCS {
            self.scan_taat(cursors, top_k, scoring, filter)
        } else {
            self.scan_daat(cursors, top_k, scoring, filter)
        }
    }

    /// Build one scoring cursor per query term that the index knows.
    ///
    /// IDF comes from the precomputed table when it is fresh, or — in the
    /// incremental-ingestion mode (an automatic refresh ratio is set) — from
    /// the *stale* table for terms it covers: the refresh policy bounds how
    /// far the cached values can drift, and terms added since the last
    /// refresh fall back to an exact on-the-fly computation.
    fn bm25_cursors(&self, query: &BagOfWords, _params: Bm25Params) -> Vec<Cursor<'_>> {
        let n = self.len() as f64;
        let finalized = self.is_finalized();
        let use_stale = self.idf_refresh_ratio.is_some();
        query
            .iter()
            .filter_map(|(term, _qf)| {
                let &tid = self.term_ids.get(term)?;
                let postings = &self.postings[tid as usize];
                if postings.is_empty() {
                    return None;
                }
                let idf = if finalized || (use_stale && (tid as usize) < self.idf_cache.len()) {
                    self.idf_cache[tid as usize]
                } else {
                    let df = if self.dead_docs == 0 {
                        postings.len()
                    } else {
                        postings.iter().filter(|p| !self.is_dead(p.doc)).count()
                    };
                    if df == 0 {
                        return None;
                    }
                    bm25_idf(n, df as f64)
                };
                Some(Cursor {
                    postings,
                    pos: 0,
                    weight: idf,
                    background: 0.0,
                })
            })
            .collect()
    }

    fn lm_cursors(&self, query: &BagOfWords, mu: f64) -> Vec<Cursor<'_>> {
        // `term_totals` still includes tombstoned occurrences until the next
        // `compact()`; the background model is therefore as stale as the
        // tombstone count, which the compaction policy bounds.
        let corpus_len = (self.total_length - self.dead_length).max(1) as f64;
        query
            .iter()
            .filter_map(|(term, qf)| {
                let &tid = self.term_ids.get(term)?;
                let postings = &self.postings[tid as usize];
                let cf = self.term_totals[tid as usize] as f64;
                if postings.is_empty() || cf == 0.0 {
                    return None;
                }
                Some(Cursor {
                    postings,
                    pos: 0,
                    weight: f64::from(qf),
                    background: mu * (cf / corpus_len),
                })
            })
            .collect()
    }

    /// Reference implementation of the pre-optimization query path: score
    /// every touched document into a `HashMap`, then sort. Kept for the
    /// estimator-parity tests and as the in-process baseline of the
    /// throughput benchmarks; production queries use
    /// [`search_with`](Self::search_with).
    pub fn search_exhaustive(
        &self,
        query: &BagOfWords,
        top_k: usize,
        scoring: ScoringFunction,
    ) -> Vec<(u64, f64)> {
        if self.is_empty() {
            return Vec::new();
        }
        let avgdl = self.avg_doc_length().max(1e-9);
        let cursors = match scoring {
            ScoringFunction::Bm25(params) => self.bm25_cursors(query, params),
            ScoringFunction::LmDirichlet { mu } => self.lm_cursors(query, mu),
        };
        let mut scores: HashMap<u64, f64> = HashMap::new();
        for cursor in &cursors {
            for posting in cursor.postings {
                if self.is_dead(posting.doc) {
                    continue;
                }
                let doc = posting.doc as usize;
                let dl = self.doc_lengths[doc] as f64;
                let tf = f64::from(posting.term_freq);
                let contribution = match scoring {
                    ScoringFunction::Bm25(params) => {
                        let denom = tf + params.k1 * (1.0 - params.b + params.b * dl / avgdl);
                        cursor.weight * tf * (params.k1 + 1.0) / denom
                    }
                    ScoringFunction::LmDirichlet { mu } => {
                        let smoothed = (tf + cursor.background) / (dl + mu);
                        let background = cursor.background / (dl + mu);
                        cursor.weight * (smoothed / background).ln()
                    }
                };
                *scores.entry(self.doc_ids[doc]).or_insert(0.0) += contribution;
            }
        }
        let mut tk = TopK::new(top_k);
        for (id, score) in scores {
            if score > 0.0 {
                tk.push(id, score);
            }
        }
        tk.into_sorted_vec()
    }

    /// Term-at-a-time scan: accumulate every term's contributions into a
    /// dense per-document score array, then stream the touched documents
    /// into the top-k heap. One branch-free addition per posting — the
    /// fastest strategy while the score array fits comfortably in memory
    /// (up to [`TAAT_MAX_DOCS`] documents); larger corpora use the
    /// document-at-a-time merge instead.
    fn scan_taat(
        &self,
        cursors: Vec<Cursor<'_>>,
        top_k: usize,
        scoring: ScoringFunction,
        filter: impl Fn(u64) -> bool,
    ) -> Vec<(u64, f64)> {
        let avgdl = self.avg_doc_length().max(1e-9);
        let mut scores = vec![0.0f64; self.doc_ids.len()];
        let mut touched: Vec<u32> = Vec::new();
        for cursor in &cursors {
            for posting in cursor.postings {
                let doc = posting.doc as usize;
                let dl = self.doc_lengths[doc] as f64;
                let tf = f64::from(posting.term_freq);
                let contribution = match scoring {
                    ScoringFunction::Bm25(params) => {
                        let denom = tf + params.k1 * (1.0 - params.b + params.b * dl / avgdl);
                        cursor.weight * tf * (params.k1 + 1.0) / denom
                    }
                    ScoringFunction::LmDirichlet { mu } => {
                        let smoothed = (tf + cursor.background) / (dl + mu);
                        let background = cursor.background / (dl + mu);
                        cursor.weight * (smoothed / background).ln()
                    }
                };
                // Both scoring functions only produce positive
                // contributions, so a zero score means "untouched".
                if scores[doc] == 0.0 {
                    touched.push(posting.doc);
                }
                scores[doc] += contribution;
            }
        }
        let mut tk = TopK::new(top_k);
        for &doc in &touched {
            if self.is_dead(doc) {
                continue;
            }
            let score = scores[doc as usize];
            if score > 0.0 && tk.would_accept(score) {
                let id = self.doc_ids[doc as usize];
                if filter(id) {
                    tk.push(id, score);
                }
            }
        }
        tk.into_sorted_vec()
    }

    /// Document-at-a-time scan: merge the posting cursors in dense-doc
    /// order, score each touched document once, and keep the best `top_k`.
    fn scan_daat(
        &self,
        mut cursors: Vec<Cursor<'_>>,
        top_k: usize,
        scoring: ScoringFunction,
        filter: impl Fn(u64) -> bool,
    ) -> Vec<(u64, f64)> {
        let avgdl = self.avg_doc_length().max(1e-9);
        let mut tk = TopK::new(top_k);
        // Min-heap of (dense doc, cursor index) — postings are sorted by
        // dense doc, so repeatedly draining the minimum visits each touched
        // document exactly once, in order.
        let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<(u32, usize)>> = cursors
            .iter()
            .enumerate()
            .map(|(ci, c)| std::cmp::Reverse((c.postings[c.pos].doc, ci)))
            .collect();
        while let Some(&std::cmp::Reverse((doc, _))) = heap.peek() {
            let dl = self.doc_lengths[doc as usize] as f64;
            let mut score = 0.0;
            while let Some(&std::cmp::Reverse((d, ci))) = heap.peek() {
                if d != doc {
                    break;
                }
                heap.pop();
                let cursor = &mut cursors[ci];
                let tf = f64::from(cursor.postings[cursor.pos].term_freq);
                score += match scoring {
                    ScoringFunction::Bm25(params) => {
                        let denom = tf + params.k1 * (1.0 - params.b + params.b * dl / avgdl);
                        cursor.weight * tf * (params.k1 + 1.0) / denom
                    }
                    ScoringFunction::LmDirichlet { mu } => {
                        // log P(t|d) with Dirichlet smoothing, weighted by
                        // query tf and normalized against the pure-background
                        // score so only matching terms contribute.
                        let smoothed = (tf + cursor.background) / (dl + mu);
                        let background = cursor.background / (dl + mu);
                        cursor.weight * (smoothed / background).ln()
                    }
                };
                cursor.pos += 1;
                if cursor.pos < cursor.postings.len() {
                    heap.push(std::cmp::Reverse((cursor.postings[cursor.pos].doc, ci)));
                }
            }
            if score > 0.0 && !self.is_dead(doc) {
                let id = self.doc_ids[doc as usize];
                if tk.would_accept(score) && filter(id) {
                    tk.push(id, score);
                }
            }
        }
        tk.into_sorted_vec()
    }
}

/// Largest corpus for which queries use the dense term-at-a-time score
/// array (8 bytes per document, allocated per query). Above this the index
/// switches to the allocation-light document-at-a-time merge.
const TAAT_MAX_DOCS: usize = 1 << 16;

/// BM25+-style IDF, never negative.
#[inline]
fn bm25_idf(n: f64, df: f64) -> f64 {
    ((n - df + 0.5) / (df + 0.5) + 1.0).ln()
}

/// A scoring cursor over one query term's posting list.
///
/// `weight` is the term's precomputed query-independent factor (IDF for
/// BM25, query term frequency for LM-Dirichlet); `background` is the
/// LM-Dirichlet `mu·P(t|corpus)` term (unused by BM25).
struct Cursor<'a> {
    postings: &'a [Posting],
    pos: usize,
    weight: f64,
    background: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bow(words: &[&str]) -> BagOfWords {
        BagOfWords::from_tokens(words.iter().copied())
    }

    fn sample_index() -> InvertedIndex {
        let mut idx = InvertedIndex::new();
        idx.add(
            1,
            &bow(&["pemetrexed", "antifolate", "synthase", "inhibitor"]),
        );
        idx.add(2, &bow(&["citric", "acid", "anticoagulant"]));
        idx.add(3, &bow(&["geneticin", "aminoglycoside", "antibiotic"]));
        idx.add(4, &bow(&["synthase", "enzyme", "target", "reductase"]));
        idx
    }

    #[test]
    fn bm25_ranks_matching_docs_first() {
        let idx = sample_index();
        let results = idx.search(&bow(&["synthase", "inhibitor"]), 4);
        assert_eq!(results[0].0, 1, "doc 1 matches both terms");
        assert!(results.iter().any(|(id, _)| *id == 4));
        assert!(!results.iter().any(|(id, _)| *id == 2));
    }

    #[test]
    fn bm25_scores_positive_and_sorted() {
        let idx = sample_index();
        let results = idx.search(&bow(&["synthase"]), 10);
        assert!(!results.is_empty());
        for w in results.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        assert!(results.iter().all(|(_, s)| *s > 0.0));
    }

    #[test]
    fn rare_term_scores_higher_than_common() {
        let mut idx = InvertedIndex::new();
        for i in 0..20 {
            idx.add(i, &bow(&["common", "filler"]));
        }
        idx.add(100, &bow(&["common", "rare"]));
        let common = idx.search(&bow(&["common"]), 1)[0].1;
        let rare = idx.search(&bow(&["rare"]), 1)[0].1;
        assert!(rare > common, "IDF should boost the rare term");
    }

    #[test]
    fn lm_dirichlet_ranks_matching_docs() {
        let idx = sample_index();
        let results = idx.search_with(
            &bow(&["synthase", "enzyme"]),
            4,
            ScoringFunction::LmDirichlet { mu: 100.0 },
        );
        assert_eq!(results[0].0, 4);
        assert!(results.iter().all(|(_, s)| *s > 0.0));
    }

    #[test]
    fn empty_query_and_unknown_terms() {
        let idx = sample_index();
        assert!(idx.search(&BagOfWords::new(), 5).is_empty());
        assert!(idx.search(&bow(&["zzzznotaword"]), 5).is_empty());
    }

    #[test]
    fn empty_index_returns_nothing() {
        let idx = InvertedIndex::new();
        assert!(idx.search(&bow(&["anything"]), 5).is_empty());
        assert_eq!(idx.avg_doc_length(), 0.0);
    }

    #[test]
    fn term_frequency_increases_score() {
        let mut idx = InvertedIndex::new();
        idx.add(
            1,
            &BagOfWords::from_tokens(["drug", "drug", "drug", "other"]),
        );
        idx.add(
            2,
            &BagOfWords::from_tokens(["drug", "other", "filler", "words"]),
        );
        let results = idx.search(&bow(&["drug"]), 2);
        assert_eq!(results[0].0, 1);
    }

    #[test]
    fn statistics() {
        let idx = sample_index();
        assert_eq!(idx.len(), 4);
        assert_eq!(idx.doc_freq("synthase"), 2);
        assert_eq!(idx.doc_freq("missing"), 0);
        assert!(idx.vocabulary_size() >= 10);
        assert!(idx.avg_doc_length() > 3.0);
    }

    #[test]
    fn top_k_truncates() {
        let idx = sample_index();
        let results = idx.search(&bow(&["synthase"]), 1);
        assert_eq!(results.len(), 1);
    }

    #[test]
    fn serde_roundtrip() {
        let idx = sample_index();
        let json = serde_json::to_string(&idx).unwrap();
        let back: InvertedIndex = serde_json::from_str(&json).unwrap();
        assert_eq!(back.len(), 4);
        let results = back.search(&bow(&["synthase"]), 2);
        assert_eq!(results.len(), 2);
    }

    #[test]
    fn finalize_does_not_change_scores() {
        let mut idx = sample_index();
        let before = idx.search(&bow(&["synthase", "inhibitor"]), 4);
        idx.finalize();
        assert!(idx.is_finalized());
        let after = idx.search(&bow(&["synthase", "inhibitor"]), 4);
        assert_eq!(before, after);
        // Adding after finalize invalidates the cache but keeps correctness.
        idx.add(9, &bow(&["synthase"]));
        assert!(!idx.is_finalized());
        assert!(idx
            .search(&bow(&["synthase"]), 5)
            .iter()
            .any(|(id, _)| *id == 9));
    }

    #[test]
    fn filtered_search_fills_top_k() {
        // 30 even docs about "alpha", 5 odd docs about "alpha" with lower
        // term frequency: a filter for odd ids must still return all 5 odd
        // matches even though the top of the unfiltered ranking is even.
        let mut idx = InvertedIndex::new();
        for i in 0..30u64 {
            idx.add(i * 2, &BagOfWords::from_tokens(["alpha", "alpha", "alpha"]));
        }
        for i in 0..5u64 {
            idx.add(
                i * 2 + 1,
                &BagOfWords::from_tokens(["alpha", "pad", "pad", "pad"]),
            );
        }
        let odd = idx.search_filtered(&bow(&["alpha"]), 5, ScoringFunction::default(), |id| {
            id % 2 == 1
        });
        assert_eq!(odd.len(), 5, "filter-aware search must fill top_k");
        assert!(odd.iter().all(|(id, _)| id % 2 == 1));
    }

    #[test]
    fn taat_and_daat_strategies_agree() {
        let mut idx = InvertedIndex::new();
        for i in 0..50u64 {
            let mut words = vec!["common"];
            if i % 3 == 0 {
                words.push("fizz");
            }
            if i % 5 == 0 {
                words.push("buzz");
            }
            if i % 7 == 0 {
                words.extend(["rare", "rare"]);
            }
            idx.add(i, &BagOfWords::from_tokens(words));
        }
        idx.finalize();
        for scoring in [
            ScoringFunction::default(),
            ScoringFunction::LmDirichlet { mu: 50.0 },
        ] {
            let query = bow(&["common", "fizz", "rare"]);
            let taat = idx.scan_taat(idx_cursors(&idx, &query, scoring), 8, scoring, |_| true);
            let daat = idx.scan_daat(idx_cursors(&idx, &query, scoring), 8, scoring, |_| true);
            assert_eq!(taat, daat, "scan strategies must rank identically");
        }
    }

    fn idx_cursors<'a>(
        idx: &'a InvertedIndex,
        query: &BagOfWords,
        scoring: ScoringFunction,
    ) -> Vec<Cursor<'a>> {
        match scoring {
            ScoringFunction::Bm25(params) => idx.bm25_cursors(query, params),
            ScoringFunction::LmDirichlet { mu } => idx.lm_cursors(query, mu),
        }
    }

    #[test]
    fn remove_tombstones_until_compact() {
        let mut idx = sample_index();
        idx.finalize();
        assert!(idx.remove(4));
        assert!(!idx.remove(4), "double removal is a no-op");
        assert!(!idx.remove(99), "unknown id is a no-op");
        assert_eq!(idx.len(), 3);
        assert_eq!(idx.num_tombstoned(), 1);
        // Doc 4 no longer surfaces, for any scan strategy.
        let results = idx.search(&bow(&["synthase"]), 10);
        assert!(!results.iter().any(|(id, _)| *id == 4));
        assert!(results.iter().any(|(id, _)| *id == 1));
        let exhaustive = idx.search_exhaustive(&bow(&["synthase"]), 10, ScoringFunction::default());
        assert!(!exhaustive.iter().any(|(id, _)| *id == 4));
        // Live document frequency excludes the tombstoned doc.
        assert_eq!(idx.doc_freq("synthase"), 1);
        idx.compact();
        assert_eq!(idx.len(), 3);
        assert_eq!(idx.num_tombstoned(), 0);
        assert!(idx.is_finalized());
        assert!(!idx.search(&bow(&["synthase"]), 10).is_empty());
    }

    #[test]
    fn compact_matches_fresh_build_of_survivors() {
        // Incremental adds + removes, then compact: scores must be
        // identical to an index built over only the surviving elements.
        let mut incremental = InvertedIndex::new();
        let corpora: Vec<(u64, Vec<&str>)> = vec![
            (1, vec!["alpha", "beta", "gamma"]),
            (2, vec!["beta", "beta", "delta"]),
            (3, vec!["alpha", "delta", "epsilon"]),
            (4, vec!["gamma", "gamma", "zeta"]),
            (5, vec!["alpha", "zeta"]),
        ];
        for (id, words) in &corpora {
            incremental.add(*id, &BagOfWords::from_tokens(words.iter().copied()));
        }
        incremental.remove(2);
        incremental.remove(4);
        incremental.compact();

        let mut fresh = InvertedIndex::new();
        for (id, words) in &corpora {
            if *id != 2 && *id != 4 {
                fresh.add(*id, &BagOfWords::from_tokens(words.iter().copied()));
            }
        }
        fresh.finalize();

        for query in [&["alpha"][..], &["beta", "delta"], &["zeta", "gamma"]] {
            for scoring in [
                ScoringFunction::default(),
                ScoringFunction::LmDirichlet { mu: 100.0 },
            ] {
                let a = incremental.search_with(&bow(query), 5, scoring);
                let b = fresh.search_with(&bow(query), 5, scoring);
                assert_eq!(a.len(), b.len(), "query {query:?}");
                for (x, y) in a.iter().zip(b.iter()) {
                    assert_eq!(x.0, y.0, "query {query:?}");
                    assert!((x.1 - y.1).abs() < 1e-12, "query {query:?}: {x:?} vs {y:?}");
                }
            }
        }
    }

    #[test]
    fn lazy_idf_refresh_bounds_staleness() {
        let mut idx = sample_index();
        idx.set_idf_refresh_ratio(Some(0.3));
        idx.finalize();
        assert_eq!(idx.idf_staleness(), 0);
        // One mutation: 1 <= 0.3 * 5 live docs, so the cache stays stale.
        idx.add(10, &bow(&["synthase", "novel"]));
        assert_eq!(idx.idf_staleness(), 1);
        assert!(!idx.is_finalized());
        // Queries still see the new doc (stale IDF, exact postings).
        assert!(idx
            .search(&bow(&["synthase"]), 10)
            .iter()
            .any(|(id, _)| *id == 10));
        // Crossing the ratio (2 > 0.3 × 6) triggers the automatic refresh.
        idx.add(11, &bow(&["synthase"]));
        assert!(idx.is_finalized(), "refresh should have fired");
        assert_eq!(idx.idf_staleness(), 0);
    }

    #[test]
    fn serde_roundtrip_preserves_tombstones() {
        let mut idx = sample_index();
        idx.remove(2);
        let json = serde_json::to_string(&idx).unwrap();
        let back: InvertedIndex = serde_json::from_str(&json).unwrap();
        assert_eq!(back.len(), 3);
        assert_eq!(back.num_tombstoned(), 1);
        assert!(!back
            .search(&bow(&["citric", "acid"]), 5)
            .iter()
            .any(|(id, _)| *id == 2));
        // The id map is rebuilt lazily: removing after a roundtrip works.
        let mut back = back;
        assert!(back.remove(3));
        assert_eq!(back.len(), 2);
    }

    #[test]
    fn remove_preexisting_doc_after_roundtrip_and_add() {
        // `add` must rebuild the serde-skipped id map before inserting, or
        // pre-roundtrip documents become unremovable once anything new has
        // been indexed.
        let idx = sample_index();
        let json = serde_json::to_string(&idx).unwrap();
        let mut back: InvertedIndex = serde_json::from_str(&json).unwrap();
        back.add(50, &bow(&["fresh", "doc"]));
        assert!(back.remove(1), "pre-roundtrip doc must be removable");
        assert!(!back
            .search(&bow(&["pemetrexed"]), 5)
            .iter()
            .any(|(id, _)| *id == 1));
    }

    #[test]
    fn filtered_matches_postfilter_of_exhaustive() {
        let idx = sample_index();
        let all = idx.search(&bow(&["synthase", "enzyme", "acid"]), 10);
        let filtered = idx.search_filtered(
            &bow(&["synthase", "enzyme", "acid"]),
            10,
            ScoringFunction::default(),
            |id| id != 2,
        );
        let expected: Vec<(u64, f64)> = all.into_iter().filter(|(id, _)| *id != 2).collect();
        assert_eq!(filtered, expected);
    }
}
