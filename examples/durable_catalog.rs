//! Durable catalog: open a persistent catalog, mutate it, and prove the
//! acknowledged mutations survive a restart — including a hard crash.
//!
//! Run with: `cargo run --release --example durable_catalog [DIR] [MODE]`
//!
//! Modes (default `demo`, which runs open → ingest → reopen in-process):
//!
//! - `crash`: open the catalog at DIR, ingest one document, and die
//!   without any shutdown path the moment the ingest call returns. The
//!   WAL fsyncs before `ingest_document` acks, so even this loses
//!   nothing.
//! - `check`: reopen DIR and assert the crashed run's document is
//!   discoverable.
//!
//! Driving `crash` then `check` as separate processes (or `kill -9`-ing
//! a `crash` run externally) exercises the same recovery path the
//! fault-injection harness in `tests/recovery.rs` sweeps exhaustively.

use cmdl::core::{Cmdl, CmdlConfig, RecoveryReport, SearchMode};
use cmdl::datalake::{synth, Document};

const CRASH_DOC_TITLE: &str = "crash-survivor-note";

fn open(dir: &std::path::Path) -> Cmdl {
    Cmdl::open(dir, CmdlConfig::fast(), || {
        println!("(fresh directory: building the catalog from source)");
        synth::pharma::generate(&synth::pharma::PharmaConfig::tiny()).lake
    })
    .expect("open durable catalog")
}

fn main() {
    let mut args = std::env::args().skip(1);
    let dir = args
        .next()
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::env::temp_dir().join("cmdl-durable-catalog-example"));
    let mode = args.next().unwrap_or_else(|| "demo".into());

    match mode.as_str() {
        "crash" => {
            let mut system = open(&dir);
            system
                .ingest_document(Document::new(
                    CRASH_DOC_TITLE,
                    "PubMed",
                    "Xanthine oxidase inhibition is durable across crashes.",
                ))
                .expect("ingest is fsynced to the WAL before this returns");
            println!("ingest acked; dying without shutdown");
            // Skip every destructor, like a `kill -9` would. The acked
            // ingest is already in the WAL.
            std::process::exit(137);
        }
        "check" => {
            let system = open(&dir);
            let report = system.recovery_report().expect("opened persistently");
            println!("recovery: {report:?}");
            assert!(
                matches!(report, RecoveryReport::Loaded { .. }),
                "check mode expects an existing catalog directory"
            );
            let hits = system.content_search("durable across crashes", SearchMode::Text, 3);
            assert!(
                hits.iter().any(|h| h.label == CRASH_DOC_TITLE),
                "the crashed run's acked ingest must be discoverable, got {hits:?}"
            );
            println!("ok: '{CRASH_DOC_TITLE}' survived the crash and is discoverable");
        }
        "demo" => {
            let _ = std::fs::remove_dir_all(&dir);
            let mut system = open(&dir);
            println!(
                "opened fresh catalog at {} (generation {})",
                dir.display(),
                system.generation()
            );
            system
                .ingest_document(Document::new(
                    "durable-note",
                    "PubMed",
                    "This mutation is fsynced to the WAL before ingest returns.",
                ))
                .expect("ingest");
            drop(system);

            let system = open(&dir);
            let report = system.recovery_report().expect("opened persistently");
            println!("reopened: {report:?}");
            assert!(matches!(report, RecoveryReport::Loaded { .. }));
            let hits = system.content_search("fsynced to the WAL", SearchMode::Text, 3);
            assert!(hits.iter().any(|h| h.label == "durable-note"));
            println!("ok: reopen loaded the segment + WAL tail; ingest survived");
            let _ = std::fs::remove_dir_all(&dir);
        }
        other => {
            eprintln!("unknown mode '{other}' (expected demo | crash | check)");
            std::process::exit(2);
        }
    }
}
