//! The full five-step discovery pipeline of the paper's motivating example
//! (Figure 1): an analyst studying the enzyme "thymidylate synthase" chains
//! keyword search, two cross-modal Doc→Table searches, a joinability search,
//! and a unionability search — all expressed as typed `DiscoveryQuery`
//! values executed against one pinned snapshot of the CMDL system.
//!
//! Run with: `cargo run --example pharma_pipeline`

use cmdl::core::{Cmdl, CmdlConfig, QueryBuilder, SearchMode};
use cmdl::datalake::synth;

fn main() {
    let synth_lake = synth::pharma::generate(&synth::pharma::PharmaConfig::default());
    let mut cmdl = Cmdl::build(synth_lake.lake, CmdlConfig::fast());
    println!("profiling took {:?}", cmdl.profiled.profiling_time);
    let training = cmdl.train_joint(None);
    println!(
        "joint representation: {} epochs, final loss {:.4}",
        training.epochs, training.final_loss
    );

    let k = 3;
    // Pin one generation: every step of the pipeline sees the same catalog.
    let snapshot = cmdl.snapshot();

    // Q1: retrieve documents related to an enzyme.
    let enzyme = snapshot
        .profiled
        .lake
        .table("Enzymes")
        .and_then(|t| t.column("Target"))
        .map(|c| c.values[0].as_text())
        .expect("enzyme exists");
    println!("\nQ1: keyword(\"{enzyme}\", mode: Text)");
    let r1 = QueryBuilder::keyword(&enzyme)
        .mode(SearchMode::Text)
        .top_k(k)
        .execute(&snapshot)
        .expect("valid query");
    for hit in &r1.hits {
        println!("  {:.3}  {}", hit.score, hit.label);
    }

    // Q2: find tables related to the first returned document.
    let doc_idx = r1
        .hits
        .first()
        .and_then(|hit| hit.element)
        .and_then(|id| snapshot.profiled.lake.document_index(id))
        .unwrap_or(0);
    println!("\nQ2: cross_modal_doc({doc_idx}, top_k: {k})");
    let r2 = QueryBuilder::cross_modal_doc(doc_idx)
        .top_k(k)
        .execute(&snapshot)
        .expect("valid document");
    for hit in &r2.hits {
        println!("  {:.3}  {}", hit.score, hit.label);
    }

    // Q3: find tables related to another returned document.
    let doc_idx_3 = r1
        .hits
        .get(1)
        .and_then(|hit| hit.element)
        .and_then(|id| snapshot.profiled.lake.document_index(id))
        .unwrap_or(doc_idx);
    println!("\nQ3: cross_modal_doc({doc_idx_3}, top_k: {k})");
    let r3 = QueryBuilder::cross_modal_doc(doc_idx_3)
        .top_k(k)
        .execute(&snapshot)
        .expect("valid document");
    for hit in &r3.hits {
        println!("  {:.3}  {}", hit.score, hit.label);
    }

    // Q4: find tables joinable with a table discovered in Q3.
    let selected = r3
        .hits
        .first()
        .or(r2.hits.first())
        .and_then(|hit| hit.table.clone())
        .unwrap_or_else(|| "Drugs".to_string());
    println!("\nQ4: joinable(\"{selected}\", top_k: {k})");
    let r4 = QueryBuilder::joinable(&selected)
        .top_k(k)
        .execute(&snapshot)
        .expect("table exists");
    for hit in &r4.hits {
        println!("  {:.3}  {}", hit.score, hit.label);
    }
    let pkfk = QueryBuilder::pkfk()
        .top_k(usize::MAX)
        .execute(&snapshot)
        .expect("valid query");
    println!("  (PK-FK links in the lake: {})", pkfk.hits.len());

    // Q5: find tables unionable with a table discovered in Q4.
    let selected_5 = r4
        .hits
        .first()
        .and_then(|hit| hit.table.clone())
        .unwrap_or(selected);
    println!("\nQ5: unionable(\"{selected_5}\", top_k: {k})");
    let r5 = QueryBuilder::unionable(&selected_5)
        .top_k(k)
        .execute(&snapshot)
        .expect("table exists");
    for hit in &r5.hits {
        println!(
            "  {:.3}  {}  (mapped columns: {})",
            hit.score,
            hit.label,
            hit.union.as_ref().map(|u| u.mapping.len()).unwrap_or(0)
        );
    }
}
