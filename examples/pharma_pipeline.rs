//! The full five-step discovery pipeline of the paper's motivating example
//! (Figure 1): an analyst studying the enzyme "thymidylate synthase" chains
//! keyword search, two cross-modal Doc→Table searches, a joinability search,
//! and a unionability search — all over one CMDL system.
//!
//! Run with: `cargo run --example pharma_pipeline`

use cmdl::core::{Cmdl, CmdlConfig, SearchMode};
use cmdl::datalake::synth;

fn main() {
    let synth_lake = synth::pharma::generate(&synth::pharma::PharmaConfig::default());
    let mut cmdl = Cmdl::build(synth_lake.lake, CmdlConfig::fast());
    println!("profiling took {:?}", cmdl.profiled.profiling_time);
    let training = cmdl.train_joint(None);
    println!(
        "joint representation: {} epochs, final loss {:.4}",
        training.epochs, training.final_loss
    );

    let k = 3;

    // Q1: retrieve documents related to an enzyme.
    let enzyme = cmdl
        .profiled
        .lake
        .table("Enzymes")
        .and_then(|t| t.column("Target"))
        .map(|c| c.values[0].as_text())
        .expect("enzyme exists");
    println!("\nQ1: content_search(\"{enzyme}\", mode: Text)");
    let r1 = cmdl.content_search(&enzyme, SearchMode::Text, k);
    for d in &r1 {
        println!("  {:.3}  {}", d.score, d.label);
    }

    // Q2: find tables related to the first returned document.
    let doc_idx = r1
        .first()
        .and_then(|r| r.element)
        .and_then(|id| cmdl.profiled.lake.document_index(id))
        .unwrap_or(0);
    println!("\nQ2: crossModal_search(r1[0], top_n: {k})");
    let r2 = cmdl.cross_modal_search(doc_idx, k).expect("valid document");
    for t in &r2 {
        println!("  {:.3}  {}", t.score, t.label);
    }

    // Q3: find tables related to another returned document.
    let doc_idx_3 = r1
        .get(1)
        .and_then(|r| r.element)
        .and_then(|id| cmdl.profiled.lake.document_index(id))
        .unwrap_or(doc_idx);
    println!("\nQ3: crossModal_search(r1[1], top_n: {k})");
    let r3 = cmdl
        .cross_modal_search(doc_idx_3, k)
        .expect("valid document");
    for t in &r3 {
        println!("  {:.3}  {}", t.score, t.label);
    }

    // Q4: find tables joinable with a table discovered in Q3.
    let selected = r3
        .first()
        .or(r2.first())
        .and_then(|r| r.table.clone())
        .unwrap_or_else(|| "Drugs".to_string());
    println!("\nQ4: pkfk/joinable(\"{selected}\", top_n: {k})");
    let r4 = cmdl.joinable(&selected, k).expect("table exists");
    for t in &r4 {
        println!("  {:.3}  {}", t.score, t.label);
    }
    println!("  (PK-FK links in the lake: {})", cmdl.pkfk().len());

    // Q5: find tables unionable with a table discovered in Q4.
    let selected_5 = r4.first().and_then(|r| r.table.clone()).unwrap_or(selected);
    println!("\nQ5: unionable(\"{selected_5}\", top_n: {k})");
    let r5 = cmdl.unionable(&selected_5, k).expect("table exists");
    for u in &r5 {
        println!(
            "  {:.3}  {}  (mapped columns: {})",
            u.score,
            u.table,
            u.mapping.len()
        );
    }
}
