//! Unionable- and joinable-table discovery over an open-government style
//! lake, comparing CMDL's ensemble measure against the Aurum and D3L
//! baselines on the same profiled lake.
//!
//! Run with: `cargo run --example union_discovery`

use cmdl::baselines::{Aurum, D3l};
use cmdl::core::{Cmdl, CmdlConfig, QueryBuilder, UnionDiscovery};
use cmdl::datalake::synth;

fn main() {
    let synth_lake = synth::ukopen::generate(&synth::ukopen::UkOpenConfig::default());
    let query_table = "education_spending_0";
    let truth = synth_lake
        .truth
        .unionable_for(query_table)
        .cloned()
        .unwrap_or_default();
    let cmdl = Cmdl::build(synth_lake.lake, CmdlConfig::fast());

    println!("query table: {query_table}");
    println!("ground-truth unionable tables: {}", truth.len());

    let k = 8;

    // CMDL ensemble.
    let union = UnionDiscovery::new(&cmdl.profiled, &cmdl.config);
    println!("\nCMDL (ensemble of name/containment/numeric/semantic):");
    for r in union.unionable_tables(query_table, k) {
        let hit = if truth.contains(&r.table) { "✓" } else { " " };
        println!("  {hit} {:.3}  {}", r.score, r.table);
    }

    // Aurum baseline.
    let aurum = Aurum::new(&cmdl.profiled, &cmdl.config);
    println!("\nAurum (max of schema and Jaccard similarity):");
    for (table, score) in aurum.unionable_tables(query_table, k) {
        let hit = if truth.contains(&table) { "✓" } else { " " };
        println!("  {hit} {score:.3}  {table}");
    }

    // D3L baseline.
    let d3l = D3l::new(&cmdl.profiled, &cmdl.config);
    println!("\nD3L (weighted Euclidean over per-signal distances):");
    for (table, score) in d3l.unionable_tables(query_table, k) {
        let hit = if truth.contains(&table) { "✓" } else { " " };
        println!("  {hit} {score:.3}  {table}");
    }

    // Joinability through the shared region_code columns, via the unified
    // typed-query API (the `UnionDiscovery` calls above use the low-level
    // engine directly; production queries go through `execute`).
    println!("\nCMDL joinable tables for `regions`:");
    let joinable = cmdl
        .execute(&QueryBuilder::joinable("regions").top_k(5).build())
        .expect("table exists");
    for hit in &joinable.hits {
        println!("  {:.3}  {}", hit.score, hit.label);
    }

    // The same query again as unionability, with score provenance: the
    // breakdown names the ensemble signal that anchored each mapping.
    println!("\nCMDL unionable tables for `{query_table}` (with provenance):");
    let unionable = cmdl
        .execute(&QueryBuilder::unionable(query_table).top_k(3).build())
        .expect("table exists");
    for hit in &unionable.hits {
        let dominant = hit
            .breakdown
            .signals
            .iter()
            .max_by(|a, b| {
                (a.value * a.weight)
                    .partial_cmp(&(b.value * b.weight))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|c| format!("{:?}", c.signal))
            .unwrap_or_default();
        println!(
            "  {:.3}  {}  (dominant signal: {dominant})",
            hit.score, hit.label
        );
    }
}
