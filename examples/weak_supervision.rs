//! A look inside CMDL's weak-supervision machinery: generate the labeled
//! training dataset from the system's own indexes, inspect the estimated
//! labeling-function accuracies, and see how gold labels disable imprecise
//! labeling functions.
//!
//! Run with: `cargo run --example weak_supervision`

use cmdl::core::{Cmdl, CmdlConfig, QueryBuilder, SearchMode, TrainingDatasetGenerator};
use cmdl::datalake::synth;
use cmdl::weaklabel::GoldLabel;

fn main() {
    let synth_lake = synth::pharma::generate(&synth::pharma::PharmaConfig::tiny());
    let truth = synth_lake.truth.clone();
    let cmdl = Cmdl::build(synth_lake.lake, CmdlConfig::fast());

    // 1. Plain weakly-supervised labeling (no gold labels).
    let generator = TrainingDatasetGenerator::new(&cmdl.profiled, &cmdl.indexes, &cmdl.config);
    let (dataset, report) = generator.generate(None, None);
    println!(
        "sampled {} documents x {} columns -> {} covered candidate pairs, {} training pairs",
        report.sampled_docs,
        report.sampled_columns,
        report.candidate_pairs,
        dataset.len()
    );
    println!("estimated labeling-function accuracies (generative model):");
    for (name, acc) in &report.lf_accuracies {
        println!("  {name:<20} {acc:.3}");
    }
    println!(
        "positive pairs (relatedness >= 0.5): {}",
        dataset.num_positive(0.5)
    );

    // 2. Gold-label tuning: build a tiny gold set from the ground truth and
    //    re-run labeling.
    let mut gold = Vec::new();
    for (doc_idx, tables) in truth.doc_to_table.iter().take(6) {
        let Some(doc_id) = cmdl.profiled.lake.document_id(*doc_idx) else {
            continue;
        };
        for table in tables.iter().take(1) {
            for col in cmdl.profiled.columns_of_table(table).into_iter().take(1) {
                gold.push(GoldLabel::new(doc_id.raw(), col.raw(), true));
            }
        }
        if let Some(col) = cmdl.profiled.columns_of_table("Trials").first() {
            gold.push(GoldLabel::new(doc_id.raw(), col.raw(), false));
        }
    }
    let (_, tuned_report) = generator.generate(Some(&gold), None);
    println!("\ngold-label tuning with {} gold pairs:", gold.len());
    for r in &tuned_report.gold_reports {
        println!(
            "  {:<20} accuracy {:.3} on {:>3} pairs -> {}",
            r.name,
            r.accuracy,
            r.evaluated,
            if r.enabled { "kept" } else { "disabled" }
        );
    }

    // 3. The indexes that powered the labeling functions serve discovery
    //    queries too — one typed query over the same system, with the BM25
    //    signal visible in the score breakdown.
    let response = cmdl
        .execute(
            &QueryBuilder::keyword("inhibitor")
                .mode(SearchMode::Text)
                .top_k(3)
                .build(),
        )
        .expect("valid query");
    println!("\nkeyword(\"inhibitor\") over the same indexes:");
    for hit in &response.hits {
        println!(
            "  {:.3}  {}  (signals: {:?})",
            hit.score,
            hit.label,
            hit.breakdown
                .signals
                .iter()
                .map(|c| c.signal)
                .collect::<Vec<_>>()
        );
    }
}
