//! Quickstart: build a CMDL system over a synthetic pharmaceutical data lake,
//! train the joint representation, and run one discovery query of each kind
//! through the unified `DiscoveryQuery` API.
//!
//! Run with: `cargo run --example quickstart`

use cmdl::core::{Cmdl, CmdlConfig, QueryBuilder, SearchMode};
use cmdl::datalake::synth;

fn main() {
    // 1. Generate a small pharmaceutical data lake (tables + abstracts).
    let synth_lake = synth::pharma::generate(&synth::pharma::PharmaConfig::tiny());
    println!(
        "lake: {} tables, {} columns, {} documents",
        synth_lake.lake.num_tables(),
        synth_lake.lake.num_columns(),
        synth_lake.lake.num_documents()
    );

    // 2. Profile, index, and train the cross-modal joint representation.
    let mut cmdl = Cmdl::build(synth_lake.lake, CmdlConfig::fast());
    let report = cmdl.train_joint(None);
    println!(
        "joint model trained in {} epochs ({:.2}s, error rate {:.1}%)",
        report.epochs,
        report.duration.as_secs_f64(),
        report.error_rate * 100.0
    );

    // 3. Keyword search over the documents (Q1 of the paper's example).
    //    Every query kind goes through the same typed builder + envelope.
    let docs = cmdl
        .execute(
            &QueryBuilder::keyword("thymidylate synthase inhibitor")
                .mode(SearchMode::Text)
                .top_k(3)
                .build(),
        )
        .expect("valid query");
    println!(
        "\nQ1: documents about 'thymidylate synthase' (generation {}, {}us):",
        docs.generation, docs.elapsed_micros
    );
    for hit in &docs.hits {
        println!("  {:.3}  {}", hit.score, hit.label);
    }

    // 4. Cross-modal Doc→Table search (Q2). The score breakdown explains
    //    which signals produced each hit.
    let tables = cmdl
        .execute(
            &QueryBuilder::cross_modal_text(
                "Pemetrexed is a novel antifolate that inhibits thymidylate synthase",
            )
            .top_k(3)
            .build(),
        )
        .expect("valid query");
    println!("\nQ2: tables related to the highlighted sentence:");
    for hit in &tables.hits {
        let signals: Vec<String> = hit
            .breakdown
            .signals
            .iter()
            .map(|c| format!("{:?}={:.3}x{:.1}", c.signal, c.value, c.weight))
            .collect();
        println!(
            "  {:.3}  {}  [{}]",
            hit.score,
            hit.label,
            signals.join(", ")
        );
    }

    // 5. Joinable and unionable tables (Q4/Q5), batched in one parallel call
    //    against a single pinned snapshot.
    let batch = cmdl.execute_many(&[
        QueryBuilder::joinable("Drugs").top_k(3).build(),
        QueryBuilder::unionable("Drugs").top_k(3).build(),
    ]);
    let joinable = batch[0].as_ref().expect("Drugs exists");
    println!("\nQ4: tables joinable with Drugs:");
    for hit in &joinable.hits {
        println!("  {:.3}  {}", hit.score, hit.label);
    }
    let unionable = batch[1].as_ref().expect("Drugs exists");
    println!("\nQ5: tables unionable with Drugs:");
    for hit in &unionable.hits {
        println!("  {:.3}  {}", hit.score, hit.label);
    }

    // 6. The response envelope is wire-ready: serialize a whole response.
    let json = serde_json::to_string(&tables).expect("serializable envelope");
    println!("\nQ2 response envelope: {} bytes of JSON", json.len());
}
