//! Quickstart: build a CMDL system over a synthetic pharmaceutical data lake,
//! train the joint representation, and run one discovery query of each kind.
//!
//! Run with: `cargo run --example quickstart`

use cmdl::core::{Cmdl, CmdlConfig, SearchMode};
use cmdl::datalake::synth;

fn main() {
    // 1. Generate a small pharmaceutical data lake (tables + abstracts).
    let synth_lake = synth::pharma::generate(&synth::pharma::PharmaConfig::tiny());
    println!(
        "lake: {} tables, {} columns, {} documents",
        synth_lake.lake.num_tables(),
        synth_lake.lake.num_columns(),
        synth_lake.lake.num_documents()
    );

    // 2. Profile, index, and train the cross-modal joint representation.
    let mut cmdl = Cmdl::build(synth_lake.lake, CmdlConfig::fast());
    let report = cmdl.train_joint(None);
    println!(
        "joint model trained in {} epochs ({:.2}s, error rate {:.1}%)",
        report.epochs,
        report.duration.as_secs_f64(),
        report.error_rate * 100.0
    );

    // 3. Keyword search over the documents (Q1 of the paper's example).
    let docs = cmdl.content_search("thymidylate synthase inhibitor", SearchMode::Text, 3);
    println!("\nQ1: documents about 'thymidylate synthase':");
    for d in &docs {
        println!("  {:.3}  {}", d.score, d.label);
    }

    // 4. Cross-modal Doc→Table search (Q2).
    let tables = cmdl.cross_modal_search_text(
        "Pemetrexed is a novel antifolate that inhibits thymidylate synthase",
        3,
    );
    println!("\nQ2: tables related to the highlighted sentence:");
    for t in &tables {
        println!("  {:.3}  {}", t.score, t.label);
    }

    // 5. Joinable and unionable tables (Q4/Q5).
    let joinable = cmdl.joinable("Drugs", 3).expect("Drugs exists");
    println!("\nQ4: tables joinable with Drugs:");
    for j in &joinable {
        println!("  {:.3}  {}", j.score, j.label);
    }
    let unionable = cmdl.unionable("Drugs", 3).expect("Drugs exists");
    println!("\nQ5: tables unionable with Drugs:");
    for u in &unionable {
        println!("  {:.3}  {}", u.score, u.table);
    }
}
