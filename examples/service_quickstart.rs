//! Service quickstart: stand up the transport-agnostic `CmdlService` over a
//! synthetic pharma lake, drive it in-process through the bytes-in/bytes-out
//! JSON contract, then boot the std-only HTTP adapter on a loopback port and
//! issue the same requests over a socket (skipped gracefully when the
//! environment denies loopback binds).
//!
//! Run with: `cargo run --example service_quickstart`

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use cmdl::core::{Cmdl, CmdlConfig, QueryBuilder};
use cmdl::datalake::{synth, Column, Table};
use cmdl::server::{serve, CmdlService, HttpConfig, ServiceRequest};

fn main() {
    // 1. Build the catalog and wrap it as a service.
    let lake = synth::pharma::generate(&synth::pharma::PharmaConfig::tiny()).lake;
    let service = Arc::new(CmdlService::new(Cmdl::build(lake, CmdlConfig::fast())));

    // 2. In-process transport: JSON bytes in, JSON bytes out. This is the
    //    whole wire contract — HTTP below is nothing but framing.
    let query = ServiceRequest::Query(QueryBuilder::keyword("enzyme inhibitor").top_k(3).build());
    let request = serde_json::to_string(&query).expect("request serializes");
    let response = service.handle_json_bytes(request.as_bytes());
    println!("query -> {}", String::from_utf8_lossy(&response));

    // 3. Mutations route through the writer gate; reads keep pinning the
    //    previously published snapshot until the batch lands.
    let ingest = ServiceRequest::IngestTable(Table::new(
        "Trial_Sites",
        vec![Column::from_texts(
            "Site",
            ["Boston General", "Lyon Institute"],
        )],
    ));
    let request = serde_json::to_string(&ingest).expect("request serializes");
    let response = service.handle_json_bytes(request.as_bytes());
    println!("ingest -> {}", String::from_utf8_lossy(&response));

    let stats = service.handle_json_bytes(br#""Stats""#);
    println!("stats -> {}", String::from_utf8_lossy(&stats));

    // 4. The HTTP adapter: std-only (TcpListener + a fixed thread pool with
    //    a bounded admission queue) — no async runtime.
    let handle = match serve(Arc::clone(&service), HttpConfig::default()) {
        Ok(handle) => handle,
        Err(err) => {
            println!("(loopback bind denied: {err}; in-process transport shown above is the same contract)");
            return;
        }
    };
    let addr = handle.addr();
    println!("serving on http://{addr}");

    let body = serde_json::to_string(&QueryBuilder::keyword("Lyon").top_k(3).build())
        .expect("query serializes");
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    write!(
        stream,
        "POST /query HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .expect("request written");
    let mut http_response = String::new();
    stream
        .read_to_string(&mut http_response)
        .expect("response read");
    let body = http_response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b)
        .unwrap_or(&http_response);
    println!("POST /query -> {body}");

    handle.shutdown();
    println!("done.");
}
