//! Service quickstart: stand up the transport-agnostic `CmdlService` over a
//! synthetic pharma lake, drive it in-process through the bytes-in/bytes-out
//! JSON contract, then boot an HTTP front end on a loopback port and
//! issue the same requests over a socket (skipped gracefully when the
//! environment denies loopback binds).
//!
//! Run with: `cargo run --example service_quickstart`
//!
//! Pick the transport with `-- --transport pool` (fixed thread pool, the
//! default) or `-- --transport reactor` (epoll readiness loop with request
//! coalescing and the generation-keyed result cache; Linux only). Both
//! serve the identical route surface byte-for-byte.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use cmdl::core::{Cmdl, CmdlConfig, QueryBuilder};
use cmdl::datalake::{synth, Column, Table};
use cmdl::server::{serve, CmdlService, HttpConfig, ServiceRequest};

/// The two HTTP front ends, selected by `--transport`.
enum Transport {
    Pool(cmdl::server::HttpHandle),
    #[cfg(target_os = "linux")]
    Reactor(cmdl::server::ReactorHandle),
}

impl Transport {
    fn addr(&self) -> SocketAddr {
        match self {
            Transport::Pool(handle) => handle.addr(),
            #[cfg(target_os = "linux")]
            Transport::Reactor(handle) => handle.addr(),
        }
    }

    fn shutdown(self) {
        match self {
            Transport::Pool(handle) => {
                handle.shutdown();
            }
            #[cfg(target_os = "linux")]
            Transport::Reactor(handle) => {
                handle.shutdown();
            }
        }
    }
}

fn main() {
    // 1. Build the catalog and wrap it as a service.
    let lake = synth::pharma::generate(&synth::pharma::PharmaConfig::tiny()).lake;
    let service = Arc::new(CmdlService::new(Cmdl::build(lake, CmdlConfig::fast())));

    // 2. In-process transport: JSON bytes in, JSON bytes out. This is the
    //    whole wire contract — HTTP below is nothing but framing.
    let query = ServiceRequest::Query(QueryBuilder::keyword("enzyme inhibitor").top_k(3).build());
    let request = serde_json::to_string(&query).expect("request serializes");
    let response = service.handle_json_bytes(request.as_bytes());
    println!("query -> {}", String::from_utf8_lossy(&response));

    // 3. Mutations route through the writer gate; reads keep pinning the
    //    previously published snapshot until the batch lands.
    let ingest = ServiceRequest::IngestTable(Table::new(
        "Trial_Sites",
        vec![Column::from_texts(
            "Site",
            ["Boston General", "Lyon Institute"],
        )],
    ));
    let request = serde_json::to_string(&ingest).expect("request serializes");
    let response = service.handle_json_bytes(request.as_bytes());
    println!("ingest -> {}", String::from_utf8_lossy(&response));

    let stats = service.handle_json_bytes(br#""Stats""#);
    println!("stats -> {}", String::from_utf8_lossy(&stats));

    // 4. An HTTP front end: both are std-only, no async runtime. The
    //    thread pool parks a worker per connection; the reactor multiplexes
    //    every connection over one epoll loop, coalesces same-tick /query
    //    requests into one batched execute, and answers repeated queries
    //    from a generation-keyed result cache.
    let want_reactor =
        std::env::args().skip_while(|a| a != "--transport").nth(1) == Some("reactor".to_string());
    let booted = if want_reactor {
        boot_reactor(&service)
    } else {
        serve(Arc::clone(&service), HttpConfig::default())
            .map(Transport::Pool)
            .map_err(|e| e.to_string())
    };
    let transport = match booted {
        Ok(transport) => transport,
        Err(err) => {
            println!("({err}; in-process transport shown above is the same contract)");
            return;
        }
    };
    let addr = transport.addr();
    let label = if want_reactor {
        "reactor"
    } else {
        "thread pool"
    };
    println!("serving on http://{addr} ({label})");

    let body = serde_json::to_string(&QueryBuilder::keyword("Lyon").top_k(3).build())
        .expect("query serializes");
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    write!(
        stream,
        "POST /query HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .expect("request written");
    let mut http_response = String::new();
    stream
        .read_to_string(&mut http_response)
        .expect("response read");
    let body = http_response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b)
        .unwrap_or(&http_response);
    println!("POST /query -> {body}");

    transport.shutdown();
    println!("done.");
}

#[cfg(target_os = "linux")]
fn boot_reactor(service: &Arc<CmdlService>) -> Result<Transport, String> {
    cmdl::server::serve_reactor(Arc::clone(service), cmdl::server::ReactorConfig::default())
        .map(Transport::Reactor)
        .map_err(|e| format!("loopback bind denied: {e}"))
}

#[cfg(not(target_os = "linux"))]
fn boot_reactor(_service: &Arc<CmdlService>) -> Result<Transport, String> {
    Err("the reactor transport is Linux-only (epoll); use --transport pool".to_string())
}
