//! Vendored minimal stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`proptest!`] macro, [`Strategy`] implementations for
//! numeric ranges, simple regex-like string patterns, and
//! `prop::collection::vec`, plus `prop_assert!` / `prop_assert_eq!` /
//! `prop_assume!`. Cases are generated from a deterministic per-test RNG
//! (seeded from the test name and case index) so failures are reproducible.
//! Shrinking is not implemented — a failing case panics with its inputs'
//! generation seed.

use std::ops::Range;

pub mod prelude {
    //! Everything a property test needs in scope.
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
    pub use crate::{ProptestConfig, Strategy, TestCaseError, TestRng};

    pub mod prop {
        //! Namespace mirror of `proptest::prelude::prop`.
        pub use crate::collection;
    }
}

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 128 }
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed; the case is skipped, not failed.
    Reject,
    /// `prop_assert!`-style failure with a message.
    Fail(String),
}

/// Deterministic RNG driving value generation (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Create from an explicit seed.
    pub fn deterministic(seed: u64) -> Self {
        TestRng(seed)
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`.
    pub fn below(&mut self, bound: usize) -> usize {
        if bound == 0 {
            0
        } else {
            (self.next_u64() as usize) % bound
        }
    }
}

/// Seed derivation for a named test case (stable across runs).
pub fn __seed_for(name: &str, case: u64) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for b in name.bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// A generator of test values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
    )*};
}
impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        (self.start as f64 + (self.end as f64 - self.start as f64) * rng.unit_f64()) as f32
    }
}

/// String patterns (`"[a-z]{2,8}"`, `".{0,300}"`, literals) are strategies
/// generating matching strings. Supported syntax: literal characters,
/// `.` (printable ASCII), character classes with ranges (`[a-z0-9_]`), and
/// the quantifiers `{n}`, `{m,n}`, `?`, `*`, `+` (bounded at 8).
impl Strategy for str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for atom in &atoms {
            let count = atom.min_reps + rng.below(atom.max_reps - atom.min_reps + 1);
            for _ in 0..count {
                out.push(atom.chars[rng.below(atom.chars.len())]);
            }
        }
        out
    }
}

impl Strategy for String {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        self.as_str().generate(rng)
    }
}

struct PatternAtom {
    chars: Vec<char>,
    min_reps: usize,
    max_reps: usize,
}

fn printable_ascii() -> Vec<char> {
    (0x20u8..0x7F).map(|b| b as char).collect()
}

fn parse_pattern(pattern: &str) -> Vec<PatternAtom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let set: Vec<char> = match chars[i] {
            '.' => {
                i += 1;
                printable_ascii()
            }
            '[' => {
                i += 1;
                let mut set = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let (lo, hi) = (chars[i], chars[i + 2]);
                        set.extend((lo as u32..=hi as u32).filter_map(char::from_u32));
                        i += 3;
                    } else {
                        set.push(chars[i]);
                        i += 1;
                    }
                }
                i += 1; // ']'
                set
            }
            '\\' if i + 1 < chars.len() => {
                i += 2;
                vec![chars[i - 1]]
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        let (min_reps, max_reps) = if i < chars.len() {
            match chars[i] {
                '{' => {
                    let close = chars[i..].iter().position(|&c| c == '}').unwrap() + i;
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    if let Some((lo, hi)) = body.split_once(',') {
                        (lo.trim().parse().unwrap(), hi.trim().parse().unwrap())
                    } else {
                        let n: usize = body.trim().parse().unwrap();
                        (n, n)
                    }
                }
                '?' => {
                    i += 1;
                    (0, 1)
                }
                '*' => {
                    i += 1;
                    (0, 8)
                }
                '+' => {
                    i += 1;
                    (1, 8)
                }
                _ => (1, 1),
            }
        } else {
            (1, 1)
        };
        assert!(!set.is_empty(), "empty character class in pattern");
        assert!(max_reps >= min_reps, "invalid quantifier in pattern");
        atoms.push(PatternAtom {
            chars: set,
            min_reps,
            max_reps,
        });
    }
    atoms
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A size specification: exact or a half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.max_exclusive - self.size.min;
            let len = self.size.min + rng.below(span.max(1));
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Declare property tests. Mirrors `proptest::proptest!` for the supported
/// subset: an optional `#![proptest_config(..)]` header followed by test
/// functions whose arguments are `name in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`].
#[macro_export]
macro_rules! __proptest_items {
    (config = $config:expr; $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $config;
                let mut __passed: u32 = 0;
                let mut __rejected: u32 = 0;
                let mut __case: u64 = 0;
                while __passed < __config.cases {
                    if __rejected > 1000 + 10 * __config.cases {
                        panic!(
                            "proptest `{}`: too many rejected cases ({} rejects, {} passes)",
                            stringify!($name), __rejected, __passed
                        );
                    }
                    let __seed = $crate::__seed_for(stringify!($name), __case);
                    __case += 1;
                    let mut __rng = $crate::TestRng::deterministic(__seed);
                    $(let $arg = $crate::Strategy::generate(&$strat, &mut __rng);)*
                    let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match __outcome {
                        ::std::result::Result::Ok(()) => __passed += 1,
                        ::std::result::Result::Err($crate::TestCaseError::Reject) => __rejected += 1,
                        ::std::result::Result::Err($crate::TestCaseError::Fail(__msg)) => {
                            panic!(
                                "proptest `{}` failed (seed {}): {}",
                                stringify!($name), __seed, __msg
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Skip the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fail the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                __l, __r
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn pattern_generation_matches_class() {
        let mut rng = crate::TestRng::deterministic(1);
        for _ in 0..50 {
            let s = crate::Strategy::generate(&"[a-z]{2,8}", &mut rng);
            assert!(s.len() >= 2 && s.len() <= 8, "len {}", s.len());
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn dot_pattern_generates_printable() {
        let mut rng = crate::TestRng::deterministic(2);
        for _ in 0..20 {
            let s = crate::Strategy::generate(&".{0,300}", &mut rng);
            assert!(s.len() <= 300);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_pipeline_works(xs in prop::collection::vec(0usize..100, 0..20), y in 1usize..50) {
            prop_assume!(y > 0);
            prop_assert!(xs.len() < 20);
            prop_assert!(y < 50, "y was {}", y);
            prop_assert_eq!(y / y, 1);
            for x in xs {
                prop_assert!(x < 100);
            }
        }
    }
}
