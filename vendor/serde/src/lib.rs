//! Vendored minimal stand-in for the `serde` crate.
//!
//! The build environment has no network access, so the workspace vendors a
//! small serialization framework with serde's *user-facing* shape — a
//! [`Serialize`] / [`Deserialize`] trait pair plus same-named derive macros
//! re-exported from `serde_derive` — but a much simpler data model: values
//! serialize to an in-memory [`Json`] tree, which the companion
//! `serde_json` stand-in renders to and parses from text.
//!
//! Integer values round-trip exactly (the tree distinguishes `U64`/`I64`
//! from `F64`), which matters for MinHash signatures whose `u64` values use
//! the full 64-bit range.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::hash::Hash;
use std::sync::Arc;

/// An in-memory JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Non-negative integer (exact).
    U64(u64),
    /// Negative integer (exact).
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object; insertion order preserved.
    Obj(Vec<(String, Json)>),
}

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl Error {
    /// Create an error from a message.
    pub fn msg(message: impl Into<String>) -> Self {
        Error(message.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can be converted to a [`Json`] tree.
pub trait Serialize {
    /// Convert to a JSON value.
    fn to_json(&self) -> Json;

    /// Stream this value as *compact* JSON text into `out` without
    /// materializing the intermediate [`Json`] tree. The output is
    /// byte-identical to rendering [`to_json`](Self::to_json) compactly.
    ///
    /// The default implementation falls back through the tree; primitives,
    /// the std containers, and `#[derive(Serialize)]` types override it
    /// with a direct streaming encoder — the query-serving wire path uses
    /// this to serialize straight into a reusable per-connection buffer.
    fn write_json(&self, out: &mut JsonWriter<'_>) {
        out.dom(&self.to_json());
    }
}

// ---------------------------------------------------------------------------
// Streaming writer
// ---------------------------------------------------------------------------

/// A streaming compact-JSON writer appending to a caller-owned `String`.
///
/// Containers are written with `begin_*`/`end_*` pairs; call
/// [`element`](JsonWriter::element) before every array element and
/// [`key`](JsonWriter::key) before every object value so commas land in the
/// right places. All scalar methods format directly into the output buffer
/// (no per-value allocation; floats use the same shortest-round-trip `{:?}`
/// rendering as the DOM writer).
pub struct JsonWriter<'a> {
    out: &'a mut String,
    /// One flag per open container: `true` until its first element.
    first: Vec<bool>,
}

impl<'a> JsonWriter<'a> {
    /// Wrap an output buffer (appended to, never cleared).
    pub fn new(out: &'a mut String) -> Self {
        Self {
            out,
            first: Vec::new(),
        }
    }

    /// `null`
    pub fn null(&mut self) {
        self.out.push_str("null");
    }

    /// `true` / `false`
    pub fn boolean(&mut self, b: bool) {
        self.out.push_str(if b { "true" } else { "false" });
    }

    /// An unsigned integer.
    pub fn unsigned(&mut self, n: u64) {
        write_u64(n, self.out);
    }

    /// A signed integer.
    pub fn signed(&mut self, n: i64) {
        write_i64(n, self.out);
    }

    /// A float (non-finite values render as `null`, like the DOM writer).
    pub fn float(&mut self, f: f64) {
        write_f64(f, self.out);
    }

    /// An escaped string.
    pub fn string(&mut self, s: &str) {
        write_escaped(s, self.out);
    }

    /// Open an array.
    pub fn begin_array(&mut self) {
        self.out.push('[');
        self.first.push(true);
    }

    /// Close an array.
    pub fn end_array(&mut self) {
        self.first.pop();
        self.out.push(']');
    }

    /// Open an object.
    pub fn begin_object(&mut self) {
        self.out.push('{');
        self.first.push(true);
    }

    /// Close an object.
    pub fn end_object(&mut self) {
        self.first.pop();
        self.out.push('}');
    }

    /// Mark the start of the next array element (writes the separator).
    pub fn element(&mut self) {
        if let Some(first) = self.first.last_mut() {
            if *first {
                *first = false;
            } else {
                self.out.push(',');
            }
        }
    }

    /// Write the next object key (separator + escaped key + `:`).
    pub fn key(&mut self, k: &str) {
        self.element();
        write_escaped(k, self.out);
        self.out.push(':');
    }

    /// Render a pre-built [`Json`] tree compactly (the fallback the default
    /// [`Serialize::write_json`] uses, and the escape hatch for types whose
    /// encoding needs the tree, e.g. sorted `HashMap` output).
    pub fn dom(&mut self, value: &Json) {
        write_compact(value, self.out);
    }
}

/// Render a [`Json`] tree as compact JSON text (the canonical compact
/// encoding both the DOM path and [`JsonWriter`] produce).
pub fn write_compact(value: &Json, out: &mut String) {
    match value {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::U64(n) => write_u64(*n, out),
        Json::I64(n) => write_i64(*n, out),
        Json::F64(f) => write_f64(*f, out),
        Json::Str(s) => write_escaped(s, out),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Json::Obj(entries) => {
            out.push('{');
            for (i, (key, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(key, out);
                out.push(':');
                write_compact(val, out);
            }
            out.push('}');
        }
    }
}

/// Append the decimal digits of `n` (no `format!`, no allocation).
fn write_u64(n: u64, out: &mut String) {
    let mut buf = [0u8; 20];
    let mut i = buf.len();
    let mut n = n;
    loop {
        i -= 1;
        buf[i] = b'0' + (n % 10) as u8;
        n /= 10;
        if n == 0 {
            break;
        }
    }
    // The buffer holds only ASCII digits.
    out.push_str(std::str::from_utf8(&buf[i..]).expect("ascii digits"));
}

fn write_i64(n: i64, out: &mut String) {
    if n < 0 {
        out.push('-');
        write_u64(n.unsigned_abs(), out);
    } else {
        write_u64(n as u64, out);
    }
}

/// `{:?}` prints the shortest representation that round-trips — written
/// straight into the buffer, not through a fresh String. Non-finite values
/// render as `null`, like the DOM writer.
fn write_f64(f: f64, out: &mut String) {
    if f.is_finite() {
        use std::fmt::Write;
        let _ = write!(out, "{f:?}");
    } else {
        out.push_str("null");
    }
}

/// Write a JSON string literal (quotes + escapes) for `s`.
pub fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Types that can be reconstructed from a [`Json`] tree.
pub trait Deserialize: Sized {
    /// Reconstruct from a JSON value.
    fn from_json(value: &Json) -> Result<Self, Error>;
}

/// Derive-macro helper: fetch and deserialize an object field.
///
/// Missing keys deserialize from `Json::Null`, so `Option` fields tolerate
/// absence exactly as upstream serde-json does.
pub fn __field<T: Deserialize>(value: &Json, name: &str) -> Result<T, Error> {
    match value {
        Json::Obj(entries) => {
            for (key, val) in entries {
                if key == name {
                    return T::from_json(val)
                        .map_err(|e| Error::msg(format!("field `{name}`: {e}")));
                }
            }
            T::from_json(&Json::Null).map_err(|_| Error::msg(format!("missing field `{name}`")))
        }
        other => Err(Error::msg(format!(
            "expected object with field `{name}`, got {}",
            kind_name(other)
        ))),
    }
}

/// Derive-macro helper: fetch and deserialize an array element.
pub fn __element<T: Deserialize>(value: &Json, index: usize) -> Result<T, Error> {
    match value {
        Json::Arr(items) => items
            .get(index)
            .ok_or_else(|| Error::msg(format!("missing tuple element {index}")))
            .and_then(T::from_json),
        other => Err(Error::msg(format!(
            "expected array, got {}",
            kind_name(other)
        ))),
    }
}

fn kind_name(v: &Json) -> &'static str {
    match v {
        Json::Null => "null",
        Json::Bool(_) => "bool",
        Json::U64(_) | Json::I64(_) | Json::F64(_) => "number",
        Json::Str(_) => "string",
        Json::Arr(_) => "array",
        Json::Obj(_) => "object",
    }
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Json { Json::U64(*self as u64) }
            fn write_json(&self, out: &mut JsonWriter<'_>) { out.unsigned(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_json(value: &Json) -> Result<Self, Error> {
                match value {
                    Json::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::msg(format!("{n} out of range for {}", stringify!($t)))),
                    Json::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::msg(format!("{n} out of range for {}", stringify!($t)))),
                    Json::F64(f) if f.fract() == 0.0 && *f >= 0.0 => Ok(*f as $t),
                    other => Err(Error::msg(format!(
                        "expected unsigned integer, got {}", kind_name(other)
                    ))),
                }
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Json {
                let v = *self as i64;
                if v >= 0 { Json::U64(v as u64) } else { Json::I64(v) }
            }
            fn write_json(&self, out: &mut JsonWriter<'_>) { out.signed(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_json(value: &Json) -> Result<Self, Error> {
                match value {
                    Json::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::msg(format!("{n} out of range for {}", stringify!($t)))),
                    Json::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::msg(format!("{n} out of range for {}", stringify!($t)))),
                    Json::F64(f) if f.fract() == 0.0 => Ok(*f as $t),
                    other => Err(Error::msg(format!(
                        "expected integer, got {}", kind_name(other)
                    ))),
                }
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_json(&self) -> Json {
        Json::F64(*self)
    }

    fn write_json(&self, out: &mut JsonWriter<'_>) {
        out.float(*self);
    }
}

impl Deserialize for f64 {
    fn from_json(value: &Json) -> Result<Self, Error> {
        match value {
            Json::F64(f) => Ok(*f),
            Json::U64(n) => Ok(*n as f64),
            Json::I64(n) => Ok(*n as f64),
            Json::Null => Ok(f64::NAN),
            other => Err(Error::msg(format!(
                "expected number, got {}",
                kind_name(other)
            ))),
        }
    }
}

impl Serialize for f32 {
    fn to_json(&self) -> Json {
        Json::F64(f64::from(*self))
    }

    fn write_json(&self, out: &mut JsonWriter<'_>) {
        out.float(f64::from(*self));
    }
}

impl Deserialize for f32 {
    fn from_json(value: &Json) -> Result<Self, Error> {
        f64::from_json(value).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }

    fn write_json(&self, out: &mut JsonWriter<'_>) {
        out.boolean(*self);
    }
}

impl Deserialize for bool {
    fn from_json(value: &Json) -> Result<Self, Error> {
        match value {
            Json::Bool(b) => Ok(*b),
            other => Err(Error::msg(format!(
                "expected bool, got {}",
                kind_name(other)
            ))),
        }
    }
}

impl Serialize for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }

    fn write_json(&self, out: &mut JsonWriter<'_>) {
        out.string(self);
    }
}

impl Deserialize for String {
    fn from_json(value: &Json) -> Result<Self, Error> {
        match value {
            Json::Str(s) => Ok(s.clone()),
            other => Err(Error::msg(format!(
                "expected string, got {}",
                kind_name(other)
            ))),
        }
    }
}

impl Serialize for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }

    fn write_json(&self, out: &mut JsonWriter<'_>) {
        out.string(self);
    }
}

impl Serialize for char {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }

    fn write_json(&self, out: &mut JsonWriter<'_>) {
        let mut buf = [0u8; 4];
        out.string(self.encode_utf8(&mut buf));
    }
}

impl Deserialize for char {
    fn from_json(value: &Json) -> Result<Self, Error> {
        match value {
            Json::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::msg(format!(
                "expected single-char string, got {}",
                kind_name(other)
            ))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }

    fn write_json(&self, out: &mut JsonWriter<'_>) {
        (**self).write_json(out);
    }
}

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(Serialize::to_json).collect())
    }

    fn write_json(&self, out: &mut JsonWriter<'_>) {
        self.as_slice().write_json(out);
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json(value: &Json) -> Result<Self, Error> {
        match value {
            Json::Arr(items) => items.iter().map(T::from_json).collect(),
            other => Err(Error::msg(format!(
                "expected array, got {}",
                kind_name(other)
            ))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(Serialize::to_json).collect())
    }

    fn write_json(&self, out: &mut JsonWriter<'_>) {
        out.begin_array();
        for item in self {
            out.element();
            item.write_json(out);
        }
        out.end_array();
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }

    fn write_json(&self, out: &mut JsonWriter<'_>) {
        match self {
            Some(v) => v.write_json(out),
            None => out.null(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json(value: &Json) -> Result<Self, Error> {
        match value {
            Json::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }

    fn write_json(&self, out: &mut JsonWriter<'_>) {
        (**self).write_json(out);
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_json(value: &Json) -> Result<Self, Error> {
        T::from_json(value).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Arc<T> {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }

    fn write_json(&self, out: &mut JsonWriter<'_>) {
        (**self).write_json(out);
    }
}

impl<T: Deserialize> Deserialize for Arc<T> {
    fn from_json(value: &Json) -> Result<Self, Error> {
        T::from_json(value).map(Arc::new)
    }
}

impl Serialize for () {
    fn to_json(&self) -> Json {
        Json::Null
    }

    fn write_json(&self, out: &mut JsonWriter<'_>) {
        out.null();
    }
}

impl Deserialize for () {
    fn from_json(_: &Json) -> Result<Self, Error> {
        Ok(())
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+)),+) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_json(&self) -> Json {
                Json::Arr(vec![$(self.$idx.to_json()),+])
            }
            fn write_json(&self, out: &mut JsonWriter<'_>) {
                out.begin_array();
                $(
                    out.element();
                    self.$idx.write_json(out);
                )+
                out.end_array();
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_json(value: &Json) -> Result<Self, Error> {
                Ok(($(__element::<$name>(value, $idx)?,)+))
            }
        }
    )+};
}
impl_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3)
);

// Maps serialize as arrays of `[key, value]` pairs so that arbitrary
// (non-string) key types work — upstream serde does the same for
// non-string-keyed maps in self-describing formats. `BTreeMap` output is
// ordered by key; `HashMap` output is sorted by the serialized key text so
// that serialization is deterministic.

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_json(&self) -> Json {
        Json::Arr(
            self.iter()
                .map(|(k, v)| Json::Arr(vec![k.to_json(), v.to_json()]))
                .collect(),
        )
    }

    fn write_json(&self, out: &mut JsonWriter<'_>) {
        out.begin_array();
        for (k, v) in self {
            out.element();
            out.begin_array();
            out.element();
            k.write_json(out);
            out.element();
            v.write_json(out);
            out.end_array();
        }
        out.end_array();
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_json(value: &Json) -> Result<Self, Error> {
        map_entries::<K, V>(value)?.into_iter().map(Ok).collect()
    }
}

impl<K: Serialize + Eq + Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn to_json(&self) -> Json {
        let mut entries: Vec<Json> = self
            .iter()
            .map(|(k, v)| Json::Arr(vec![k.to_json(), v.to_json()]))
            .collect();
        entries.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
        Json::Arr(entries)
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_json(value: &Json) -> Result<Self, Error> {
        map_entries::<K, V>(value)?.into_iter().map(Ok).collect()
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(Serialize::to_json).collect())
    }

    fn write_json(&self, out: &mut JsonWriter<'_>) {
        out.begin_array();
        for item in self {
            out.element();
            item.write_json(out);
        }
        out.end_array();
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_json(value: &Json) -> Result<Self, Error> {
        match value {
            Json::Arr(items) => items.iter().map(T::from_json).collect(),
            other => Err(Error::msg(format!(
                "expected array, got {}",
                kind_name(other)
            ))),
        }
    }
}

impl<T: Serialize + Eq + Hash> Serialize for HashSet<T> {
    fn to_json(&self) -> Json {
        let mut items: Vec<Json> = self.iter().map(Serialize::to_json).collect();
        items.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
        Json::Arr(items)
    }
}

impl<T: Deserialize + Eq + Hash> Deserialize for HashSet<T> {
    fn from_json(value: &Json) -> Result<Self, Error> {
        match value {
            Json::Arr(items) => items.iter().map(T::from_json).collect(),
            other => Err(Error::msg(format!(
                "expected array, got {}",
                kind_name(other)
            ))),
        }
    }
}

fn map_entries<K: Deserialize, V: Deserialize>(value: &Json) -> Result<Vec<(K, V)>, Error> {
    match value {
        Json::Arr(items) => items
            .iter()
            .map(|pair| Ok((__element::<K>(pair, 0)?, __element::<V>(pair, 1)?)))
            .collect(),
        other => Err(Error::msg(format!(
            "expected array of map entries, got {}",
            kind_name(other)
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integers_roundtrip_exactly() {
        let v = u64::MAX;
        assert_eq!(u64::from_json(&v.to_json()).unwrap(), v);
        let n: i64 = -42;
        assert_eq!(i64::from_json(&n.to_json()).unwrap(), n);
    }

    #[test]
    fn option_null_roundtrip() {
        let none: Option<u32> = None;
        assert_eq!(none.to_json(), Json::Null);
        assert_eq!(Option::<u32>::from_json(&Json::Null).unwrap(), None);
        assert_eq!(Option::<u32>::from_json(&Json::U64(3)).unwrap(), Some(3));
    }

    #[test]
    fn missing_field_errors_except_option() {
        let obj = Json::Obj(vec![("a".into(), Json::U64(1))]);
        assert!(__field::<u32>(&obj, "b").is_err());
        assert_eq!(__field::<Option<u32>>(&obj, "b").unwrap(), None);
        assert_eq!(__field::<u32>(&obj, "a").unwrap(), 1);
    }

    #[test]
    fn maps_roundtrip() {
        let mut m = BTreeMap::new();
        m.insert("x".to_string(), 1u32);
        m.insert("y".to_string(), 2);
        let back = BTreeMap::<String, u32>::from_json(&m.to_json()).unwrap();
        assert_eq!(back, m);

        let mut h = HashMap::new();
        h.insert(7u64, vec![1.5f64]);
        let back = HashMap::<u64, Vec<f64>>::from_json(&h.to_json()).unwrap();
        assert_eq!(back, h);
    }
}
