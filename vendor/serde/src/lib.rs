//! Vendored minimal stand-in for the `serde` crate.
//!
//! The build environment has no network access, so the workspace vendors a
//! small serialization framework with serde's *user-facing* shape — a
//! [`Serialize`] / [`Deserialize`] trait pair plus same-named derive macros
//! re-exported from `serde_derive` — but a much simpler data model: values
//! serialize to an in-memory [`Json`] tree, which the companion
//! `serde_json` stand-in renders to and parses from text.
//!
//! Integer values round-trip exactly (the tree distinguishes `U64`/`I64`
//! from `F64`), which matters for MinHash signatures whose `u64` values use
//! the full 64-bit range.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::hash::Hash;
use std::sync::Arc;

/// An in-memory JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Non-negative integer (exact).
    U64(u64),
    /// Negative integer (exact).
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object; insertion order preserved.
    Obj(Vec<(String, Json)>),
}

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl Error {
    /// Create an error from a message.
    pub fn msg(message: impl Into<String>) -> Self {
        Error(message.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can be converted to a [`Json`] tree.
pub trait Serialize {
    /// Convert to a JSON value.
    fn to_json(&self) -> Json;
}

/// Types that can be reconstructed from a [`Json`] tree.
pub trait Deserialize: Sized {
    /// Reconstruct from a JSON value.
    fn from_json(value: &Json) -> Result<Self, Error>;
}

/// Derive-macro helper: fetch and deserialize an object field.
///
/// Missing keys deserialize from `Json::Null`, so `Option` fields tolerate
/// absence exactly as upstream serde-json does.
pub fn __field<T: Deserialize>(value: &Json, name: &str) -> Result<T, Error> {
    match value {
        Json::Obj(entries) => {
            for (key, val) in entries {
                if key == name {
                    return T::from_json(val)
                        .map_err(|e| Error::msg(format!("field `{name}`: {e}")));
                }
            }
            T::from_json(&Json::Null).map_err(|_| Error::msg(format!("missing field `{name}`")))
        }
        other => Err(Error::msg(format!(
            "expected object with field `{name}`, got {}",
            kind_name(other)
        ))),
    }
}

/// Derive-macro helper: fetch and deserialize an array element.
pub fn __element<T: Deserialize>(value: &Json, index: usize) -> Result<T, Error> {
    match value {
        Json::Arr(items) => items
            .get(index)
            .ok_or_else(|| Error::msg(format!("missing tuple element {index}")))
            .and_then(T::from_json),
        other => Err(Error::msg(format!(
            "expected array, got {}",
            kind_name(other)
        ))),
    }
}

fn kind_name(v: &Json) -> &'static str {
    match v {
        Json::Null => "null",
        Json::Bool(_) => "bool",
        Json::U64(_) | Json::I64(_) | Json::F64(_) => "number",
        Json::Str(_) => "string",
        Json::Arr(_) => "array",
        Json::Obj(_) => "object",
    }
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Json { Json::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_json(value: &Json) -> Result<Self, Error> {
                match value {
                    Json::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::msg(format!("{n} out of range for {}", stringify!($t)))),
                    Json::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::msg(format!("{n} out of range for {}", stringify!($t)))),
                    Json::F64(f) if f.fract() == 0.0 && *f >= 0.0 => Ok(*f as $t),
                    other => Err(Error::msg(format!(
                        "expected unsigned integer, got {}", kind_name(other)
                    ))),
                }
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Json {
                let v = *self as i64;
                if v >= 0 { Json::U64(v as u64) } else { Json::I64(v) }
            }
        }
        impl Deserialize for $t {
            fn from_json(value: &Json) -> Result<Self, Error> {
                match value {
                    Json::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::msg(format!("{n} out of range for {}", stringify!($t)))),
                    Json::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::msg(format!("{n} out of range for {}", stringify!($t)))),
                    Json::F64(f) if f.fract() == 0.0 => Ok(*f as $t),
                    other => Err(Error::msg(format!(
                        "expected integer, got {}", kind_name(other)
                    ))),
                }
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_json(&self) -> Json {
        Json::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_json(value: &Json) -> Result<Self, Error> {
        match value {
            Json::F64(f) => Ok(*f),
            Json::U64(n) => Ok(*n as f64),
            Json::I64(n) => Ok(*n as f64),
            Json::Null => Ok(f64::NAN),
            other => Err(Error::msg(format!(
                "expected number, got {}",
                kind_name(other)
            ))),
        }
    }
}

impl Serialize for f32 {
    fn to_json(&self) -> Json {
        Json::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_json(value: &Json) -> Result<Self, Error> {
        f64::from_json(value).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_json(value: &Json) -> Result<Self, Error> {
        match value {
            Json::Bool(b) => Ok(*b),
            other => Err(Error::msg(format!(
                "expected bool, got {}",
                kind_name(other)
            ))),
        }
    }
}

impl Serialize for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_json(value: &Json) -> Result<Self, Error> {
        match value {
            Json::Str(s) => Ok(s.clone()),
            other => Err(Error::msg(format!(
                "expected string, got {}",
                kind_name(other)
            ))),
        }
    }
}

impl Serialize for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_json(value: &Json) -> Result<Self, Error> {
        match value {
            Json::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::msg(format!(
                "expected single-char string, got {}",
                kind_name(other)
            ))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json(value: &Json) -> Result<Self, Error> {
        match value {
            Json::Arr(items) => items.iter().map(T::from_json).collect(),
            other => Err(Error::msg(format!(
                "expected array, got {}",
                kind_name(other)
            ))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json(value: &Json) -> Result<Self, Error> {
        match value {
            Json::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_json(value: &Json) -> Result<Self, Error> {
        T::from_json(value).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Arc<T> {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<T: Deserialize> Deserialize for Arc<T> {
    fn from_json(value: &Json) -> Result<Self, Error> {
        T::from_json(value).map(Arc::new)
    }
}

impl Serialize for () {
    fn to_json(&self) -> Json {
        Json::Null
    }
}

impl Deserialize for () {
    fn from_json(_: &Json) -> Result<Self, Error> {
        Ok(())
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+)),+) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_json(&self) -> Json {
                Json::Arr(vec![$(self.$idx.to_json()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_json(value: &Json) -> Result<Self, Error> {
                Ok(($(__element::<$name>(value, $idx)?,)+))
            }
        }
    )+};
}
impl_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3)
);

// Maps serialize as arrays of `[key, value]` pairs so that arbitrary
// (non-string) key types work — upstream serde does the same for
// non-string-keyed maps in self-describing formats. `BTreeMap` output is
// ordered by key; `HashMap` output is sorted by the serialized key text so
// that serialization is deterministic.

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_json(&self) -> Json {
        Json::Arr(
            self.iter()
                .map(|(k, v)| Json::Arr(vec![k.to_json(), v.to_json()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_json(value: &Json) -> Result<Self, Error> {
        map_entries::<K, V>(value)?.into_iter().map(Ok).collect()
    }
}

impl<K: Serialize + Eq + Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn to_json(&self) -> Json {
        let mut entries: Vec<Json> = self
            .iter()
            .map(|(k, v)| Json::Arr(vec![k.to_json(), v.to_json()]))
            .collect();
        entries.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
        Json::Arr(entries)
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_json(value: &Json) -> Result<Self, Error> {
        map_entries::<K, V>(value)?.into_iter().map(Ok).collect()
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_json(value: &Json) -> Result<Self, Error> {
        match value {
            Json::Arr(items) => items.iter().map(T::from_json).collect(),
            other => Err(Error::msg(format!(
                "expected array, got {}",
                kind_name(other)
            ))),
        }
    }
}

impl<T: Serialize + Eq + Hash> Serialize for HashSet<T> {
    fn to_json(&self) -> Json {
        let mut items: Vec<Json> = self.iter().map(Serialize::to_json).collect();
        items.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
        Json::Arr(items)
    }
}

impl<T: Deserialize + Eq + Hash> Deserialize for HashSet<T> {
    fn from_json(value: &Json) -> Result<Self, Error> {
        match value {
            Json::Arr(items) => items.iter().map(T::from_json).collect(),
            other => Err(Error::msg(format!(
                "expected array, got {}",
                kind_name(other)
            ))),
        }
    }
}

fn map_entries<K: Deserialize, V: Deserialize>(value: &Json) -> Result<Vec<(K, V)>, Error> {
    match value {
        Json::Arr(items) => items
            .iter()
            .map(|pair| Ok((__element::<K>(pair, 0)?, __element::<V>(pair, 1)?)))
            .collect(),
        other => Err(Error::msg(format!(
            "expected array of map entries, got {}",
            kind_name(other)
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integers_roundtrip_exactly() {
        let v = u64::MAX;
        assert_eq!(u64::from_json(&v.to_json()).unwrap(), v);
        let n: i64 = -42;
        assert_eq!(i64::from_json(&n.to_json()).unwrap(), n);
    }

    #[test]
    fn option_null_roundtrip() {
        let none: Option<u32> = None;
        assert_eq!(none.to_json(), Json::Null);
        assert_eq!(Option::<u32>::from_json(&Json::Null).unwrap(), None);
        assert_eq!(Option::<u32>::from_json(&Json::U64(3)).unwrap(), Some(3));
    }

    #[test]
    fn missing_field_errors_except_option() {
        let obj = Json::Obj(vec![("a".into(), Json::U64(1))]);
        assert!(__field::<u32>(&obj, "b").is_err());
        assert_eq!(__field::<Option<u32>>(&obj, "b").unwrap(), None);
        assert_eq!(__field::<u32>(&obj, "a").unwrap(), 1);
    }

    #[test]
    fn maps_roundtrip() {
        let mut m = BTreeMap::new();
        m.insert("x".to_string(), 1u32);
        m.insert("y".to_string(), 2);
        let back = BTreeMap::<String, u32>::from_json(&m.to_json()).unwrap();
        assert_eq!(back, m);

        let mut h = HashMap::new();
        h.insert(7u64, vec![1.5f64]);
        let back = HashMap::<u64, Vec<f64>>::from_json(&h.to_json()).unwrap();
        assert_eq!(back, h);
    }
}
