//! Vendored minimal stand-in for the `serde` crate.
//!
//! The build environment has no network access, so the workspace vendors a
//! small serialization framework with serde's *user-facing* shape — a
//! [`Serialize`] / [`Deserialize`] trait pair plus same-named derive macros
//! re-exported from `serde_derive` — but a much simpler data model: values
//! serialize to an in-memory [`Json`] tree, which the companion
//! `serde_json` stand-in renders to and parses from text.
//!
//! Integer values round-trip exactly (the tree distinguishes `U64`/`I64`
//! from `F64`), which matters for MinHash signatures whose `u64` values use
//! the full 64-bit range.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::hash::Hash;
use std::sync::Arc;

/// An in-memory JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Non-negative integer (exact).
    U64(u64),
    /// Negative integer (exact).
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object; insertion order preserved.
    Obj(Vec<(String, Json)>),
}

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl Error {
    /// Create an error from a message.
    pub fn msg(message: impl Into<String>) -> Self {
        Error(message.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can be converted to a [`Json`] tree.
pub trait Serialize {
    /// Convert to a JSON value.
    fn to_json(&self) -> Json;

    /// Stream this value as *compact* JSON text into `out` without
    /// materializing the intermediate [`Json`] tree. The output is
    /// byte-identical to rendering [`to_json`](Self::to_json) compactly.
    ///
    /// The default implementation falls back through the tree; primitives,
    /// the std containers, and `#[derive(Serialize)]` types override it
    /// with a direct streaming encoder — the query-serving wire path uses
    /// this to serialize straight into a reusable per-connection buffer.
    fn write_json(&self, out: &mut JsonWriter<'_>) {
        out.dom(&self.to_json());
    }

    /// Append this value's compact *binary* encoding to `out` (see
    /// [`to_bin_bytes`]): little-endian fixed-width numbers, `u32`
    /// length-prefixed strings and collections, positional struct fields,
    /// `u32`-tagged enum variants. No text formatting, no [`Json`] tree —
    /// the persistence layer uses this for catalog segment sections, where
    /// float/token-heavy payloads make JSON decoding the cold-start
    /// bottleneck.
    ///
    /// The default implementation encodes the [`to_json`](Self::to_json)
    /// tree (tagged values, same primitive encodings); primitives, std
    /// containers, and `#[derive(Serialize)]` types override it with the
    /// direct field-order encoder. Each type's `write_bin` and `read_bin`
    /// are symmetric whichever path it uses.
    fn write_bin(&self, out: &mut Vec<u8>) {
        write_json_tree(&self.to_json(), out);
    }
}

// ---------------------------------------------------------------------------
// Streaming writer
// ---------------------------------------------------------------------------

/// A streaming compact-JSON writer appending to a caller-owned `String`.
///
/// Containers are written with `begin_*`/`end_*` pairs; call
/// [`element`](JsonWriter::element) before every array element and
/// [`key`](JsonWriter::key) before every object value so commas land in the
/// right places. All scalar methods format directly into the output buffer
/// (no per-value allocation; floats use the same shortest-round-trip `{:?}`
/// rendering as the DOM writer).
pub struct JsonWriter<'a> {
    out: &'a mut String,
    /// One flag per open container: `true` until its first element.
    first: Vec<bool>,
}

impl<'a> JsonWriter<'a> {
    /// Wrap an output buffer (appended to, never cleared).
    pub fn new(out: &'a mut String) -> Self {
        Self {
            out,
            first: Vec::new(),
        }
    }

    /// `null`
    pub fn null(&mut self) {
        self.out.push_str("null");
    }

    /// `true` / `false`
    pub fn boolean(&mut self, b: bool) {
        self.out.push_str(if b { "true" } else { "false" });
    }

    /// An unsigned integer.
    pub fn unsigned(&mut self, n: u64) {
        write_u64(n, self.out);
    }

    /// A signed integer.
    pub fn signed(&mut self, n: i64) {
        write_i64(n, self.out);
    }

    /// A float (non-finite values render as `null`, like the DOM writer).
    pub fn float(&mut self, f: f64) {
        write_f64(f, self.out);
    }

    /// An escaped string.
    pub fn string(&mut self, s: &str) {
        write_escaped(s, self.out);
    }

    /// Open an array.
    pub fn begin_array(&mut self) {
        self.out.push('[');
        self.first.push(true);
    }

    /// Close an array.
    pub fn end_array(&mut self) {
        self.first.pop();
        self.out.push(']');
    }

    /// Open an object.
    pub fn begin_object(&mut self) {
        self.out.push('{');
        self.first.push(true);
    }

    /// Close an object.
    pub fn end_object(&mut self) {
        self.first.pop();
        self.out.push('}');
    }

    /// Mark the start of the next array element (writes the separator).
    pub fn element(&mut self) {
        if let Some(first) = self.first.last_mut() {
            if *first {
                *first = false;
            } else {
                self.out.push(',');
            }
        }
    }

    /// Write the next object key (separator + escaped key + `:`).
    pub fn key(&mut self, k: &str) {
        self.element();
        write_escaped(k, self.out);
        self.out.push(':');
    }

    /// Render a pre-built [`Json`] tree compactly (the fallback the default
    /// [`Serialize::write_json`] uses, and the escape hatch for types whose
    /// encoding needs the tree, e.g. sorted `HashMap` output).
    pub fn dom(&mut self, value: &Json) {
        write_compact(value, self.out);
    }
}

/// Render a [`Json`] tree as compact JSON text (the canonical compact
/// encoding both the DOM path and [`JsonWriter`] produce).
pub fn write_compact(value: &Json, out: &mut String) {
    match value {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::U64(n) => write_u64(*n, out),
        Json::I64(n) => write_i64(*n, out),
        Json::F64(f) => write_f64(*f, out),
        Json::Str(s) => write_escaped(s, out),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Json::Obj(entries) => {
            out.push('{');
            for (i, (key, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(key, out);
                out.push(':');
                write_compact(val, out);
            }
            out.push('}');
        }
    }
}

/// Append the decimal digits of `n` (no `format!`, no allocation).
fn write_u64(n: u64, out: &mut String) {
    let mut buf = [0u8; 20];
    let mut i = buf.len();
    let mut n = n;
    loop {
        i -= 1;
        buf[i] = b'0' + (n % 10) as u8;
        n /= 10;
        if n == 0 {
            break;
        }
    }
    // The buffer holds only ASCII digits.
    out.push_str(std::str::from_utf8(&buf[i..]).expect("ascii digits"));
}

fn write_i64(n: i64, out: &mut String) {
    if n < 0 {
        out.push('-');
        write_u64(n.unsigned_abs(), out);
    } else {
        write_u64(n as u64, out);
    }
}

/// `{:?}` prints the shortest representation that round-trips — written
/// straight into the buffer, not through a fresh String. Non-finite values
/// render as `null`, like the DOM writer.
fn write_f64(f: f64, out: &mut String) {
    if f.is_finite() {
        use std::fmt::Write;
        let _ = write!(out, "{f:?}");
    } else {
        out.push_str("null");
    }
}

/// Write a JSON string literal (quotes + escapes) for `s`.
pub fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Types that can be reconstructed from a [`Json`] tree.
pub trait Deserialize: Sized {
    /// Reconstruct from a JSON value.
    fn from_json(value: &Json) -> Result<Self, Error>;

    /// Reconstruct from the binary encoding written by
    /// [`Serialize::write_bin`]. All reads are bounds-checked: malformed
    /// input yields `Err`, never a panic or unbounded allocation.
    fn read_bin(input: &mut BinReader<'_>) -> Result<Self, Error> {
        let tree = read_json_tree(input, 0)?;
        Self::from_json(&tree)
    }
}

// ---------------------------------------------------------------------------
// Binary encoding
// ---------------------------------------------------------------------------

/// Encode `value` with the zero-DOM binary codec ([`Serialize::write_bin`]).
pub fn to_bin_bytes<T: Serialize + ?Sized>(value: &T) -> Vec<u8> {
    let mut out = Vec::new();
    value.write_bin(&mut out);
    out
}

/// Decode a value written by [`to_bin_bytes`], requiring that every input
/// byte is consumed.
pub fn from_bin_bytes<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let mut input = BinReader::new(bytes);
    let value = T::read_bin(&mut input)?;
    if input.remaining() != 0 {
        return Err(Error::msg(format!(
            "{} trailing bytes after binary value",
            input.remaining()
        )));
    }
    Ok(value)
}

/// A bounds-checked cursor over binary-encoded input.
pub struct BinReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> BinReader<'a> {
    /// Wrap an input buffer.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Take the next `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], Error> {
        if self.remaining() < n {
            return Err(Error::msg(format!(
                "binary input truncated: need {n} bytes, have {}",
                self.remaining()
            )));
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Read one byte.
    pub fn byte(&mut self) -> Result<u8, Error> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u32` (the length/count/variant-tag width).
    pub fn u32(&mut self) -> Result<u32, Error> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, Error> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Read a `u32`-prefixed UTF-8 string slice.
    pub fn str_slice(&mut self) -> Result<&'a str, Error> {
        let len = self.u32()? as usize;
        std::str::from_utf8(self.take(len)?).map_err(|_| Error::msg("binary string is not UTF-8"))
    }

    /// Read a collection count, capping the usable pre-allocation at what
    /// the remaining input could possibly hold.
    fn count(&mut self) -> Result<usize, Error> {
        Ok(self.u32()? as usize)
    }

    /// A safe `Vec` pre-allocation for `count` elements: garbage counts
    /// must not trigger huge allocations before element reads fail.
    fn capacity_for(&self, count: usize) -> usize {
        count.min(self.remaining())
    }
}

/// Append a `u32` length prefix (saturating on >4GiB, which a later
/// element write would catch as corruption — workspace payloads are far
/// smaller).
fn write_count(n: usize, out: &mut Vec<u8>) {
    out.extend_from_slice(
        &u32::try_from(n)
            .expect("collection too large for u32 count")
            .to_le_bytes(),
    );
}

/// Tags of the binary-encoded [`Json`] tree (the default
/// `write_bin`/`read_bin` path for types without a direct encoder).
mod tree_tag {
    pub const NULL: u8 = 0;
    pub const FALSE: u8 = 1;
    pub const TRUE: u8 = 2;
    pub const U64: u8 = 3;
    pub const I64: u8 = 4;
    pub const F64: u8 = 5;
    pub const STR: u8 = 6;
    pub const ARR: u8 = 7;
    pub const OBJ: u8 = 8;
}

/// Binary-encode a [`Json`] tree (tagged; same primitive encodings as the
/// direct path).
pub fn write_json_tree(value: &Json, out: &mut Vec<u8>) {
    match value {
        Json::Null => out.push(tree_tag::NULL),
        Json::Bool(false) => out.push(tree_tag::FALSE),
        Json::Bool(true) => out.push(tree_tag::TRUE),
        Json::U64(n) => {
            out.push(tree_tag::U64);
            out.extend_from_slice(&n.to_le_bytes());
        }
        Json::I64(n) => {
            out.push(tree_tag::I64);
            out.extend_from_slice(&n.to_le_bytes());
        }
        Json::F64(f) => {
            out.push(tree_tag::F64);
            out.extend_from_slice(&f.to_bits().to_le_bytes());
        }
        Json::Str(s) => {
            out.push(tree_tag::STR);
            write_count(s.len(), out);
            out.extend_from_slice(s.as_bytes());
        }
        Json::Arr(items) => {
            out.push(tree_tag::ARR);
            write_count(items.len(), out);
            for item in items {
                write_json_tree(item, out);
            }
        }
        Json::Obj(entries) => {
            out.push(tree_tag::OBJ);
            write_count(entries.len(), out);
            for (key, val) in entries {
                write_count(key.len(), out);
                out.extend_from_slice(key.as_bytes());
                write_json_tree(val, out);
            }
        }
    }
}

/// Decode a binary-encoded [`Json`] tree (depth-capped against malformed
/// deeply-nested input).
pub fn read_json_tree(input: &mut BinReader<'_>, depth: usize) -> Result<Json, Error> {
    if depth > 512 {
        return Err(Error::msg("binary Json tree nested too deeply"));
    }
    Ok(match input.byte()? {
        tree_tag::NULL => Json::Null,
        tree_tag::FALSE => Json::Bool(false),
        tree_tag::TRUE => Json::Bool(true),
        tree_tag::U64 => Json::U64(input.u64()?),
        tree_tag::I64 => Json::I64(input.u64()? as i64),
        tree_tag::F64 => Json::F64(f64::from_bits(input.u64()?)),
        tree_tag::STR => Json::Str(input.str_slice()?.to_owned()),
        tree_tag::ARR => {
            let count = input.count()?;
            let mut items = Vec::with_capacity(input.capacity_for(count));
            for _ in 0..count {
                items.push(read_json_tree(input, depth + 1)?);
            }
            Json::Arr(items)
        }
        tree_tag::OBJ => {
            let count = input.count()?;
            let mut entries = Vec::with_capacity(input.capacity_for(count));
            for _ in 0..count {
                let key = input.str_slice()?.to_owned();
                entries.push((key, read_json_tree(input, depth + 1)?));
            }
            Json::Obj(entries)
        }
        other => return Err(Error::msg(format!("unknown Json tree tag {other}"))),
    })
}

/// Derive-macro helper: fetch and deserialize an object field.
///
/// Missing keys deserialize from `Json::Null`, so `Option` fields tolerate
/// absence exactly as upstream serde-json does.
pub fn __field<T: Deserialize>(value: &Json, name: &str) -> Result<T, Error> {
    match value {
        Json::Obj(entries) => {
            for (key, val) in entries {
                if key == name {
                    return T::from_json(val)
                        .map_err(|e| Error::msg(format!("field `{name}`: {e}")));
                }
            }
            T::from_json(&Json::Null).map_err(|_| Error::msg(format!("missing field `{name}`")))
        }
        other => Err(Error::msg(format!(
            "expected object with field `{name}`, got {}",
            kind_name(other)
        ))),
    }
}

/// Derive-macro helper: fetch and deserialize an array element.
pub fn __element<T: Deserialize>(value: &Json, index: usize) -> Result<T, Error> {
    match value {
        Json::Arr(items) => items
            .get(index)
            .ok_or_else(|| Error::msg(format!("missing tuple element {index}")))
            .and_then(T::from_json),
        other => Err(Error::msg(format!(
            "expected array, got {}",
            kind_name(other)
        ))),
    }
}

fn kind_name(v: &Json) -> &'static str {
    match v {
        Json::Null => "null",
        Json::Bool(_) => "bool",
        Json::U64(_) | Json::I64(_) | Json::F64(_) => "number",
        Json::Str(_) => "string",
        Json::Arr(_) => "array",
        Json::Obj(_) => "object",
    }
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

// Binary widths: every integer type encodes at a fixed declared width,
// with `usize`/`isize` pinned to 8 bytes so the encoding is identical
// across platforms.
macro_rules! impl_unsigned {
    ($($t:ty as $w:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Json { Json::U64(*self as u64) }
            fn write_json(&self, out: &mut JsonWriter<'_>) { out.unsigned(*self as u64) }
            fn write_bin(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&(*self as $w).to_le_bytes());
            }
        }
        impl Deserialize for $t {
            fn from_json(value: &Json) -> Result<Self, Error> {
                match value {
                    Json::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::msg(format!("{n} out of range for {}", stringify!($t)))),
                    Json::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::msg(format!("{n} out of range for {}", stringify!($t)))),
                    Json::F64(f) if f.fract() == 0.0 && *f >= 0.0 => Ok(*f as $t),
                    other => Err(Error::msg(format!(
                        "expected unsigned integer, got {}", kind_name(other)
                    ))),
                }
            }
            fn read_bin(input: &mut BinReader<'_>) -> Result<Self, Error> {
                let raw = <$w>::from_le_bytes(
                    input.take(std::mem::size_of::<$w>())?.try_into().expect("sized read"),
                );
                <$t>::try_from(raw)
                    .map_err(|_| Error::msg(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_unsigned!(u8 as u8, u16 as u16, u32 as u32, u64 as u64, usize as u64);

macro_rules! impl_signed {
    ($($t:ty as $w:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Json {
                let v = *self as i64;
                if v >= 0 { Json::U64(v as u64) } else { Json::I64(v) }
            }
            fn write_json(&self, out: &mut JsonWriter<'_>) { out.signed(*self as i64) }
            fn write_bin(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&(*self as $w).to_le_bytes());
            }
        }
        impl Deserialize for $t {
            fn from_json(value: &Json) -> Result<Self, Error> {
                match value {
                    Json::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::msg(format!("{n} out of range for {}", stringify!($t)))),
                    Json::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::msg(format!("{n} out of range for {}", stringify!($t)))),
                    Json::F64(f) if f.fract() == 0.0 => Ok(*f as $t),
                    other => Err(Error::msg(format!(
                        "expected integer, got {}", kind_name(other)
                    ))),
                }
            }
            fn read_bin(input: &mut BinReader<'_>) -> Result<Self, Error> {
                let raw = <$w>::from_le_bytes(
                    input.take(std::mem::size_of::<$w>())?.try_into().expect("sized read"),
                );
                <$t>::try_from(raw)
                    .map_err(|_| Error::msg(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_signed!(i8 as i8, i16 as i16, i32 as i32, i64 as i64, isize as i64);

impl Serialize for f64 {
    fn to_json(&self) -> Json {
        Json::F64(*self)
    }

    fn write_json(&self, out: &mut JsonWriter<'_>) {
        out.float(*self);
    }

    fn write_bin(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_bits().to_le_bytes());
    }
}

impl Deserialize for f64 {
    fn from_json(value: &Json) -> Result<Self, Error> {
        match value {
            Json::F64(f) => Ok(*f),
            Json::U64(n) => Ok(*n as f64),
            Json::I64(n) => Ok(*n as f64),
            Json::Null => Ok(f64::NAN),
            other => Err(Error::msg(format!(
                "expected number, got {}",
                kind_name(other)
            ))),
        }
    }

    fn read_bin(input: &mut BinReader<'_>) -> Result<Self, Error> {
        Ok(f64::from_bits(input.u64()?))
    }
}

impl Serialize for f32 {
    fn to_json(&self) -> Json {
        Json::F64(f64::from(*self))
    }

    fn write_json(&self, out: &mut JsonWriter<'_>) {
        out.float(f64::from(*self));
    }

    fn write_bin(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_bits().to_le_bytes());
    }
}

impl Deserialize for f32 {
    fn from_json(value: &Json) -> Result<Self, Error> {
        f64::from_json(value).map(|f| f as f32)
    }

    fn read_bin(input: &mut BinReader<'_>) -> Result<Self, Error> {
        Ok(f32::from_bits(input.u32()?))
    }
}

impl Serialize for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }

    fn write_json(&self, out: &mut JsonWriter<'_>) {
        out.boolean(*self);
    }

    fn write_bin(&self, out: &mut Vec<u8>) {
        out.push(*self as u8);
    }
}

impl Deserialize for bool {
    fn from_json(value: &Json) -> Result<Self, Error> {
        match value {
            Json::Bool(b) => Ok(*b),
            other => Err(Error::msg(format!(
                "expected bool, got {}",
                kind_name(other)
            ))),
        }
    }

    fn read_bin(input: &mut BinReader<'_>) -> Result<Self, Error> {
        match input.byte()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(Error::msg(format!("invalid bool byte {other}"))),
        }
    }
}

impl Serialize for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }

    fn write_json(&self, out: &mut JsonWriter<'_>) {
        out.string(self);
    }

    fn write_bin(&self, out: &mut Vec<u8>) {
        self.as_str().write_bin(out);
    }
}

impl Deserialize for String {
    fn from_json(value: &Json) -> Result<Self, Error> {
        match value {
            Json::Str(s) => Ok(s.clone()),
            other => Err(Error::msg(format!(
                "expected string, got {}",
                kind_name(other)
            ))),
        }
    }

    fn read_bin(input: &mut BinReader<'_>) -> Result<Self, Error> {
        input.str_slice().map(str::to_owned)
    }
}

impl Serialize for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }

    fn write_json(&self, out: &mut JsonWriter<'_>) {
        out.string(self);
    }

    fn write_bin(&self, out: &mut Vec<u8>) {
        write_count(self.len(), out);
        out.extend_from_slice(self.as_bytes());
    }
}

impl Serialize for char {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }

    fn write_json(&self, out: &mut JsonWriter<'_>) {
        let mut buf = [0u8; 4];
        out.string(self.encode_utf8(&mut buf));
    }

    fn write_bin(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(*self as u32).to_le_bytes());
    }
}

impl Deserialize for char {
    fn from_json(value: &Json) -> Result<Self, Error> {
        match value {
            Json::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::msg(format!(
                "expected single-char string, got {}",
                kind_name(other)
            ))),
        }
    }

    fn read_bin(input: &mut BinReader<'_>) -> Result<Self, Error> {
        let raw = input.u32()?;
        char::from_u32(raw).ok_or_else(|| Error::msg(format!("invalid char scalar {raw}")))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }

    fn write_json(&self, out: &mut JsonWriter<'_>) {
        (**self).write_json(out);
    }

    fn write_bin(&self, out: &mut Vec<u8>) {
        (**self).write_bin(out);
    }
}

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(Serialize::to_json).collect())
    }

    fn write_json(&self, out: &mut JsonWriter<'_>) {
        self.as_slice().write_json(out);
    }

    fn write_bin(&self, out: &mut Vec<u8>) {
        self.as_slice().write_bin(out);
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json(value: &Json) -> Result<Self, Error> {
        match value {
            Json::Arr(items) => items.iter().map(T::from_json).collect(),
            other => Err(Error::msg(format!(
                "expected array, got {}",
                kind_name(other)
            ))),
        }
    }

    fn read_bin(input: &mut BinReader<'_>) -> Result<Self, Error> {
        let count = input.count()?;
        let mut items = Vec::with_capacity(input.capacity_for(count));
        for _ in 0..count {
            items.push(T::read_bin(input)?);
        }
        Ok(items)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(Serialize::to_json).collect())
    }

    fn write_json(&self, out: &mut JsonWriter<'_>) {
        out.begin_array();
        for item in self {
            out.element();
            item.write_json(out);
        }
        out.end_array();
    }

    fn write_bin(&self, out: &mut Vec<u8>) {
        write_count(self.len(), out);
        for item in self {
            item.write_bin(out);
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }

    fn write_json(&self, out: &mut JsonWriter<'_>) {
        match self {
            Some(v) => v.write_json(out),
            None => out.null(),
        }
    }

    // Unlike the JSON encoding (which flattens `Some(v)` to `v`), the
    // binary encoding needs an explicit presence tag: without
    // self-describing values there is no `null` to distinguish `None`.
    fn write_bin(&self, out: &mut Vec<u8>) {
        match self {
            Some(v) => {
                out.push(1);
                v.write_bin(out);
            }
            None => out.push(0),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json(value: &Json) -> Result<Self, Error> {
        match value {
            Json::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }

    fn read_bin(input: &mut BinReader<'_>) -> Result<Self, Error> {
        match input.byte()? {
            0 => Ok(None),
            1 => T::read_bin(input).map(Some),
            other => Err(Error::msg(format!("invalid Option tag {other}"))),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }

    fn write_json(&self, out: &mut JsonWriter<'_>) {
        (**self).write_json(out);
    }

    fn write_bin(&self, out: &mut Vec<u8>) {
        (**self).write_bin(out);
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_json(value: &Json) -> Result<Self, Error> {
        T::from_json(value).map(Box::new)
    }

    fn read_bin(input: &mut BinReader<'_>) -> Result<Self, Error> {
        T::read_bin(input).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Arc<T> {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }

    fn write_json(&self, out: &mut JsonWriter<'_>) {
        (**self).write_json(out);
    }

    fn write_bin(&self, out: &mut Vec<u8>) {
        (**self).write_bin(out);
    }
}

impl<T: Deserialize> Deserialize for Arc<T> {
    fn from_json(value: &Json) -> Result<Self, Error> {
        T::from_json(value).map(Arc::new)
    }

    fn read_bin(input: &mut BinReader<'_>) -> Result<Self, Error> {
        T::read_bin(input).map(Arc::new)
    }
}

impl Serialize for () {
    fn to_json(&self) -> Json {
        Json::Null
    }

    fn write_json(&self, out: &mut JsonWriter<'_>) {
        out.null();
    }

    fn write_bin(&self, _out: &mut Vec<u8>) {}
}

impl Deserialize for () {
    fn from_json(_: &Json) -> Result<Self, Error> {
        Ok(())
    }

    fn read_bin(_: &mut BinReader<'_>) -> Result<Self, Error> {
        Ok(())
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+)),+) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_json(&self) -> Json {
                Json::Arr(vec![$(self.$idx.to_json()),+])
            }
            fn write_json(&self, out: &mut JsonWriter<'_>) {
                out.begin_array();
                $(
                    out.element();
                    self.$idx.write_json(out);
                )+
                out.end_array();
            }
            fn write_bin(&self, out: &mut Vec<u8>) {
                $(self.$idx.write_bin(out);)+
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_json(value: &Json) -> Result<Self, Error> {
                Ok(($(__element::<$name>(value, $idx)?,)+))
            }
            fn read_bin(input: &mut BinReader<'_>) -> Result<Self, Error> {
                Ok(($(<$name>::read_bin(input)?,)+))
            }
        }
    )+};
}
impl_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3)
);

// Maps serialize as arrays of `[key, value]` pairs so that arbitrary
// (non-string) key types work — upstream serde does the same for
// non-string-keyed maps in self-describing formats. `BTreeMap` output is
// ordered by key; `HashMap` output is sorted by the serialized key text so
// that serialization is deterministic.

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_json(&self) -> Json {
        Json::Arr(
            self.iter()
                .map(|(k, v)| Json::Arr(vec![k.to_json(), v.to_json()]))
                .collect(),
        )
    }

    fn write_json(&self, out: &mut JsonWriter<'_>) {
        out.begin_array();
        for (k, v) in self {
            out.element();
            out.begin_array();
            out.element();
            k.write_json(out);
            out.element();
            v.write_json(out);
            out.end_array();
        }
        out.end_array();
    }

    fn write_bin(&self, out: &mut Vec<u8>) {
        write_count(self.len(), out);
        for (k, v) in self {
            k.write_bin(out);
            v.write_bin(out);
        }
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_json(value: &Json) -> Result<Self, Error> {
        map_entries::<K, V>(value)?.into_iter().map(Ok).collect()
    }

    // The writer emits entries in key order, so collecting into a Vec
    // first lets `from_iter` take the sorted bulk-build path instead of
    // paying a tree insert per entry.
    fn read_bin(input: &mut BinReader<'_>) -> Result<Self, Error> {
        let count = input.count()?;
        let mut entries = Vec::with_capacity(input.capacity_for(count));
        for _ in 0..count {
            let key = K::read_bin(input)?;
            entries.push((key, V::read_bin(input)?));
        }
        Ok(entries.into_iter().collect())
    }
}

impl<K: Serialize + Eq + Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn to_json(&self) -> Json {
        let mut entries: Vec<Json> = self
            .iter()
            .map(|(k, v)| Json::Arr(vec![k.to_json(), v.to_json()]))
            .collect();
        entries.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
        Json::Arr(entries)
    }

    // Entries sort by their encoded bytes so the output is deterministic
    // across hasher seeds, like the sorted JSON encoding.
    fn write_bin(&self, out: &mut Vec<u8>) {
        let mut entries: Vec<Vec<u8>> = self
            .iter()
            .map(|(k, v)| {
                let mut pair = Vec::new();
                k.write_bin(&mut pair);
                v.write_bin(&mut pair);
                pair
            })
            .collect();
        entries.sort_unstable();
        write_count(entries.len(), out);
        for pair in entries {
            out.extend_from_slice(&pair);
        }
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_json(value: &Json) -> Result<Self, Error> {
        map_entries::<K, V>(value)?.into_iter().map(Ok).collect()
    }

    fn read_bin(input: &mut BinReader<'_>) -> Result<Self, Error> {
        let count = input.count()?;
        let mut map = HashMap::with_capacity(input.capacity_for(count));
        for _ in 0..count {
            let key = K::read_bin(input)?;
            map.insert(key, V::read_bin(input)?);
        }
        Ok(map)
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(Serialize::to_json).collect())
    }

    fn write_json(&self, out: &mut JsonWriter<'_>) {
        out.begin_array();
        for item in self {
            out.element();
            item.write_json(out);
        }
        out.end_array();
    }

    fn write_bin(&self, out: &mut Vec<u8>) {
        write_count(self.len(), out);
        for item in self {
            item.write_bin(out);
        }
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_json(value: &Json) -> Result<Self, Error> {
        match value {
            Json::Arr(items) => items.iter().map(T::from_json).collect(),
            other => Err(Error::msg(format!(
                "expected array, got {}",
                kind_name(other)
            ))),
        }
    }

    // Same sorted bulk-build trick as the BTreeMap decode above.
    fn read_bin(input: &mut BinReader<'_>) -> Result<Self, Error> {
        let count = input.count()?;
        let mut items = Vec::with_capacity(input.capacity_for(count));
        for _ in 0..count {
            items.push(T::read_bin(input)?);
        }
        Ok(items.into_iter().collect())
    }
}

impl<T: Serialize + Eq + Hash> Serialize for HashSet<T> {
    fn to_json(&self) -> Json {
        let mut items: Vec<Json> = self.iter().map(Serialize::to_json).collect();
        items.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
        Json::Arr(items)
    }

    fn write_bin(&self, out: &mut Vec<u8>) {
        let mut items: Vec<Vec<u8>> = self
            .iter()
            .map(|item| {
                let mut bytes = Vec::new();
                item.write_bin(&mut bytes);
                bytes
            })
            .collect();
        items.sort_unstable();
        write_count(items.len(), out);
        for bytes in items {
            out.extend_from_slice(&bytes);
        }
    }
}

impl<T: Deserialize + Eq + Hash> Deserialize for HashSet<T> {
    fn from_json(value: &Json) -> Result<Self, Error> {
        match value {
            Json::Arr(items) => items.iter().map(T::from_json).collect(),
            other => Err(Error::msg(format!(
                "expected array, got {}",
                kind_name(other)
            ))),
        }
    }

    fn read_bin(input: &mut BinReader<'_>) -> Result<Self, Error> {
        let count = input.count()?;
        let mut set = HashSet::with_capacity(input.capacity_for(count));
        for _ in 0..count {
            set.insert(T::read_bin(input)?);
        }
        Ok(set)
    }
}

fn map_entries<K: Deserialize, V: Deserialize>(value: &Json) -> Result<Vec<(K, V)>, Error> {
    match value {
        Json::Arr(items) => items
            .iter()
            .map(|pair| Ok((__element::<K>(pair, 0)?, __element::<V>(pair, 1)?)))
            .collect(),
        other => Err(Error::msg(format!(
            "expected array of map entries, got {}",
            kind_name(other)
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integers_roundtrip_exactly() {
        let v = u64::MAX;
        assert_eq!(u64::from_json(&v.to_json()).unwrap(), v);
        let n: i64 = -42;
        assert_eq!(i64::from_json(&n.to_json()).unwrap(), n);
    }

    #[test]
    fn option_null_roundtrip() {
        let none: Option<u32> = None;
        assert_eq!(none.to_json(), Json::Null);
        assert_eq!(Option::<u32>::from_json(&Json::Null).unwrap(), None);
        assert_eq!(Option::<u32>::from_json(&Json::U64(3)).unwrap(), Some(3));
    }

    #[test]
    fn missing_field_errors_except_option() {
        let obj = Json::Obj(vec![("a".into(), Json::U64(1))]);
        assert!(__field::<u32>(&obj, "b").is_err());
        assert_eq!(__field::<Option<u32>>(&obj, "b").unwrap(), None);
        assert_eq!(__field::<u32>(&obj, "a").unwrap(), 1);
    }

    #[test]
    fn binary_roundtrip_primitives_and_containers() {
        fn roundtrip<T: Serialize + Deserialize + PartialEq + fmt::Debug>(value: T) {
            let bytes = to_bin_bytes(&value);
            assert_eq!(from_bin_bytes::<T>(&bytes).unwrap(), value);
        }
        roundtrip(u64::MAX);
        roundtrip(-42i32);
        roundtrip(usize::MAX);
        roundtrip(3.5f64);
        roundtrip(true);
        roundtrip("héllo\nworld".to_string());
        roundtrip('→');
        roundtrip(Option::<String>::None);
        roundtrip(Some("x".to_string()));
        roundtrip(vec![1u32, 2, 3]);
        roundtrip((7u8, "k".to_string(), -1i64));
        roundtrip(BTreeMap::from([
            ("a".to_string(), 1u32),
            ("b".to_string(), 2),
        ]));
        roundtrip(HashMap::from([(3u64, vec![1.5f64]), (9, vec![])]));
        roundtrip(BTreeSet::from([1u16, 5]));
        roundtrip(HashSet::from(["q".to_string()]));
    }

    #[test]
    fn binary_rejects_truncation_and_trailing_bytes() {
        let bytes = to_bin_bytes(&vec![1u32, 2, 3]);
        assert!(from_bin_bytes::<Vec<u32>>(&bytes[..bytes.len() - 1]).is_err());
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(from_bin_bytes::<Vec<u32>>(&padded).is_err());
        // A garbage count must fail cleanly, not allocate unboundedly.
        let garbage = u32::MAX.to_le_bytes();
        assert!(from_bin_bytes::<Vec<u64>>(&garbage).is_err());
    }

    #[test]
    fn binary_default_path_encodes_json_tree() {
        // A type without a direct encoder goes through the tagged tree and
        // must still roundtrip via from_json.
        struct TreeOnly(Vec<Option<String>>);
        impl Serialize for TreeOnly {
            fn to_json(&self) -> Json {
                self.0.to_json()
            }
        }
        impl Deserialize for TreeOnly {
            fn from_json(value: &Json) -> Result<Self, Error> {
                Vec::from_json(value).map(TreeOnly)
            }
        }
        let value = TreeOnly(vec![Some("a".into()), None]);
        let back = from_bin_bytes::<TreeOnly>(&to_bin_bytes(&value)).unwrap();
        assert_eq!(back.0, value.0);
    }

    #[test]
    fn hashmap_binary_encoding_is_deterministic() {
        let mut m = HashMap::new();
        for i in 0..64u64 {
            m.insert(i, i * 3);
        }
        let a = to_bin_bytes(&m);
        let b = to_bin_bytes(&m.clone());
        assert_eq!(a, b);
    }

    #[test]
    fn maps_roundtrip() {
        let mut m = BTreeMap::new();
        m.insert("x".to_string(), 1u32);
        m.insert("y".to_string(), 2);
        let back = BTreeMap::<String, u32>::from_json(&m.to_json()).unwrap();
        assert_eq!(back, m);

        let mut h = HashMap::new();
        h.insert(7u64, vec![1.5f64]);
        let back = HashMap::<u64, Vec<f64>>::from_json(&h.to_json()).unwrap();
        assert_eq!(back, h);
    }
}
