//! Vendored minimal stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! vendored `serde` crate without depending on `syn`/`quote` (unavailable
//! offline): the item is parsed directly from the raw `TokenStream` and the
//! impls are generated as source strings.
//!
//! Supported shapes — everything this workspace derives on:
//! * structs with named fields (honouring `#[serde(skip)]`)
//! * tuple structs (newtype and general)
//! * unit structs
//! * enums with unit, tuple, and struct variants (externally tagged, like
//!   upstream serde's default representation)
//!
//! Generics are not supported; deriving on a generic type is a compile
//! error with a clear message.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    generate_serialize(&item)
        .parse()
        .expect("generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    generate_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl must parse")
}

// ---------------------------------------------------------------------------
// Item model
// ---------------------------------------------------------------------------

struct Field {
    name: String,
    skip: bool,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Shape {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    shape: Shape,
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes and visibility.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => break,
        }
    }

    let keyword = ident_text(&tokens[i]).expect("expected `struct` or `enum`");
    i += 1;
    let name = ident_text(&tokens[i]).expect("expected type name");
    i += 1;

    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("vendored serde_derive does not support generic types (deriving on `{name}`)");
        }
    }

    let shape = match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_tuple_fields(g.stream()))
            }
            _ => Shape::UnitStruct,
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            _ => panic!("enum `{name}` has no body"),
        },
        other => panic!("cannot derive serde traits for `{other}` items"),
    };

    Item { name, shape }
}

fn ident_text(token: &TokenTree) -> Option<String> {
    match token {
        TokenTree::Ident(id) => Some(id.to_string()),
        _ => None,
    }
}

/// Parse `a: T, pub b: U, #[serde(skip)] c: V` into fields.
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut skip = false;
        // Attributes.
        while let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() != '#' {
                break;
            }
            if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                let attr = g.stream().to_string();
                if attr.starts_with("serde") && attr.contains("skip") {
                    skip = true;
                }
            }
            i += 2;
        }
        // Visibility.
        if let Some(TokenTree::Ident(id)) = tokens.get(i) {
            if id.to_string() == "pub" {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
        }
        let Some(name) = tokens.get(i).and_then(ident_text) else {
            break;
        };
        i += 1; // field name
        i += 1; // ':'
                // Skip the type: scan to the next comma at angle-bracket depth 0.
        let mut depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(Field { name, skip });
    }
    fields
}

/// Count the fields of a tuple struct / tuple variant.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut depth = 0i32;
    for token in &tokens {
        match token {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => count += 1,
            _ => {}
        }
    }
    // Tolerate a trailing comma.
    if matches!(tokens.last(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
        count -= 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Attributes on the variant.
        while let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() != '#' {
                break;
            }
            i += 2;
        }
        let Some(name) = tokens.get(i).and_then(ident_text) else {
            break;
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Named(parse_named_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        // Skip to the next top-level comma (covers discriminants).
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn generate_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let mut code = String::from(
                "let mut __o: ::std::vec::Vec<(::std::string::String, ::serde::Json)> = ::std::vec::Vec::new();\n",
            );
            for field in fields.iter().filter(|f| !f.skip) {
                code.push_str(&format!(
                    "__o.push((\"{f}\".to_string(), ::serde::Serialize::to_json(&self.{f})));\n",
                    f = field.name
                ));
            }
            code.push_str("::serde::Json::Obj(__o)");
            code
        }
        Shape::TupleStruct(1) => "::serde::Serialize::to_json(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_json(&self.{i})"))
                .collect();
            format!("::serde::Json::Arr(vec![{}])", items.join(", "))
        }
        Shape::UnitStruct => "::serde::Json::Null".to_string(),
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "Self::{vname} => ::serde::Json::Str(\"{vname}\".to_string()),\n"
                    )),
                    VariantKind::Tuple(1) => arms.push_str(&format!(
                        "Self::{vname}(__f0) => ::serde::Json::Obj(vec![(\"{vname}\".to_string(), ::serde::Serialize::to_json(__f0))]),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_json({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "Self::{vname}({binds}) => ::serde::Json::Obj(vec![(\"{vname}\".to_string(), ::serde::Json::Arr(vec![{items}]))]),\n",
                            binds = binds.join(", "),
                            items = items.join(", ")
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let names: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                if f.skip {
                                    format!("{}: _", f.name)
                                } else {
                                    f.name.clone()
                                }
                            })
                            .collect();
                        let entries: Vec<String> = fields
                            .iter()
                            .filter(|f| !f.skip)
                            .map(|f| {
                                format!(
                                    "(\"{f}\".to_string(), ::serde::Serialize::to_json({f}))",
                                    f = f.name
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "Self::{vname} {{ {names} }} => ::serde::Json::Obj(vec![(\"{vname}\".to_string(), ::serde::Json::Obj(vec![{entries}]))]),\n",
                            names = names.join(", "),
                            entries = entries.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    let stream_body = generate_write_json(item);
    let bin_body = generate_write_bin(item);
    format!(
        "#[automatically_derived]\nimpl ::serde::Serialize for {name} {{\n    fn to_json(&self) -> ::serde::Json {{\n{body}\n    }}\n    fn write_json(&self, __out: &mut ::serde::JsonWriter<'_>) {{\n{stream_body}\n    }}\n    #[allow(unused_variables)]\n    fn write_bin(&self, __out: &mut ::std::vec::Vec<u8>) {{\n{bin_body}\n    }}\n}}\n"
    )
}

/// The body of the generated `write_bin` — positional fields in declaration
/// order, `u32` little-endian variant tags, skipped fields omitted (the
/// reader restores them with `Default::default()`).
fn generate_write_bin(item: &Item) -> String {
    match &item.shape {
        Shape::NamedStruct(fields) => {
            let mut code = String::new();
            for field in fields.iter().filter(|f| !f.skip) {
                code.push_str(&format!(
                    "::serde::Serialize::write_bin(&self.{f}, __out);\n",
                    f = field.name
                ));
            }
            code
        }
        Shape::TupleStruct(n) => {
            let mut code = String::new();
            for i in 0..*n {
                code.push_str(&format!(
                    "::serde::Serialize::write_bin(&self.{i}, __out);\n"
                ));
            }
            code
        }
        Shape::UnitStruct => String::new(),
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for (idx, v) in variants.iter().enumerate() {
                let vname = &v.name;
                let tag = format!("__out.extend_from_slice(&{idx}u32.to_le_bytes());\n");
                match &v.kind {
                    VariantKind::Unit => {
                        arms.push_str(&format!("Self::{vname} => {{\n{tag}}}\n"));
                    }
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let mut writes = tag;
                        for b in &binds {
                            writes
                                .push_str(&format!("::serde::Serialize::write_bin({b}, __out);\n"));
                        }
                        arms.push_str(&format!(
                            "Self::{vname}({binds}) => {{\n{writes}}}\n",
                            binds = binds.join(", ")
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let names: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                if f.skip {
                                    format!("{}: _", f.name)
                                } else {
                                    f.name.clone()
                                }
                            })
                            .collect();
                        let mut writes = tag;
                        for f in fields.iter().filter(|f| !f.skip) {
                            writes.push_str(&format!(
                                "::serde::Serialize::write_bin({f}, __out);\n",
                                f = f.name
                            ));
                        }
                        arms.push_str(&format!(
                            "Self::{vname} {{ {names} }} => {{\n{writes}}}\n",
                            names = names.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    }
}

/// The body of the generated streaming `write_json` — byte-identical output
/// to compact-rendering the `to_json` tree, without building the tree.
fn generate_write_json(item: &Item) -> String {
    match &item.shape {
        Shape::NamedStruct(fields) => {
            let mut code = String::from("__out.begin_object();\n");
            for field in fields.iter().filter(|f| !f.skip) {
                code.push_str(&format!(
                    "__out.key(\"{f}\");\n::serde::Serialize::write_json(&self.{f}, __out);\n",
                    f = field.name
                ));
            }
            code.push_str("__out.end_object();");
            code
        }
        Shape::TupleStruct(1) => "::serde::Serialize::write_json(&self.0, __out);".to_string(),
        Shape::TupleStruct(n) => {
            let mut code = String::from("__out.begin_array();\n");
            for i in 0..*n {
                code.push_str(&format!(
                    "__out.element();\n::serde::Serialize::write_json(&self.{i}, __out);\n"
                ));
            }
            code.push_str("__out.end_array();");
            code
        }
        Shape::UnitStruct => "__out.null();".to_string(),
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        arms.push_str(&format!("Self::{vname} => __out.string(\"{vname}\"),\n"))
                    }
                    VariantKind::Tuple(1) => arms.push_str(&format!(
                        "Self::{vname}(__f0) => {{\n\
                         __out.begin_object();\n\
                         __out.key(\"{vname}\");\n\
                         ::serde::Serialize::write_json(__f0, __out);\n\
                         __out.end_object();\n\
                         }}\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let mut writes = String::new();
                        for b in &binds {
                            writes.push_str(&format!(
                                "__out.element();\n::serde::Serialize::write_json({b}, __out);\n"
                            ));
                        }
                        arms.push_str(&format!(
                            "Self::{vname}({binds}) => {{\n\
                             __out.begin_object();\n\
                             __out.key(\"{vname}\");\n\
                             __out.begin_array();\n\
                             {writes}\
                             __out.end_array();\n\
                             __out.end_object();\n\
                             }}\n",
                            binds = binds.join(", ")
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let names: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                if f.skip {
                                    format!("{}: _", f.name)
                                } else {
                                    f.name.clone()
                                }
                            })
                            .collect();
                        let mut writes = String::new();
                        for f in fields.iter().filter(|f| !f.skip) {
                            writes.push_str(&format!(
                                "__out.key(\"{f}\");\n::serde::Serialize::write_json({f}, __out);\n",
                                f = f.name
                            ));
                        }
                        arms.push_str(&format!(
                            "Self::{vname} {{ {names} }} => {{\n\
                             __out.begin_object();\n\
                             __out.key(\"{vname}\");\n\
                             __out.begin_object();\n\
                             {writes}\
                             __out.end_object();\n\
                             __out.end_object();\n\
                             }}\n",
                            names = names.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    }
}

fn generate_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let mut inits = String::new();
            for field in fields {
                if field.skip {
                    inits.push_str(&format!(
                        "{f}: ::std::default::Default::default(),\n",
                        f = field.name
                    ));
                } else {
                    inits.push_str(&format!(
                        "{f}: ::serde::__field(__v, \"{f}\")?,\n",
                        f = field.name
                    ));
                }
            }
            format!("::std::result::Result::Ok(Self {{\n{inits}}})")
        }
        Shape::TupleStruct(1) => {
            "::std::result::Result::Ok(Self(::serde::Deserialize::from_json(__v)?))".to_string()
        }
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::__element(__v, {i})?"))
                .collect();
            format!("::std::result::Result::Ok(Self({}))", items.join(", "))
        }
        Shape::UnitStruct => "::std::result::Result::Ok(Self)".to_string(),
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => unit_arms.push_str(&format!(
                        "\"{vname}\" => ::std::result::Result::Ok(Self::{vname}),\n"
                    )),
                    VariantKind::Tuple(1) => data_arms.push_str(&format!(
                        "\"{vname}\" => ::std::result::Result::Ok(Self::{vname}(::serde::Deserialize::from_json(__inner)?)),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::__element(__inner, {i})?"))
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{vname}\" => ::std::result::Result::Ok(Self::{vname}({})),\n",
                            items.join(", ")
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                if f.skip {
                                    format!("{f}: ::std::default::Default::default()", f = f.name)
                                } else {
                                    format!(
                                        "{f}: ::serde::__field(__inner, \"{f}\")?",
                                        f = f.name
                                    )
                                }
                            })
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{vname}\" => ::std::result::Result::Ok(Self::{vname} {{ {} }}),\n",
                            inits.join(", ")
                        ));
                    }
                }
            }
            format!(
                "match __v {{\n\
                 ::serde::Json::Str(__s) => match __s.as_str() {{\n{unit_arms}\
                 __other => ::std::result::Result::Err(::serde::Error::msg(format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                 }},\n\
                 ::serde::Json::Obj(__entries) if __entries.len() == 1 => {{\n\
                 let (__tag, __inner) = &__entries[0];\n\
                 let _ = __inner;\n\
                 match __tag.as_str() {{\n{data_arms}\
                 __other => ::std::result::Result::Err(::serde::Error::msg(format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                 }}\n\
                 }},\n\
                 _ => ::std::result::Result::Err(::serde::Error::msg(\"expected enum representation for {name}\".to_string())),\n\
                 }}"
            )
        }
    };
    let bin_body = generate_read_bin(item);
    format!(
        "#[automatically_derived]\nimpl ::serde::Deserialize for {name} {{\n    fn from_json(__v: &::serde::Json) -> ::std::result::Result<Self, ::serde::Error> {{\n{body}\n    }}\n    #[allow(unused_variables)]\n    fn read_bin(__in: &mut ::serde::BinReader<'_>) -> ::std::result::Result<Self, ::serde::Error> {{\n{bin_body}\n    }}\n}}\n"
    )
}

/// The body of the generated `read_bin` — mirrors `generate_write_bin`:
/// positional fields in declaration order (struct-literal initializers
/// evaluate left-to-right, so reads happen in write order), `u32` variant
/// tags, skipped fields restored with `Default::default()`.
fn generate_read_bin(item: &Item) -> String {
    let name = &item.name;
    match &item.shape {
        Shape::NamedStruct(fields) => {
            let mut inits = String::new();
            for field in fields {
                if field.skip {
                    inits.push_str(&format!(
                        "{f}: ::std::default::Default::default(),\n",
                        f = field.name
                    ));
                } else {
                    inits.push_str(&format!(
                        "{f}: ::serde::Deserialize::read_bin(__in)?,\n",
                        f = field.name
                    ));
                }
            }
            format!("::std::result::Result::Ok(Self {{\n{inits}}})")
        }
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|_| "::serde::Deserialize::read_bin(__in)?".to_string())
                .collect();
            format!("::std::result::Result::Ok(Self({}))", items.join(", "))
        }
        Shape::UnitStruct => "::std::result::Result::Ok(Self)".to_string(),
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for (idx, v) in variants.iter().enumerate() {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{idx}u32 => ::std::result::Result::Ok(Self::{vname}),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|_| "::serde::Deserialize::read_bin(__in)?".to_string())
                            .collect();
                        arms.push_str(&format!(
                            "{idx}u32 => ::std::result::Result::Ok(Self::{vname}({})),\n",
                            items.join(", ")
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                if f.skip {
                                    format!("{f}: ::std::default::Default::default()", f = f.name)
                                } else {
                                    format!(
                                        "{f}: ::serde::Deserialize::read_bin(__in)?",
                                        f = f.name
                                    )
                                }
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{idx}u32 => ::std::result::Result::Ok(Self::{vname} {{ {} }}),\n",
                            inits.join(", ")
                        ));
                    }
                }
            }
            format!(
                "match __in.u32()? {{\n{arms}\
                 __other => ::std::result::Result::Err(::serde::Error::msg(format!(\"unknown variant tag {{__other}} of {name}\"))),\n\
                 }}"
            )
        }
    }
}
