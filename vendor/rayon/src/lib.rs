//! Vendored minimal stand-in for the `rayon` crate.
//!
//! The build environment has no network access, so this crate provides the
//! slice of the rayon API that CMDL uses — `par_iter().map(..).collect()`
//! and [`join`] — backed by real OS threads (`std::thread::scope`), not a
//! work-stealing pool. Inputs are split into one contiguous chunk per
//! available core; results are reassembled in order, so `collect` is
//! deterministic regardless of scheduling.

use std::thread;

pub mod prelude {
    //! The rayon prelude: parallel-iterator entry-point traits.
    pub use crate::IntoParallelRefIterator;
}

/// How many worker threads a parallel call may use.
fn max_threads() -> usize {
    thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Map `f` over `items` in parallel, preserving order.
fn par_map_slice<'a, T, R, F>(items: &'a [T], f: &F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    let n = items.len();
    let threads = max_threads().min(n.max(1));
    if threads <= 1 || n < 2 {
        return items.iter().map(f).collect();
    }
    let chunk = n.div_ceil(threads);
    let mut out: Vec<R> = Vec::with_capacity(n);
    thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|part| scope.spawn(move || part.iter().map(f).collect::<Vec<R>>()))
            .collect();
        for handle in handles {
            out.extend(handle.join().expect("rayon-shim worker panicked"));
        }
    });
    out
}

/// Entry point: `.par_iter()` over a borrowed collection.
pub trait IntoParallelRefIterator<'data> {
    /// The element type yielded by reference.
    type Item: Sync + 'data;

    /// A parallel iterator over `&Self::Item`.
    fn par_iter(&'data self) -> ParIter<'data, Self::Item>;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = T;

    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { items: self }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = T;

    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { items: self }
    }
}

/// A borrowed parallel iterator.
#[derive(Debug)]
pub struct ParIter<'data, T: Sync> {
    items: &'data [T],
}

impl<'data, T: Sync> ParIter<'data, T> {
    /// Map each element through `f` in parallel.
    pub fn map<R, F>(self, f: F) -> ParMap<'data, T, F>
    where
        R: Send,
        F: Fn(&'data T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Is the iterator empty?
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// The result of [`ParIter::map`]; terminate with [`ParMap::collect`].
pub struct ParMap<'data, T: Sync, F> {
    items: &'data [T],
    f: F,
}

impl<'data, T, F> ParMap<'data, T, F>
where
    T: Sync,
{
    /// Execute the map in parallel and collect the results in input order.
    pub fn collect<C, R>(self) -> C
    where
        R: Send,
        F: Fn(&'data T) -> R + Sync,
        C: From<Vec<R>>,
    {
        C::from(par_map_slice(self.items, &self.f))
    }
}

/// Run two closures, potentially in parallel, and return both results.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    thread::scope(|scope| {
        let b = scope.spawn(oper_b);
        let ra = oper_a();
        (ra, b.join().expect("rayon-shim join worker panicked"))
    })
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let input: Vec<u64> = (0..1000).collect();
        let out: Vec<u64> = input.par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_on_empty_and_small() {
        let empty: Vec<u32> = Vec::new();
        let out: Vec<u32> = empty.par_iter().map(|x| *x).collect();
        assert!(out.is_empty());
        let one = [7u32];
        let out: Vec<u32> = one.par_iter().map(|x| x + 1).collect();
        assert_eq!(out, vec![8]);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn par_map_actually_runs_closures_once_each() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        let input: Vec<u32> = (0..503).collect();
        let _: Vec<u32> = input
            .par_iter()
            .map(|x| {
                counter.fetch_add(1, Ordering::Relaxed);
                *x
            })
            .collect();
        assert_eq!(counter.load(Ordering::Relaxed), 503);
    }
}
