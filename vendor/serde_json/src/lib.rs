//! Vendored minimal stand-in for the `serde_json` crate.
//!
//! Renders the vendored `serde`'s [`Json`] tree to text and parses it back.
//! Supports the full JSON grammar (objects, arrays, strings with escapes,
//! integers, floats, booleans, null) plus exact `u64`/`i64` round-trips.

use serde::{Deserialize, Json, Serialize};

pub use serde::Error;

/// Serialize a value to a compact JSON string.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_json(&value.to_json(), &mut out, None, 0);
    Ok(out)
}

/// Serialize a value to a 2-space-indented JSON string.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_json(&value.to_json(), &mut out, Some(2), 0);
    Ok(out)
}

/// Deserialize a value from a JSON string.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::msg(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    T::from_json(&value)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_json(value: &Json, out: &mut String, indent: Option<usize>, level: usize) {
    match value {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::U64(n) => out.push_str(&n.to_string()),
        Json::I64(n) => out.push_str(&n.to_string()),
        Json::F64(f) => {
            if f.is_finite() {
                // `{:?}` prints the shortest representation that round-trips.
                out.push_str(&format!("{f:?}"));
            } else {
                out.push_str("null");
            }
        }
        Json::Str(s) => write_string(s, out),
        Json::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_json(item, out, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Json::Obj(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_json(val, out, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..(width * level) {
            out.push(' ');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at offset {}",
                byte as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Json, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_literal("null", Json::Null),
            Some(b't') => self.parse_literal("true", Json::Bool(true)),
            Some(b'f') => self.parse_literal("false", Json::Bool(false)),
            Some(b'"') => self.parse_string().map(Json::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::msg(format!(
                "unexpected character at offset {}",
                self.pos
            ))),
        }
    }

    fn parse_literal(&mut self, literal: &str, value: Json) -> Result<Json, Error> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(value)
        } else {
            Err(Error::msg(format!(
                "invalid literal at offset {}",
                self.pos
            )))
        }
    }

    fn parse_number(&mut self) -> Result<Json, Error> {
        let start = self.pos;
        let mut is_float = false;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid utf8 in number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Json::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Json::F64)
            .map_err(|_| Error::msg(format!("invalid number `{text}`")))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error::msg("unterminated string"));
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let Some(esc) = self.peek() else {
                        return Err(Error::msg("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let first = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&first) {
                                // Surrogate pair.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let second = self.parse_hex4()?;
                                0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00)
                            } else {
                                first
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::msg("invalid unicode escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::msg(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::msg("invalid utf8 in string"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::msg("truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::msg("invalid unicode escape"))?;
        self.pos += 4;
        u32::from_str_radix(hex, 16).map_err(|_| Error::msg("invalid unicode escape"))
    }

    fn parse_array(&mut self) -> Result<Json, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(Error::msg(format!("expected `,` or `]` at {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Json, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(entries));
                }
                _ => return Err(Error::msg(format!("expected `,` or `}}` at {}", self.pos))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(
            from_str::<u64>(&to_string(&u64::MAX).unwrap()).unwrap(),
            u64::MAX
        );
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
        assert_eq!(from_str::<f64>("2.5").unwrap(), 2.5);
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<String>("\"hi\\nthere\"").unwrap(), "hi\nthere");
    }

    #[test]
    fn float_roundtrip_shortest() {
        let x = 1.0 / 3.0;
        let s = to_string(&x).unwrap();
        assert_eq!(from_str::<f64>(&s).unwrap(), x);
    }

    #[test]
    fn collections_roundtrip() {
        let v = vec![1u32, 2, 3];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[1,2,3]");
        assert_eq!(from_str::<Vec<u32>>(&s).unwrap(), v);

        let nested: Vec<Vec<String>> = vec![vec!["a".into()], vec![]];
        let s = to_string(&nested).unwrap();
        assert_eq!(from_str::<Vec<Vec<String>>>(&s).unwrap(), nested);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = vec![vec![1u8, 2], vec![3]];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(from_str::<Vec<Vec<u8>>>(&pretty).unwrap(), v);
    }

    #[test]
    fn unicode_and_escapes() {
        let s = "héllo \"wörld\" \u{1F600} \t".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
        // Parse an escaped surrogate pair.
        assert_eq!(
            from_str::<String>("\"\\ud83d\\ude00\"").unwrap(),
            "\u{1F600}"
        );
    }

    #[test]
    fn errors_reported() {
        assert!(from_str::<u32>("[1").is_err());
        assert!(from_str::<u32>("xyz").is_err());
        assert!(from_str::<u32>("1 2").is_err());
    }
}
