//! Vendored minimal stand-in for the `serde_json` crate.
//!
//! Renders the vendored `serde`'s [`Json`] tree to text and parses it back.
//! Supports the full JSON grammar (objects, arrays, strings with escapes,
//! integers, floats, booleans, null) plus exact `u64`/`i64` round-trips.

use serde::{write_compact, write_escaped, Deserialize, Json, Serialize};

pub use serde::Error;

/// Serialize a value to a compact JSON string **through the [`Json`] tree**
/// (the DOM path). Kept as the reference/baseline encoder; the hot wire
/// path uses the zero-DOM [`to_vec`] / [`write_to_string`] instead.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_compact(&value.to_json(), &mut out);
    Ok(out)
}

/// Streaming serializer: append `value` as compact JSON to `out` without
/// materializing the intermediate [`Json`] tree. Byte-identical to
/// [`to_string`]; the reusable buffer makes this the allocation-free wire
/// encoder for per-connection serving loops.
pub fn write_to_string<T: Serialize>(value: &T, out: &mut String) {
    let mut writer = serde::JsonWriter::new(out);
    value.write_json(&mut writer);
}

/// Streaming serializer into fresh bytes (compact, zero-DOM).
pub fn to_vec<T: Serialize>(value: &T) -> Result<Vec<u8>, Error> {
    let mut out = String::new();
    write_to_string(value, &mut out);
    Ok(out.into_bytes())
}

/// Serialize a value to a 2-space-indented JSON string.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&value.to_json(), &mut out, 2, 0);
    Ok(out)
}

/// Deserialize a value from a JSON string.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    T::from_json(&from_str_value(text)?)
}

/// Parse a JSON document into the raw [`Json`] tree (the structural form
/// typed deserialization reads from; exposed for encoder-equivalence
/// tests and generic tooling).
pub fn from_str_value(text: &str) -> Result<Json, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::msg(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    Ok(value)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Pretty renderer (2-space default). Scalars and escaping delegate to the
/// canonical compact helpers in `serde` — there is exactly one escape
/// table and one number formatter, shared with the streaming encoder.
fn write_pretty(value: &Json, out: &mut String, width: usize, level: usize) {
    match value {
        Json::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, width, level + 1);
                write_pretty(item, out, width, level + 1);
            }
            newline_indent(out, width, level);
            out.push(']');
        }
        Json::Obj(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, width, level + 1);
                write_escaped(key, out);
                out.push_str(": ");
                write_pretty(val, out, width, level + 1);
            }
            newline_indent(out, width, level);
            out.push('}');
        }
        scalar => write_compact(scalar, out),
    }
}

fn newline_indent(out: &mut String, width: usize, level: usize) {
    out.push('\n');
    for _ in 0..(width * level) {
        out.push(' ');
    }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at offset {}",
                byte as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Json, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_literal("null", Json::Null),
            Some(b't') => self.parse_literal("true", Json::Bool(true)),
            Some(b'f') => self.parse_literal("false", Json::Bool(false)),
            Some(b'"') => self.parse_string().map(Json::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::msg(format!(
                "unexpected character at offset {}",
                self.pos
            ))),
        }
    }

    fn parse_literal(&mut self, literal: &str, value: Json) -> Result<Json, Error> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(value)
        } else {
            Err(Error::msg(format!(
                "invalid literal at offset {}",
                self.pos
            )))
        }
    }

    fn parse_number(&mut self) -> Result<Json, Error> {
        let start = self.pos;
        let mut is_float = false;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid utf8 in number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Json::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Json::F64)
            .map_err(|_| Error::msg(format!("invalid number `{text}`")))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error::msg("unterminated string"));
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let Some(esc) = self.peek() else {
                        return Err(Error::msg("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let first = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&first) {
                                // Surrogate pair.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let second = self.parse_hex4()?;
                                0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00)
                            } else {
                                first
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::msg("invalid unicode escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::msg(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Consume a maximal run of plain bytes in one step.
                    // (The previous per-character loop re-validated the
                    // *entire remaining input* as UTF-8 for every character
                    // — quadratic in document size, which is what made
                    // large QueryBatch envelopes slower than the sum of
                    // their parts.)
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| Error::msg("invalid utf8 in string"))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::msg("truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::msg("invalid unicode escape"))?;
        self.pos += 4;
        u32::from_str_radix(hex, 16).map_err(|_| Error::msg("invalid unicode escape"))
    }

    fn parse_array(&mut self) -> Result<Json, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(Error::msg(format!("expected `,` or `]` at {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Json, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(entries));
                }
                _ => return Err(Error::msg(format!("expected `,` or `}}` at {}", self.pos))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(
            from_str::<u64>(&to_string(&u64::MAX).unwrap()).unwrap(),
            u64::MAX
        );
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
        assert_eq!(from_str::<f64>("2.5").unwrap(), 2.5);
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<String>("\"hi\\nthere\"").unwrap(), "hi\nthere");
    }

    #[test]
    fn float_roundtrip_shortest() {
        let x = 1.0 / 3.0;
        let s = to_string(&x).unwrap();
        assert_eq!(from_str::<f64>(&s).unwrap(), x);
    }

    #[test]
    fn collections_roundtrip() {
        let v = vec![1u32, 2, 3];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[1,2,3]");
        assert_eq!(from_str::<Vec<u32>>(&s).unwrap(), v);

        let nested: Vec<Vec<String>> = vec![vec!["a".into()], vec![]];
        let s = to_string(&nested).unwrap();
        assert_eq!(from_str::<Vec<Vec<String>>>(&s).unwrap(), nested);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = vec![vec![1u8, 2], vec![3]];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(from_str::<Vec<Vec<u8>>>(&pretty).unwrap(), v);
    }

    #[test]
    fn unicode_and_escapes() {
        let s = "héllo \"wörld\" \u{1F600} \t".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
        // Parse an escaped surrogate pair.
        assert_eq!(
            from_str::<String>("\"\\ud83d\\ude00\"").unwrap(),
            "\u{1F600}"
        );
    }

    #[test]
    fn streaming_matches_dom_bytes() {
        let values: Vec<Vec<(String, f64)>> = vec![
            vec![("a\nb".into(), 1.5), ("\u{1F600}".into(), -0.0)],
            vec![],
            vec![("x".into(), 1.0 / 3.0)],
        ];
        for v in &values {
            let mut streamed = String::new();
            write_to_string(v, &mut streamed);
            assert_eq!(streamed, to_string(v).unwrap());
        }
        assert_eq!(to_vec(&42u64).unwrap(), b"42");
        let nested: Vec<Option<Vec<i32>>> = vec![None, Some(vec![-1, 2]), Some(vec![])];
        assert_eq!(
            String::from_utf8(to_vec(&nested).unwrap()).unwrap(),
            to_string(&nested).unwrap()
        );
    }

    #[test]
    fn streaming_appends_to_reusable_buffer() {
        let mut buf = String::from("prefix:");
        write_to_string(&vec![1u8, 2], &mut buf);
        assert_eq!(buf, "prefix:[1,2]");
    }

    #[test]
    fn errors_reported() {
        assert!(from_str::<u32>("[1").is_err());
        assert!(from_str::<u32>("xyz").is_err());
        assert!(from_str::<u32>("1 2").is_err());
    }
}
