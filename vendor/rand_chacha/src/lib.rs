//! Vendored minimal stand-in for the `rand_chacha` crate.
//!
//! Provides a [`ChaCha8Rng`] type with the `seed_from_u64` constructor the
//! CMDL sources use. The implementation is a genuine 8-round ChaCha core
//! keyed by expanding the 64-bit seed with SplitMix64, so streams are
//! deterministic, well distributed, and independent across seeds. It is not
//! bit-compatible with upstream `rand_chacha` (nothing in this workspace
//! depends on upstream streams).

use rand::{RngCore, SeedableRng};

/// A deterministic ChaCha-based generator with 8 rounds.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    state: [u32; 16],
    buffer: [u32; 16],
    index: usize,
    counter: u64,
}

const CHACHA_CONST: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        self.state[12] = self.counter as u32;
        self.state[13] = (self.counter >> 32) as u32;
        let mut working = self.state;
        for _ in 0..4 {
            // 8 rounds = 4 double rounds.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (i, out) in self.buffer.iter_mut().enumerate() {
            *out = working[i].wrapping_add(self.state[i]);
        }
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONST);
        for i in 0..4 {
            let word = splitmix64(&mut sm);
            state[4 + 2 * i] = word as u32;
            state[4 + 2 * i + 1] = (word >> 32) as u32;
        }
        // Words 12/13 are the block counter; 14/15 the nonce.
        let nonce = splitmix64(&mut sm);
        state[14] = nonce as u32;
        state[15] = (nonce >> 32) as u32;
        Self {
            state,
            buffer: [0; 16],
            index: 16,
            counter: 0,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        if self.index + 2 > 16 {
            self.refill();
        }
        let lo = self.buffer[self.index] as u64;
        let hi = self.buffer[self.index + 1] as u64;
        self.index += 2;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_produce_distinct_streams() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn output_looks_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut ones = 0u32;
        for _ in 0..1000 {
            ones += rng.next_u64().count_ones();
        }
        // 64000 bits, expect ~32000 ones.
        assert!((30_000..34_000).contains(&ones), "bit bias: {ones}");
    }

    #[test]
    fn works_with_rng_trait() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let x: usize = rng.gen_range(0..10);
        assert!(x < 10);
    }
}
