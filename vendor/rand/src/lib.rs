//! Vendored minimal stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the small slice of the `rand` 0.8 API surface that the
//! CMDL sources use: [`RngCore`], [`SeedableRng`], the [`Rng`] extension
//! trait (`gen_range`, `gen_bool`, `gen`), and [`seq::SliceRandom`]
//! (`choose`, `shuffle`). The sampling algorithms are simple and unbiased
//! enough for synthetic-lake generation and randomized tree construction;
//! they make no attempt to be bit-compatible with upstream `rand`.

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// Next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Next random `u32` (top bits of the next word).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of reproducible generators from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Create a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Sample uniformly from a range (`lo..hi` or `lo..=hi`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }

    /// Sample a value of a type with a standard uniform distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Converts a random word into a uniform `f64` in `[0, 1)`.
#[inline]
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Converts a random word into a uniform `f32` in `[0, 1)`.
#[inline]
fn unit_f32(word: u64) -> f32 {
    (word >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
}

/// Types sampleable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Sample with the standard distribution for the type.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f32(rng.next_u64())
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draw one uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + (self.end - self.start) * unit_f64(rng.next_u64())
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        self.start + (self.end - self.start) * unit_f32(rng.next_u64())
    }
}

pub mod seq {
    //! Sequence-related random operations (`choose`, `shuffle`).

    use super::Rng;

    /// Random operations over slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// A uniformly random element, or `None` if the slice is empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let idx = (rng.next_u64() as usize) % self.len();
                Some(&self[idx])
            }
        }

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() as usize) % (i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct SplitMix(u64);
    impl RngCore for SplitMix {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SplitMix(1);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&y));
            let f: f64 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let g: f32 = rng.gen_range(-2.0f32..3.0);
            assert!((-2.0..3.0).contains(&g));
        }
    }

    #[test]
    fn bool_probability_rough() {
        let mut rng = SplitMix(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((1800..3200).contains(&hits), "got {hits}");
    }

    #[test]
    fn choose_and_shuffle() {
        let mut rng = SplitMix(3);
        let v: Vec<u32> = (0..50).collect();
        assert!(v.choose(&mut rng).is_some());
        assert!(Vec::<u32>::new().choose(&mut rng).is_none());
        let mut w = v.clone();
        w.shuffle(&mut rng);
        let mut sorted = w.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, v);
        assert_ne!(w, v, "50-element shuffle should not be identity");
    }
}
