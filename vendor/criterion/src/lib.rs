//! Vendored minimal stand-in for the `criterion` crate.
//!
//! Provides the macros and types the workspace's benches use
//! (`criterion_group!`, `criterion_main!`, `Criterion::bench_function`,
//! `Bencher::iter` / `iter_batched`, `BatchSize`, `black_box`) backed by a
//! simple wall-clock timer: each benchmark runs a short warm-up, then
//! `sample_size` timed samples, and prints mean/min per-iteration times.
//! No statistical analysis, plots, or baselines — just honest numbers for
//! quick regression eyeballing in an offline environment.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Batch sizing hints for [`Bencher::iter_batched`]; the shim only uses
/// them to pick how many setup/run pairs share one timing sample.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small input: many iterations per batch.
    SmallInput,
    /// Large input: one iteration per batch.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        // Warm-up pass (not recorded).
        let mut bencher = Bencher {
            per_iter_seconds: 0.0,
        };
        f(&mut bencher);
        for _ in 0..self.sample_size {
            let mut bencher = Bencher {
                per_iter_seconds: 0.0,
            };
            f(&mut bencher);
            samples.push(bencher.per_iter_seconds);
        }
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        println!(
            "{id:<40} mean {:>12}  min {:>12}  ({} samples)",
            format_seconds(mean),
            format_seconds(min),
            samples.len()
        );
        self
    }
}

fn format_seconds(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// Passed to the benchmark closure; runs and times the measured routine.
#[derive(Debug)]
pub struct Bencher {
    per_iter_seconds: f64,
}

impl Bencher {
    /// Time `routine`, auto-scaling the iteration count to ≥ ~5 ms.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let mut iters = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(5) || iters >= 1 << 20 {
                self.per_iter_seconds = elapsed.as_secs_f64() / iters as f64;
                return;
            }
            iters *= 4;
        }
    }

    /// Time `routine` over inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        while total < Duration::from_millis(5) && iters < 1000 {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
            iters += 1;
        }
        self.per_iter_seconds = total.as_secs_f64() / iters.max(1) as f64;
    }
}

/// Declare a benchmark group. Supports both the positional and the
/// `name/config/targets` forms used by criterion.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declare the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs() {
        let mut c = Criterion::default().sample_size(2);
        let mut runs = 0u64;
        c.bench_function("noop", |b| b.iter(|| runs = runs.wrapping_add(1)));
        assert!(runs > 0);
    }

    #[test]
    fn iter_batched_runs() {
        let mut c = Criterion::default().sample_size(2);
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
    }
}
