//! # cmdl — Cross Modal Data Discovery over Structured and Unstructured Data Lakes
//!
//! This facade crate re-exports the public API of every CMDL workspace crate
//! so that downstream users can depend on a single crate.
//!
//! See the `README.md` for a quickstart and `DESIGN.md` for the system
//! inventory.

pub use cmdl_baselines as baselines;
pub use cmdl_core as core;
pub use cmdl_datalake as datalake;
pub use cmdl_embed as embed;
pub use cmdl_eval as eval;
pub use cmdl_index as index;
pub use cmdl_nn as nn;
pub use cmdl_server as server;
pub use cmdl_sketch as sketch;
pub use cmdl_text as text;
pub use cmdl_weaklabel as weaklabel;
