//! Shared helpers for the workspace integration tests.

use std::collections::BTreeMap;

/// Assert that two ranked `(label, score)` result lists are identical modulo
/// reordering *within* exact score ties.
///
/// Scores are compared at 1e-9 resolution and must match pairwise. Labels
/// must match exactly within every tie group except the lowest-scoring one:
/// when `top_k` cuts through a group of exactly equal scores, which of the
/// tied elements survive is an arbitrary (but score-correct) choice, so only
/// the group's size is compared there.
pub fn assert_result_parity(tag: &str, a: &[(String, f64)], b: &[(String, f64)]) {
    assert_eq!(
        a.len(),
        b.len(),
        "{tag}: result counts differ ({} vs {})\n  a: {a:?}\n  b: {b:?}",
        a.len(),
        b.len()
    );
    let group = |list: &[(String, f64)]| -> BTreeMap<i64, Vec<String>> {
        let mut grouped: BTreeMap<i64, Vec<String>> = BTreeMap::new();
        for (label, score) in list {
            grouped
                .entry((score * 1e9).round() as i64)
                .or_default()
                .push(label.clone());
        }
        for labels in grouped.values_mut() {
            labels.sort();
        }
        grouped
    };
    let grouped_a = group(a);
    let grouped_b = group(b);
    let keys_a: Vec<i64> = grouped_a.keys().copied().collect();
    let keys_b: Vec<i64> = grouped_b.keys().copied().collect();
    assert_eq!(
        keys_a, keys_b,
        "{tag}: score sequences differ\n  a: {a:?}\n  b: {b:?}"
    );
    let boundary = keys_a.first().copied();
    for (score, labels_a) in &grouped_a {
        let labels_b = &grouped_b[score];
        assert_eq!(
            labels_a.len(),
            labels_b.len(),
            "{tag}: tie-group size differs at score {}",
            *score as f64 / 1e9
        );
        if Some(*score) != boundary {
            assert_eq!(
                labels_a,
                labels_b,
                "{tag}: labels differ at score {}",
                *score as f64 / 1e9
            );
        }
    }
}
