//! Contract tests for the unified `DiscoveryQuery` API.
//!
//! Three families of guarantees, per the API redesign:
//!
//! 1. **Pagination**: on the exact surfaces (keyword, joinable, unionable,
//!    PK-FK) concatenated pages equal the un-paginated top-k, for any page
//!    size.
//! 2. **Filter pushdown**: the kind/mode scope filter evaluated inside the
//!    index scan returns the same results as brute-force post-filtering an
//!    unscoped search.
//! 3. **Shim parity**: every legacy per-kind method returns exactly the
//!    hits of `execute()`, and `execute_many` matches sequential `execute`.
//!
//! Plus serde round-trips of the wire envelope.

mod common;

use std::sync::OnceLock;

use proptest::prelude::*;

use cmdl::core::{
    Cmdl, CmdlConfig, CrossModalStrategy, DiscoveryQuery, DocQuery, QueryBuilder, SearchMode,
};
use cmdl::datalake::synth;

/// One shared system (built once): proptest runs many cases, and the lake
/// build dominates the cost of each.
fn system() -> &'static Cmdl {
    static SYSTEM: OnceLock<Cmdl> = OnceLock::new();
    SYSTEM.get_or_init(|| {
        let lake = synth::pharma::generate(&synth::PharmaConfig::tiny()).lake;
        Cmdl::build(lake, CmdlConfig::fast())
    })
}

/// The exact (probe-depth-independent) query kinds, parameterized by top_k.
fn exact_queries(top_k: usize) -> Vec<DiscoveryQuery> {
    vec![
        QueryBuilder::keyword("drug enzyme inhibitor")
            .mode(SearchMode::All)
            .top_k(top_k)
            .build(),
        QueryBuilder::keyword("trial dose")
            .mode(SearchMode::Tables)
            .top_k(top_k)
            .build(),
        QueryBuilder::joinable("Drugs").top_k(top_k).build(),
        QueryBuilder::joinable_column("Drugs", "Id")
            .top_k(top_k)
            .build(),
        QueryBuilder::unionable("Drugs").top_k(top_k).build(),
        QueryBuilder::pkfk().top_k(top_k).build(),
    ]
}

fn labels_and_scores(hits: &[cmdl::core::Hit]) -> Vec<(String, f64)> {
    hits.iter().map(|h| (h.label.clone(), h.score)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// (a) Pages concatenated equal the un-paginated top-k on every exact
    /// surface, for arbitrary page sizes.
    #[test]
    fn paginated_pages_concatenate_to_topk(top_k in 1usize..25, page in 1usize..8) {
        let snap = system().snapshot();
        for query in exact_queries(top_k) {
            let full = snap.execute(&query).unwrap();
            let mut paged: Vec<(String, f64)> = Vec::new();
            let mut offset = 0usize;
            while paged.len() < full.hits.len() {
                let mut q = query.clone();
                match &mut q {
                    DiscoveryQuery::Keyword { options, .. }
                    | DiscoveryQuery::CrossModalDoc { options, .. }
                    | DiscoveryQuery::CrossModalText { options, .. }
                    | DiscoveryQuery::DocToTable { options, .. }
                    | DiscoveryQuery::JoinableTable { options, .. }
                    | DiscoveryQuery::JoinableColumn { options, .. }
                    | DiscoveryQuery::Unionable { options, .. }
                    | DiscoveryQuery::PkFk { options } => {
                        options.top_k = page.min(full.hits.len() - paged.len());
                        options.offset = offset;
                    }
                }
                let response = snap.execute(&q).unwrap();
                prop_assert!(
                    !response.hits.is_empty(),
                    "page at offset {offset} empty for {} while {} hits remain",
                    query.kind(),
                    full.hits.len() - paged.len()
                );
                paged.extend(labels_and_scores(&response.hits));
                offset += response.hits.len();
            }
            let expected = labels_and_scores(&full.hits);
            prop_assert!(
                paged == expected,
                "concatenated pages diverge for {} (top_k {top_k}, page {page}): {paged:?} vs {expected:?}",
                query.kind()
            );
        }
    }

    /// (b) The pushed-down mode filter matches brute-force post-filtering of
    /// an unscoped search (modulo reordering inside exact score ties).
    #[test]
    fn mode_filter_matches_brute_force(top_k in 1usize..20) {
        let cmdl = system();
        let total = cmdl.profiled.len();
        for query_text in ["drug", "enzyme inhibitor", "trial patient dose"] {
            for (mode, kind) in [
                (SearchMode::Text, cmdl::datalake::DeKind::Document),
                (SearchMode::Tables, cmdl::datalake::DeKind::Column),
            ] {
                let pushed: Vec<(String, f64)> = cmdl
                    .content_search(query_text, mode, top_k)
                    .into_iter()
                    .map(|r| (r.label, r.score))
                    .collect();
                // Brute force: fetch everything unscoped, post-filter by
                // kind, truncate.
                let brute: Vec<(String, f64)> = cmdl
                    .content_search(query_text, SearchMode::All, total)
                    .into_iter()
                    .filter(|r| {
                        r.element
                            .and_then(|id| cmdl.profiled.profile(id))
                            .map(|p| p.kind == kind)
                            .unwrap_or(false)
                    })
                    .take(top_k)
                    .map(|r| (r.label, r.score))
                    .collect();
                common::assert_result_parity(
                    &format!("pushdown[{query_text}][{mode:?}]"),
                    &brute,
                    &pushed,
                );
            }
        }
    }

    /// Thresholding is exactly a filter of the unthresholded ranking.
    #[test]
    fn min_score_is_a_pure_filter(top_k in 1usize..20, threshold in 0.0f64..1.0) {
        let snap = system().snapshot();
        for query in exact_queries(top_k) {
            let unthresholded = snap.execute(&query).unwrap();
            let mut q = query.clone();
            match &mut q {
                DiscoveryQuery::Keyword { options, .. }
                | DiscoveryQuery::CrossModalDoc { options, .. }
                | DiscoveryQuery::CrossModalText { options, .. }
                | DiscoveryQuery::DocToTable { options, .. }
                | DiscoveryQuery::JoinableTable { options, .. }
                | DiscoveryQuery::JoinableColumn { options, .. }
                | DiscoveryQuery::Unionable { options, .. }
                | DiscoveryQuery::PkFk { options } => options.min_score = threshold,
            }
            let thresholded = snap.execute(&q).unwrap();
            let expected: Vec<(String, f64)> = labels_and_scores(&unthresholded.hits)
                .into_iter()
                .filter(|(_, score)| *score >= threshold)
                .collect();
            let actual = labels_and_scores(&thresholded.hits);
            prop_assert!(
                actual == expected,
                "min_score {threshold} is not a pure filter for {}: {actual:?} vs {expected:?}",
                query.kind()
            );
            prop_assert!(thresholded.hits.iter().all(|h| h.score >= threshold));
        }
    }
}

/// (c) Every legacy shim returns results identical to `execute()`.
#[test]
fn legacy_shims_match_execute() {
    let cmdl = system();
    let snap = cmdl.snapshot();
    let k = 5;

    // content_search == Keyword.
    for mode in [SearchMode::All, SearchMode::Text, SearchMode::Tables] {
        let legacy = cmdl.content_search("drug enzyme", mode, k);
        let unified = snap
            .execute(
                &QueryBuilder::keyword("drug enzyme")
                    .mode(mode)
                    .top_k(k)
                    .build(),
            )
            .unwrap()
            .into_results();
        assert_eq!(legacy, unified, "content_search diverges in {mode:?}");
    }

    // cross_modal_search == CrossModalDoc.
    let legacy = cmdl.cross_modal_search(0, k).unwrap();
    let unified = snap
        .execute(&QueryBuilder::cross_modal_doc(0).top_k(k).build())
        .unwrap()
        .into_results();
    assert_eq!(legacy, unified, "cross_modal_search diverges");

    // cross_modal_search_text == CrossModalText.
    let legacy = cmdl
        .cross_modal_search_text("enzyme inhibitor trial", k)
        .unwrap();
    let unified = snap
        .execute(
            &QueryBuilder::cross_modal_text("enzyme inhibitor trial")
                .top_k(k)
                .build(),
        )
        .unwrap()
        .into_results();
    assert_eq!(legacy, unified, "cross_modal_search_text diverges");

    // doc_to_table_search == DocToTable, for both strategies and both
    // DocQuery shapes.
    for strategy in [
        CrossModalStrategy::SoloEmbedding,
        CrossModalStrategy::JointEmbedding,
    ] {
        for doc_query in [
            DocQuery::Document(0),
            DocQuery::Text("pemetrexed inhibits thymidylate synthase".to_string()),
        ] {
            let legacy = cmdl.doc_to_table_search(&doc_query, strategy, k).unwrap();
            let unified = snap
                .execute(
                    &QueryBuilder::doc_to_table(doc_query.clone(), strategy)
                        .top_k(k)
                        .build(),
                )
                .unwrap()
                .into_results();
            assert_eq!(
                legacy, unified,
                "doc_to_table_search diverges for {doc_query:?}"
            );
        }
    }

    // joinable == JoinableTable.
    let legacy = cmdl.joinable("Drugs", k).unwrap();
    let unified = snap
        .execute(&QueryBuilder::joinable("Drugs").top_k(k).build())
        .unwrap()
        .into_results();
    assert_eq!(legacy, unified, "joinable diverges");

    // joinable_columns == JoinableColumn.
    let legacy = cmdl.joinable_columns("Drugs", "Id", k).unwrap();
    let unified = snap
        .execute(
            &QueryBuilder::joinable_column("Drugs", "Id")
                .top_k(k)
                .build(),
        )
        .unwrap()
        .into_results();
    assert_eq!(legacy, unified, "joinable_columns diverges");

    // unionable == Unionable (full UnionScore, not just labels).
    let legacy = cmdl.unionable("Drugs", k).unwrap();
    let unified: Vec<_> = snap
        .execute(&QueryBuilder::unionable("Drugs").top_k(k).build())
        .unwrap()
        .hits
        .into_iter()
        .filter_map(|h| h.union)
        .collect();
    assert_eq!(legacy, unified, "unionable diverges");

    // pkfk == PkFk (full links).
    let legacy = cmdl.pkfk().unwrap();
    let unified: Vec<_> = snap
        .execute(&QueryBuilder::pkfk().top_k(usize::MAX).build())
        .unwrap()
        .hits
        .into_iter()
        .filter_map(|h| h.pkfk)
        .collect();
    assert_eq!(legacy, unified, "pkfk diverges");

    // pkfk_top == PkFk with top_k/min_score.
    let legacy = cmdl.pkfk_top(3, 0.5).unwrap();
    let unified: Vec<_> = snap
        .execute(&QueryBuilder::pkfk().top_k(3).min_score(0.5).build())
        .unwrap()
        .hits
        .into_iter()
        .filter_map(|h| h.pkfk)
        .collect();
    assert_eq!(legacy, unified, "pkfk_top diverges");
}

/// Batched execution returns exactly the per-query results, in input order,
/// and per-query failures do not poison the batch.
#[test]
fn execute_many_matches_sequential() {
    let snap = system().snapshot();
    let mut queries = exact_queries(6);
    queries.push(
        QueryBuilder::cross_modal_text("antifolate agent")
            .top_k(4)
            .build(),
    );
    queries.push(QueryBuilder::joinable("NoSuchTable").top_k(4).build());
    let batched = snap.execute_many(&queries);
    assert_eq!(batched.len(), queries.len());
    for (query, outcome) in queries.iter().zip(&batched) {
        match (outcome, snap.execute(query)) {
            (Ok(a), Ok(b)) => {
                assert_eq!(a.hits, b.hits, "batched hits diverge for {}", query.kind());
                assert_eq!(a.generation, b.generation);
                assert_eq!(a.total_candidates, b.total_candidates);
            }
            (Err(a), Err(b)) => {
                assert_eq!(a.to_string(), b.to_string());
            }
            (a, b) => panic!("divergent outcomes for {}: {a:?} vs {b:?}", query.kind()),
        }
    }
}

/// The request and response envelope round-trip through serde_json.
#[test]
fn envelope_roundtrips_through_serde_json() {
    let snap = system().snapshot();
    let mut queries = exact_queries(4);
    queries.push(QueryBuilder::cross_modal_text("enzyme").top_k(3).build());
    queries.push(
        QueryBuilder::doc_to_table(DocQuery::Document(0), CrossModalStrategy::SoloEmbedding)
            .top_k(3)
            .offset(1)
            .min_score(0.05)
            .weight_containment(0.4)
            .build(),
    );
    for query in queries {
        let query_json = serde_json::to_string(&query).unwrap();
        let query_back: DiscoveryQuery = serde_json::from_str(&query_json).unwrap();
        assert_eq!(query_back, query, "query round-trip");

        let response = snap.execute(&query).unwrap();
        let json = serde_json::to_string(&response).unwrap();
        let back: cmdl::core::QueryResponse = serde_json::from_str(&json).unwrap();
        assert_eq!(back, response, "response round-trip for {}", query.kind());
    }
}

/// Offsets beyond the result set yield empty pages, and the page is always
/// full while hits remain.
#[test]
fn offset_beyond_end_is_empty() {
    let snap = system().snapshot();
    let response = snap
        .execute(
            &QueryBuilder::joinable("Drugs")
                .top_k(5)
                .offset(10_000)
                .build(),
        )
        .unwrap();
    assert!(response.hits.is_empty());
    assert!(response.total_candidates <= 10_005);
}
