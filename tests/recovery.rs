//! Crash-fault-injection harness over the durable catalog.
//!
//! The centerpiece is the kill sweep: a recording run over a scripted
//! 10%-delta ingest enumerates every fsync-boundary failpoint the
//! persistence layer crosses, then the scenario is re-run once per
//! `(failpoint, occurrence)` pair with a simulated `kill -9` armed there.
//! After each crash the directory is recovered with a clean io layer and
//! the harness asserts the two durability contracts:
//!
//! 1. **No acked mutation is lost** — the recovered catalog contains at
//!    least every mutation that returned `Ok` before the crash, and the
//!    recovered prefix is exactly a prefix of the script (mutations are
//!    atomic and ordered).
//! 2. **Recovered state is parity-equal to an uncrashed run** over the
//!    same prefix (modulo reordering within exact score ties).
//!
//! Around the sweep: clean-restart WAL replay (including removals), a
//! torn WAL tail, silent bit-flips during segment writes, hand-corrupted
//! manifest/segment files (all must degrade to rebuild-from-source, never
//! panic), and proptests proving `decode_frames` recovers exactly the
//! longest valid record prefix under arbitrary truncation or bit-flips.

mod common;

use std::collections::HashMap;
use std::path::{Path, PathBuf};

use proptest::prelude::*;

use cmdl::core::persist::{decode_frames, encode_frame, MANIFEST_NAME};
use cmdl::core::{Cmdl, CmdlConfig, CmdlError, Fault, FaultPlan, Io, RecoveryReport, SearchMode};
use cmdl::datalake::{synth, DataLake, Document, Table};
use common::assert_result_parity;

// ---------------------------------------------------------------------
// Scaffolding
// ---------------------------------------------------------------------

/// A scratch directory unique to this process and thread, removed on drop.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let path = std::env::temp_dir().join(format!(
            "cmdl-recovery-{}-{:?}-{tag}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&path);
        Self(path)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// One scripted catalog mutation (the kill sweep is ingest-only so the
/// applied prefix can be read back from live element counts).
#[derive(Clone)]
enum Mutation {
    Table(Table),
    Document(Document),
}

fn apply(cmdl: &mut Cmdl, mutation: &Mutation) -> Result<(), CmdlError> {
    match mutation {
        Mutation::Table(t) => cmdl.ingest_table(t.clone()).map(|_| ()),
        Mutation::Document(d) => cmdl.ingest_document(d.clone()).map(|_| ()),
    }
}

/// A small pharma lake split into a seed lake plus a ~10% delta script
/// (tables first, then documents, so any prefix is identified by its
/// live table/document counts).
struct Scenario {
    seed: DataLake,
    script: Vec<Mutation>,
    seed_tables: usize,
    seed_docs: usize,
    delta_tables: usize,
    /// Script position after which the scenario runs `compact()` (so the
    /// sweep also kills inside a checkpoint, not just inside WAL appends).
    compact_at: usize,
}

fn scenario() -> Scenario {
    let lake = synth::pharma::generate(&synth::PharmaConfig {
        num_drugs: 12,
        num_enzymes: 8,
        num_documents: 14,
        num_interactions: 24,
        num_synthetic_tables: 3,
        seed: 0xC4A5,
    })
    .lake;
    let tables = lake.tables().to_vec();
    let documents = lake.documents().to_vec();
    let delta_tables = 2;
    let delta_docs = 3;
    let seed_tables = tables.len() - delta_tables;
    let seed_docs = documents.len() - delta_docs;

    let mut seed = DataLake::new("pharma-seed");
    for t in &tables[..seed_tables] {
        seed.add_table(t.clone());
    }
    for d in &documents[..seed_docs] {
        seed.add_document(d.clone());
    }
    let mut script = Vec::new();
    for t in &tables[seed_tables..] {
        script.push(Mutation::Table(t.clone()));
    }
    for d in &documents[seed_docs..] {
        script.push(Mutation::Document(d.clone()));
    }
    Scenario {
        seed,
        script,
        seed_tables,
        seed_docs,
        delta_tables,
        compact_at: delta_tables,
    }
}

/// A few deterministic query strings derived from the raw lake data.
fn queries_for(lake: &DataLake) -> Vec<String> {
    let mut queries = Vec::new();
    for table in lake.tables().iter().take(2) {
        if let Some(column) = table.columns.first() {
            if let Some(v) = column.values.first() {
                let text = v.as_text();
                if !text.is_empty() {
                    queries.push(text);
                }
            }
        }
    }
    for doc in lake.documents().iter().take(2) {
        queries.push(doc.title.clone());
    }
    queries.push("drug enzyme inhibitor target".to_string());
    queries
}

/// A compact discovery surface: content search over every mode plus the
/// PK-FK graph (cheap enough to evaluate once per kill point).
fn quick_surface(cmdl: &Cmdl, queries: &[String]) -> Vec<(String, Vec<(String, f64)>)> {
    let mut surfaces = Vec::new();
    for (qi, query) in queries.iter().enumerate() {
        for (mode, mode_name) in [
            (SearchMode::All, "all"),
            (SearchMode::Text, "text"),
            (SearchMode::Tables, "tables"),
        ] {
            let results = cmdl
                .content_search(query, mode, 10)
                .into_iter()
                .map(|r| (r.label, r.score))
                .collect();
            surfaces.push((format!("content[{qi}][{mode_name}]"), results));
        }
    }
    let pkfk = cmdl
        .pkfk()
        .expect("pkfk on recovered catalog")
        .into_iter()
        .map(|l| (format!("{}->{}", l.pk_name, l.fk_name), l.score))
        .collect();
    surfaces.push(("pkfk".to_string(), pkfk));
    surfaces
}

fn assert_surfaces_agree(tag: &str, reference: &Cmdl, recovered: &Cmdl, queries: &[String]) {
    let surface_a = quick_surface(reference, queries);
    let surface_b = quick_surface(recovered, queries);
    assert_eq!(surface_a.len(), surface_b.len());
    for ((tag_a, results_a), (tag_b, results_b)) in surface_a.iter().zip(surface_b.iter()) {
        assert_eq!(tag_a, tag_b);
        assert_result_parity(&format!("{tag}:{tag_a}"), results_a, results_b);
    }
}

// ---------------------------------------------------------------------
// The kill sweep
// ---------------------------------------------------------------------

/// Run the scripted scenario against `dir` through `io`, returning how
/// many mutations were acknowledged before the simulated process died
/// (all of them, when nothing is armed).
fn run_scenario(io: &Io, dir: &Path, s: &Scenario, config: &CmdlConfig) -> usize {
    let seed = s.seed.clone();
    let Ok(mut cmdl) = Cmdl::open_with_io(io, dir, config.clone(), move || seed) else {
        return 0; // killed during open/initial checkpoint: nothing acked
    };
    let mut acked = 0;
    for (i, mutation) in s.script.iter().enumerate() {
        match apply(&mut cmdl, mutation) {
            Ok(()) => acked += 1,
            Err(_) => break, // the crash point: nothing past here is acked
        }
        if i + 1 == s.compact_at {
            cmdl.compact();
        }
    }
    acked
}

#[test]
fn kill_at_every_fsync_boundary_loses_no_acked_mutation() {
    let s = scenario();
    let config = CmdlConfig::fast();
    let queries = {
        // Queries over the full lake (seed + delta) so every prefix's
        // reference and recovered catalog see identical query strings.
        let mut full = s.seed.clone();
        for m in &s.script {
            match m {
                Mutation::Table(t) => {
                    full.add_table(t.clone());
                }
                Mutation::Document(d) => {
                    full.add_document(d.clone());
                }
            }
        }
        queries_for(&full)
    };

    // Recording run: nothing armed; every failpoint crossing is logged.
    let record_dir = TempDir::new("record");
    let record_plan = FaultPlan::new();
    let acked = run_scenario(
        &Io::with_plan(record_plan.clone()),
        record_dir.path(),
        &s,
        &config,
    );
    assert_eq!(acked, s.script.len(), "recording run must not fail");
    let crossings = record_plan.hits();
    assert!(
        crossings.len() >= 10,
        "expected a rich failpoint trace, got {crossings:?}"
    );

    // Enumerate each (failpoint, occurrence) pair the scenario crosses.
    let mut seen: HashMap<String, u64> = HashMap::new();
    let kill_points: Vec<(String, u64)> = crossings
        .iter()
        .map(|point| {
            let n = seen.entry(point.clone()).or_insert(0);
            let pair = (point.clone(), *n);
            *n += 1;
            pair
        })
        .collect();

    for (point, occurrence) in kill_points {
        let tag = format!("{point}#{occurrence}");
        let dir = TempDir::new(&format!("kill-{}-{occurrence}", point.replace('.', "_")));
        let plan = FaultPlan::new();
        plan.arm(&point, occurrence, Fault::Kill);
        let acked = run_scenario(&Io::with_plan(plan.clone()), dir.path(), &s, &config);
        assert!(plan.is_dead(), "kill at {tag} never fired");

        // The "process" is dead. Recover from what actually reached disk.
        let seed = s.seed.clone();
        let mut recovered =
            Cmdl::open_with_io(&Io::real(), dir.path(), config.clone(), move || seed)
                .unwrap_or_else(|e| panic!("recovery after kill at {tag} failed: {e}"));

        // The recovered state must be an in-order prefix of the script…
        let live_tables = recovered.profiled.lake.tables().len();
        let live_docs = recovered.profiled.lake.documents().len();
        let r_tables = live_tables
            .checked_sub(s.seed_tables)
            .unwrap_or_else(|| panic!("kill at {tag}: recovered catalog lost seed tables"));
        let r_docs = live_docs
            .checked_sub(s.seed_docs)
            .unwrap_or_else(|| panic!("kill at {tag}: recovered catalog lost seed documents"));
        assert!(
            r_tables == s.delta_tables || r_docs == 0,
            "kill at {tag}: recovered a non-prefix of the script \
             ({r_tables} tables, {r_docs} docs)"
        );
        let recovered_prefix = r_tables + r_docs;

        // …no shorter than what was acknowledged before the crash…
        assert!(
            recovered_prefix >= acked,
            "kill at {tag}: {acked} mutations were acked but only \
             {recovered_prefix} survived recovery"
        );

        // …and parity-equal to an uncrashed run over the same prefix.
        let mut reference = Cmdl::build(s.seed.clone(), config.clone());
        for mutation in &s.script[..recovered_prefix] {
            apply(&mut reference, mutation).expect("in-memory reference ingest");
        }
        reference.compact();
        recovered.compact();
        assert_surfaces_agree(&tag, &reference, &recovered, &queries);
    }
}

// ---------------------------------------------------------------------
// Clean restart, torn tails, silent corruption
// ---------------------------------------------------------------------

#[test]
fn clean_restart_replays_acked_mutations_including_removals() {
    let s = scenario();
    let config = CmdlConfig::fast();
    let dir = TempDir::new("replay");

    let seed = s.seed.clone();
    let mut cmdl = Cmdl::open(dir.path(), config.clone(), move || seed).expect("fresh open");
    assert!(cmdl.is_persistent());
    assert_eq!(cmdl.recovery_report(), Some(&RecoveryReport::Fresh));

    // Acked-but-never-checkpointed mutations: the whole delta script plus
    // one table and one document removal, all living only in the WAL.
    for mutation in &s.script {
        apply(&mut cmdl, mutation).expect("scripted mutation");
    }
    let removed_table = s.seed.tables()[0].name.clone();
    cmdl.remove_table(&removed_table).expect("remove table");
    cmdl.remove_document(0).expect("remove document");
    drop(cmdl); // no shutdown checkpoint: recovery must come from the WAL

    let mut recovered = Cmdl::open(dir.path(), config.clone(), || {
        panic!("clean reopen must not consult the source lake")
    })
    .expect("reopen");
    match recovered.recovery_report() {
        Some(RecoveryReport::Loaded {
            replayed,
            discarded_bytes,
            ..
        }) => {
            // Periodic compaction may have checkpointed mid-run (each
            // checkpoint truncates the WAL), so only the records after
            // the last checkpoint replay — but at least the final
            // removal can never have been checkpointed away silently.
            assert!(
                (1..=s.script.len() + 2).contains(replayed),
                "unexpected replay count {replayed}"
            );
            assert_eq!(*discarded_bytes, 0, "clean shutdown leaves no torn tail");
        }
        other => panic!("expected Loaded, got {other:?}"),
    }

    // Full parity against an uncrashed in-memory run of the same history.
    let mut reference = Cmdl::build(s.seed.clone(), config);
    for mutation in &s.script {
        apply(&mut reference, mutation).expect("reference mutation");
    }
    reference
        .remove_table(&removed_table)
        .expect("reference remove");
    reference.remove_document(0).expect("reference remove doc");
    reference.compact();
    recovered.compact();
    let queries = queries_for(&s.seed);
    assert_surfaces_agree("clean-restart", &reference, &recovered, &queries);
}

#[test]
fn torn_wal_tail_is_skipped_not_fatal() {
    let s = scenario();
    let config = CmdlConfig::fast();
    let dir = TempDir::new("torn");

    let plan = FaultPlan::new();
    let io = Io::with_plan(plan.clone());
    let seed = s.seed.clone();
    let mut cmdl =
        Cmdl::open_with_io(&io, dir.path(), config.clone(), move || seed).expect("fresh open");
    apply(&mut cmdl, &s.script[0]).expect("first mutation is acked");

    // Tear the NEXT WAL append: only 5 bytes of its frame reach disk.
    let occurrence = plan
        .hits()
        .iter()
        .filter(|h| h.as_str() == "wal.append.sync.before")
        .count() as u64;
    plan.arm(
        "wal.append.sync.before",
        occurrence,
        Fault::Torn { keep: 5 },
    );
    let torn = apply(&mut cmdl, &s.script[1]);
    assert!(torn.is_err(), "a torn append must not be acknowledged");
    drop(cmdl);

    let recovered = Cmdl::open(dir.path(), config.clone(), || {
        panic!("torn tail must not force a rebuild")
    })
    .expect("recovery over a torn tail");
    match recovered.recovery_report() {
        Some(RecoveryReport::Loaded {
            replayed,
            discarded_bytes,
            ..
        }) => {
            assert_eq!(*replayed, 1, "the acked record replays");
            assert_eq!(*discarded_bytes, 5, "the torn tail is discarded");
        }
        other => panic!("expected Loaded, got {other:?}"),
    }
    // The acked mutation survived; the torn one is gone.
    assert_eq!(recovered.profiled.lake.tables().len(), s.seed_tables + 1);
}

#[test]
fn bit_flip_during_segment_write_degrades_to_rebuild() {
    let s = scenario();
    let config = CmdlConfig::fast();
    let dir = TempDir::new("bitflip");

    // Silent corruption: the initial checkpoint's segment write flips one
    // bit on its way to disk but reports success.
    let plan = FaultPlan::new();
    plan.arm(
        "segment.write.sync.before",
        0,
        Fault::BitFlip { offset: 1021 },
    );
    let seed = s.seed.clone();
    let cmdl = Cmdl::open_with_io(
        &Io::with_plan(plan),
        dir.path(),
        config.clone(),
        move || seed,
    )
    .expect("bit flips are silent at write time");
    drop(cmdl);

    // Recovery detects the checksum mismatch and rebuilds from source
    // instead of serving corrupt data (or panicking).
    let seed = s.seed.clone();
    let recovered = Cmdl::open(dir.path(), config.clone(), move || seed)
        .expect("detected corruption degrades to rebuild");
    match recovered.recovery_report() {
        Some(RecoveryReport::Rebuilt { reason }) => {
            assert!(
                reason.contains("checksum"),
                "rebuild reason should name the checksum failure: {reason}"
            );
        }
        other => panic!("expected Rebuilt, got {other:?}"),
    }
    // …and the rebuilt catalog checkpoints cleanly: a further reopen loads.
    let reopened = Cmdl::open(dir.path(), config, || {
        panic!("rebuilt directory must load without the source")
    })
    .expect("reopen after rebuild");
    assert!(matches!(
        reopened.recovery_report(),
        Some(RecoveryReport::Loaded { .. })
    ));
}

#[test]
fn hand_corrupted_manifest_and_segment_fall_back_to_rebuild() {
    let s = scenario();
    let config = CmdlConfig::fast();

    for target in ["manifest", "segment"] {
        let dir = TempDir::new(&format!("corrupt-{target}"));
        let seed = s.seed.clone();
        drop(Cmdl::open(dir.path(), config.clone(), move || seed).expect("fresh open"));

        // Flip one byte of the target file, clear of any magic prefix.
        let path = if target == "manifest" {
            dir.path().join(MANIFEST_NAME)
        } else {
            let seg = std::fs::read_dir(dir.path())
                .expect("list catalog dir")
                .filter_map(|e| e.ok())
                .map(|e| e.file_name().to_string_lossy().into_owned())
                .find(|name| name.starts_with("seg-"))
                .expect("a segment file exists after the initial checkpoint");
            dir.path().join(seg)
        };
        let mut bytes = std::fs::read(&path).expect("read target file");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x20;
        std::fs::write(&path, &bytes).expect("write corrupted file");

        let seed = s.seed.clone();
        let recovered = Cmdl::open(dir.path(), config.clone(), move || seed)
            .unwrap_or_else(|e| panic!("corrupt {target} must not fail open: {e}"));
        match recovered.recovery_report() {
            Some(RecoveryReport::Rebuilt { reason }) => {
                assert!(!reason.is_empty(), "rebuild reason must be recorded");
            }
            other => panic!("corrupt {target}: expected Rebuilt, got {other:?}"),
        }
        // The rebuilt catalog still serves queries.
        let results = recovered.content_search("drug", SearchMode::All, 5);
        assert!(
            !results.is_empty(),
            "rebuilt catalog must keep serving content search"
        );
    }
}

#[test]
fn kill_mid_same_generation_recheckpoint_keeps_previous_checkpoint() {
    // The materialize_ekg / train_joint path checkpoints without bumping
    // the generation. Segments are write-once: a crash mid-way through the
    // re-checkpoint must leave the previous checkpoint (the one the live
    // manifest points at) fully intact — loaded, never rebuilt.
    let s = scenario();
    let config = CmdlConfig::fast();
    let dir = TempDir::new("recheckpoint");

    let plan = FaultPlan::new();
    let io = Io::with_plan(plan.clone());
    let seed = s.seed.clone();
    let mut cmdl =
        Cmdl::open_with_io(&io, dir.path(), config.clone(), move || seed).expect("fresh open");
    apply(&mut cmdl, &s.script[0]).expect("acked mutation");
    // Die mid-way through the NEXT segment write (past the initial
    // checkpoint and any ingest-triggered compaction), generation
    // unchanged.
    let occurrence = plan
        .hits()
        .iter()
        .filter(|h| h.as_str() == "segment.write.sync.before")
        .count() as u64;
    plan.arm("segment.write.sync.before", occurrence, Fault::Kill);
    assert!(
        cmdl.checkpoint().is_err(),
        "checkpoint must report the kill"
    );
    drop(cmdl);

    let recovered = Cmdl::open(dir.path(), config, || {
        panic!("previous checkpoint must load without the source")
    })
    .expect("recovery after mid-recheckpoint kill");
    match recovered.recovery_report() {
        Some(RecoveryReport::Loaded { replayed, .. }) => {
            // 1 unless an ingest-triggered compaction already folded the
            // record into the (previous) segment.
            assert!(*replayed <= 1, "unexpected replay count {replayed}");
        }
        other => panic!("expected Loaded, got {other:?}"),
    }
    assert_eq!(recovered.profiled.lake.tables().len(), s.seed_tables + 1);
}

#[test]
fn unreplayable_wal_is_salvaged_not_destroyed() {
    // When only the segment rots but the WAL is intact, rebuild-from-source
    // cannot replay the acked records — but it must never destroy their
    // only durable evidence: the log is set aside, not truncated.
    let s = scenario();
    let config = CmdlConfig::fast();
    let dir = TempDir::new("salvage");

    let seed = s.seed.clone();
    let mut cmdl = Cmdl::open(dir.path(), config.clone(), move || seed).expect("fresh open");
    apply(&mut cmdl, &s.script[0]).expect("acked mutation");
    apply(&mut cmdl, &s.script[1]).expect("acked mutation");
    drop(cmdl);
    let wal_bytes = std::fs::read(dir.path().join("wal")).expect("wal exists");
    assert!(!wal_bytes.is_empty(), "acked records live in the WAL");

    // Rot the segment under the intact WAL.
    let seg = std::fs::read_dir(dir.path())
        .expect("list dir")
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .find(|name| name.starts_with("seg-"))
        .expect("segment exists");
    let seg_path = dir.path().join(seg);
    let mut bytes = std::fs::read(&seg_path).expect("read segment");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    std::fs::write(&seg_path, &bytes).expect("corrupt segment");

    let seed = s.seed.clone();
    let recovered = Cmdl::open(dir.path(), config, move || seed).expect("degrade to rebuild");
    assert!(matches!(
        recovered.recovery_report(),
        Some(RecoveryReport::Rebuilt { .. })
    ));
    // The old log survives byte-for-byte under the salvage name, and the
    // live WAL was restarted fresh.
    let salvaged = std::fs::read(dir.path().join("wal.salvaged-0"))
        .expect("unreplayable WAL set aside, not truncated");
    assert_eq!(salvaged, wal_bytes);
}

#[test]
fn undecodable_wal_record_degrades_to_rebuild() {
    // A checksum-valid frame whose payload no longer decodes (e.g. written
    // by a different build) must degrade to rebuild-from-source like any
    // other corruption — not leave the directory permanently unopenable.
    let s = scenario();
    let config = CmdlConfig::fast();
    let dir = TempDir::new("undecodable");

    let seed = s.seed.clone();
    drop(Cmdl::open(dir.path(), config.clone(), move || seed).expect("fresh open"));

    // Append a frame that passes the checksum but is not a WalRecord.
    let wal_path = dir.path().join("wal");
    let mut bytes = std::fs::read(&wal_path).expect("read wal");
    bytes.extend_from_slice(&encode_frame(9_999, &[0xFF; 16]));
    std::fs::write(&wal_path, &bytes).expect("write poisoned wal");

    let seed = s.seed.clone();
    let recovered = Cmdl::open(dir.path(), config.clone(), move || seed)
        .unwrap_or_else(|e| panic!("undecodable record must not fail open: {e}"));
    match recovered.recovery_report() {
        Some(RecoveryReport::Rebuilt { reason }) => {
            assert!(
                reason.contains("decode"),
                "rebuild reason should name the decode failure: {reason}"
            );
        }
        other => panic!("expected Rebuilt, got {other:?}"),
    }
    // The poisoned log was salvaged and the rebuilt directory reopens clean.
    assert!(dir.path().join("wal.salvaged-0").exists());
    let reopened = Cmdl::open(dir.path(), config, || {
        panic!("rebuilt directory must load without the source")
    })
    .expect("reopen after rebuild");
    assert!(matches!(
        reopened.recovery_report(),
        Some(RecoveryReport::Loaded { .. })
    ));
}

// ---------------------------------------------------------------------
// WAL frame decoding under arbitrary damage (proptest)
// ---------------------------------------------------------------------

/// 1–9 records with arbitrary payload bytes. (The vendored proptest has
/// no tuple or `any` strategies, so the corpus is a bespoke [`Strategy`].)
struct FrameCorpus;

impl Strategy for FrameCorpus {
    type Value = Vec<(u64, Vec<u8>)>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let count = 1 + rng.below(9);
        (0..count)
            .map(|i| {
                let lsn = i as u64 + 1 + rng.next_u64() % 1_000;
                let payload = (0..rng.below(64))
                    .map(|_| (rng.next_u64() & 0xFF) as u8)
                    .collect();
                (lsn, payload)
            })
            .collect()
    }
}

/// Concatenate the encoded frames, also returning each frame's end offset.
fn lay_out(records: &[(u64, Vec<u8>)]) -> (Vec<u8>, Vec<usize>) {
    let mut bytes = Vec::new();
    let mut ends = Vec::new();
    for (lsn, payload) in records {
        bytes.extend_from_slice(&encode_frame(*lsn, payload));
        ends.push(bytes.len());
    }
    (bytes, ends)
}

fn assert_prefix(
    records: &[(u64, Vec<u8>)],
    ends: &[usize],
    frames: &[(u64, Vec<u8>)],
    valid_len: usize,
    expect: usize,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(frames.len(), expect);
    prop_assert_eq!(valid_len, if expect == 0 { 0 } else { ends[expect - 1] });
    for (i, (lsn, payload)) in frames.iter().enumerate() {
        prop_assert_eq!(*lsn, records[i].0);
        prop_assert_eq!(payload, &records[i].1);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Truncating a WAL at ANY byte offset recovers exactly the records
    /// whose frames fit entirely inside the truncation point.
    #[test]
    fn truncation_recovers_longest_valid_prefix(
        records in FrameCorpus,
        cut_seed in 0usize..1_000_000_000,
    ) {
        let (bytes, ends) = lay_out(&records);
        let cut = cut_seed % (bytes.len() + 1); // 0..=len inclusive
        let (frames, valid_len) = decode_frames(&bytes[..cut]);
        let expect = ends.iter().filter(|&&end| end <= cut).count();
        assert_prefix(&records, &ends, &frames, valid_len, expect)?;
    }

    /// Flipping ANY single bit keeps exactly the records that precede the
    /// damaged frame: the checksum (or framing) check rejects the rest.
    #[test]
    fn bit_flip_keeps_only_records_before_the_damage(
        records in FrameCorpus,
        position_seed in 0usize..1_000_000_000,
        bit in 0u8..8,
    ) {
        let (mut bytes, ends) = lay_out(&records);
        let position = position_seed % bytes.len();
        bytes[position] ^= 1 << bit;
        let (frames, valid_len) = decode_frames(&bytes);
        let expect = ends.iter().filter(|&&end| end <= position).count();
        assert_prefix(&records, &ends, &frames, valid_len, expect)?;
    }
}
