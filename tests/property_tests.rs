//! Workspace-level property-based tests over the core data structures and
//! invariants (proptest).

mod common;

use std::collections::BTreeSet;

use proptest::prelude::*;

use cmdl::core::{Cmdl, CmdlConfig, SearchMode};
use cmdl::datalake::{Column, DataLake, Document, Table};
use cmdl::eval::{precision_at_k, r_precision, recall_at_k};
use cmdl::index::{InvertedIndex, ScoringFunction, TopK};
use cmdl::nn::{triplet_loss, Matrix, TripletBatch};
use cmdl::sketch::{exact_containment, exact_jaccard, MinHasher};
use cmdl::text::{BagOfWords, Pipeline, PipelineConfig};

fn word_vec() -> impl Strategy<Value = Vec<String>> {
    prop::collection::vec("[a-z]{2,8}", 0..40)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// MinHash containment estimates stay in [0, 1] and a true subset's
    /// estimated containment in its superset is high.
    #[test]
    fn minhash_containment_bounds(words in prop::collection::vec("[a-z]{2,8}", 20..60)) {
        let hasher = MinHasher::new(256, 7);
        let set: BTreeSet<String> = words.iter().cloned().collect();
        prop_assume!(set.len() >= 10);
        let subset: Vec<String> = set.iter().take(set.len() / 2).cloned().collect();
        let sig_subset = hasher.signature(subset.iter());
        let sig_full = hasher.signature(set.iter());
        let c = sig_subset.containment_in(&sig_full);
        prop_assert!((0.0..=1.0).contains(&c));
        prop_assert!(c > 0.5, "subset containment estimate too low: {c}");
    }

    /// The Jaccard estimate from MinHash is within 0.25 of the exact Jaccard
    /// for reasonably sized sets (128 hashes).
    #[test]
    fn minhash_jaccard_estimate_close(a in word_vec(), b in word_vec()) {
        prop_assume!(!a.is_empty() && !b.is_empty());
        let hasher = MinHasher::new(128, 11);
        let sa: BTreeSet<String> = a.iter().cloned().collect();
        let sb: BTreeSet<String> = b.iter().cloned().collect();
        let sig_a = hasher.signature(sa.iter());
        let sig_b = hasher.signature(sb.iter());
        let exact = exact_jaccard(&sa.iter().cloned().collect::<Vec<_>>(), &sb.iter().cloned().collect::<Vec<_>>());
        let estimate = sig_a.jaccard(&sig_b);
        prop_assert!((estimate - exact).abs() < 0.25, "exact {exact} vs estimate {estimate}");
        prop_assert!((0.0..=1.0).contains(&estimate));
    }

    /// Exact containment is within [0, 1], and a set is always fully
    /// contained in any superset of itself.
    #[test]
    fn containment_invariants(words in word_vec(), extra in word_vec()) {
        prop_assume!(!words.is_empty());
        let mut superset = words.clone();
        superset.extend(extra.clone());
        let c = exact_containment(&words, &superset);
        prop_assert!((c - 1.0).abs() < 1e-12);
        let any = exact_containment(&words, &extra);
        prop_assert!((0.0..=1.0).contains(&any));
    }

    /// The NLP pipeline never panics and produces only non-empty lowercase
    /// terms without stop words.
    #[test]
    fn pipeline_output_well_formed(text in ".{0,300}") {
        let pipeline = Pipeline::new(PipelineConfig::default());
        let bow = pipeline.process(&text);
        for (term, count) in bow.iter() {
            prop_assert!(!term.is_empty());
            prop_assert!(count > 0);
            prop_assert_eq!(term.to_lowercase(), term.to_string());
        }
    }

    /// BM25 scores are positive, and the top-1 result for a query equal to an
    /// indexed document is that document.
    #[test]
    fn bm25_self_retrieval(docs in prop::collection::vec(word_vec(), 1..8)) {
        let mut index = InvertedIndex::new();
        let bows: Vec<BagOfWords> = docs
            .iter()
            .map(|words| BagOfWords::from_tokens(words.iter().cloned()))
            .collect();
        for (i, bow) in bows.iter().enumerate() {
            index.add(i as u64, bow);
        }
        for (i, bow) in bows.iter().enumerate() {
            if bow.is_empty() { continue; }
            let results = index.search(bow, docs.len());
            prop_assert!(!results.is_empty());
            prop_assert!(results.iter().all(|(_, s)| *s > 0.0));
            // The document itself must appear in the results.
            prop_assert!(results.iter().any(|(id, _)| *id == i as u64));
        }
    }

    /// TopK returns at most k results, sorted by score descending.
    #[test]
    fn topk_sorted_and_bounded(scores in prop::collection::vec(0.0f64..1.0, 0..50), k in 0usize..10) {
        let mut topk = TopK::new(k);
        for (i, s) in scores.iter().enumerate() {
            topk.push(i as u64, *s);
        }
        let out = topk.into_sorted_vec();
        prop_assert!(out.len() <= k.min(scores.len()));
        for w in out.windows(2) {
            prop_assert!(w[0].1 >= w[1].1);
        }
    }

    /// The triplet loss is always non-negative and zero when positive and
    /// anchor coincide while the negative is far away.
    #[test]
    fn triplet_loss_nonnegative(
        anchor in prop::collection::vec(-1.0f32..1.0, 4),
        positive in prop::collection::vec(-1.0f32..1.0, 4),
        negative in prop::collection::vec(-1.0f32..1.0, 4),
        margin in 0.0f32..1.0,
    ) {
        let batch = TripletBatch {
            anchors: Matrix::from_rows(std::slice::from_ref(&anchor)),
            positives: Matrix::from_rows(&[positive]),
            negatives: Matrix::from_rows(&[negative]),
        };
        prop_assert!(triplet_loss(&batch, margin) >= 0.0);
        let ideal = TripletBatch {
            anchors: Matrix::from_rows(std::slice::from_ref(&anchor)),
            positives: Matrix::from_rows(std::slice::from_ref(&anchor)),
            negatives: Matrix::from_rows(&[anchor.iter().map(|x| x + 100.0).collect()]),
        };
        prop_assert_eq!(triplet_loss(&ideal, margin), 0.0);
    }

    /// Estimator parity: the one-permutation (densified) scheme and the
    /// classic k-independent scheme estimate the same Jaccard similarity
    /// and containment, each within tolerance of the exact value.
    #[test]
    fn oph_and_classic_estimates_agree(a in prop::collection::vec("[a-z]{2,6}", 10..60), b in prop::collection::vec("[a-z]{2,6}", 10..60)) {
        let sa: BTreeSet<String> = a.iter().cloned().collect();
        let sb: BTreeSet<String> = b.iter().cloned().collect();
        prop_assume!(sa.len() >= 5 && sb.len() >= 5);
        let classic = MinHasher::new(512, 77);
        let oph = MinHasher::one_permutation(512, 77);
        let exact_j = exact_jaccard(
            &sa.iter().cloned().collect::<Vec<_>>(),
            &sb.iter().cloned().collect::<Vec<_>>(),
        );
        let exact_c = exact_containment(
            &sa.iter().cloned().collect::<Vec<_>>(),
            &sb.iter().cloned().collect::<Vec<_>>(),
        );
        let jc = classic.signature(sa.iter()).jaccard(&classic.signature(sb.iter()));
        let jo = oph.signature(sa.iter()).jaccard(&oph.signature(sb.iter()));
        prop_assert!((jc - exact_j).abs() < 0.12, "classic jaccard {jc} vs exact {exact_j}");
        prop_assert!((jo - exact_j).abs() < 0.12, "oph jaccard {jo} vs exact {exact_j}");
        prop_assert!((jc - jo).abs() < 0.2, "schemes diverge: classic {jc} vs oph {jo}");
        let cc = classic.signature(sa.iter()).containment_in(&classic.signature(sb.iter()));
        let co = oph.signature(sa.iter()).containment_in(&oph.signature(sb.iter()));
        prop_assert!((cc - exact_c).abs() < 0.25, "classic containment {cc} vs exact {exact_c}");
        prop_assert!((co - exact_c).abs() < 0.25, "oph containment {co} vs exact {exact_c}");
    }

    /// The heap-based top-k BM25 search returns the same ranked set as
    /// exhaustive scoring: same length, same scores in the same order, and
    /// every returned id carries its exhaustive score.
    #[test]
    fn bm25_heap_matches_exhaustive(docs in prop::collection::vec(word_vec(), 2..10), k in 1usize..8) {
        let mut index = InvertedIndex::new();
        for (i, words) in docs.iter().enumerate() {
            index.add(i as u64, &BagOfWords::from_tokens(words.iter().cloned()));
        }
        index.finalize();
        for words in &docs {
            if words.is_empty() { continue; }
            let query = BagOfWords::from_tokens(words.iter().cloned());
            for scoring in [ScoringFunction::default(), ScoringFunction::LmDirichlet { mu: 200.0 }] {
                let heap = index.search_with(&query, k, scoring);
                let exhaustive = index.search_exhaustive(&query, k, scoring);
                prop_assert_eq!(heap.len(), exhaustive.len());
                for (h, e) in heap.iter().zip(exhaustive.iter()) {
                    prop_assert!((h.1 - e.1).abs() < 1e-9, "score order diverges: {:?} vs {:?}", h, e);
                }
                // Ids may legitimately differ only within exact ties; every
                // returned id must carry its exhaustive score.
                let full = index.search_exhaustive(&query, docs.len(), scoring);
                for (id, score) in &heap {
                    let reference = full.iter().find(|(fid, _)| fid == id);
                    prop_assert!(reference.is_some(), "id {} missing from exhaustive scoring", id);
                    prop_assert!((reference.unwrap().1 - score).abs() < 1e-9);
                }
            }
        }
    }

    /// Precision/recall metrics stay in [0, 1] and R-precision equals
    /// precision at |expected|.
    #[test]
    fn metric_bounds(ranked in word_vec(), expected in word_vec()) {
        let expected: BTreeSet<String> = expected.into_iter().collect();
        for k in [1usize, 3, 10] {
            let p = precision_at_k(&ranked, &expected, k);
            let r = recall_at_k(&ranked, &expected, k);
            prop_assert!((0.0..=1.0).contains(&p));
            prop_assert!((0.0..=1.0).contains(&r));
        }
        if !expected.is_empty() {
            let rp = r_precision(&ranked, &expected);
            prop_assert!((0.0..=1.0).contains(&rp));
            // R-precision divides by |expected|; precision@|expected| divides
            // by the retrieved count, so they coincide only when enough
            // answers were returned and never exceed each other otherwise.
            if ranked.len() >= expected.len() {
                prop_assert!((rp - precision_at_k(&ranked, &expected, expected.len())).abs() < 1e-12);
            } else {
                prop_assert!(rp <= precision_at_k(&ranked, &expected, expected.len()) + 1e-12);
            }
        }
    }
}

/// A random miniature lake: tables of random textual columns over a small
/// shared vocabulary, plus a few free-text documents.
fn mini_tables() -> impl Strategy<Value = Vec<Vec<Vec<String>>>> {
    prop::collection::vec(
        prop::collection::vec(prop::collection::vec("[a-z]{3,7}", 3..8), 1..3),
        2..5,
    )
}

fn mini_docs() -> impl Strategy<Value = Vec<Vec<String>>> {
    prop::collection::vec(prop::collection::vec("[a-z]{3,8}", 4..12), 1..4)
}

fn build_mini_lake(tables: &[Table], docs: &[Document]) -> DataLake {
    let mut lake = DataLake::new("mini");
    for t in tables {
        lake.add_table(t.clone());
    }
    for d in docs {
        lake.add_document(d.clone());
    }
    lake
}

fn mini_config() -> CmdlConfig {
    CmdlConfig {
        // Refresh the IDF cache on every mutation: with a zero staleness
        // bound, BM25 scores under ingestion are *exact*, so the delta path
        // must match the batch build even before compaction.
        idf_refresh_ratio: 0.0,
        ..CmdlConfig::fast()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any interleaving of table/document ingestion and removal, applied to
    /// a seed subset of a random miniature lake, yields the same discovery
    /// results as a fresh batch build of the surviving elements: BM25
    /// results agree even before compaction (zero IDF staleness bound,
    /// tombstones skipped exactly), and the full discovery surface agrees
    /// after compaction.
    #[test]
    fn interleaved_ingest_matches_batch_build(
        raw_tables in mini_tables(),
        raw_docs in mini_docs(),
        mask in 0u32..u32::MAX,
    ) {
        let tables: Vec<Table> = raw_tables
            .iter()
            .enumerate()
            .map(|(ti, columns)| {
                Table::new(
                    format!("t{ti}"),
                    columns
                        .iter()
                        .enumerate()
                        .map(|(ci, values)| Column::from_texts(format!("c{ci}"), values.clone()))
                        .collect(),
                )
            })
            .collect();
        let docs: Vec<Document> = raw_docs
            .iter()
            .enumerate()
            .map(|(di, words)| Document::new(format!("d{di}"), "synthetic", words.join(" ")))
            .collect();

        // Seed subset sizes and removal sets, all derived from `mask`.
        let table_seed = 1 + (mask as usize) % tables.len();
        let doc_seed = ((mask >> 4) as usize) % (docs.len() + 1);
        let removed_tables: Vec<usize> = (0..tables.len())
            .filter(|i| (mask >> (8 + i)) & 1 == 1)
            .take(tables.len() - 1) // keep at least one table
            .collect();
        let removed_docs: Vec<usize> = (0..docs.len())
            .filter(|i| (mask >> (16 + i)) & 1 == 1)
            .collect();

        // Incremental: seed build, interleaved ingest, then removals.
        let config = mini_config();
        let mut incremental = Cmdl::build(
            build_mini_lake(&tables[..table_seed], &docs[..doc_seed]),
            config.clone(),
        );
        let mut pending_tables = tables[table_seed..].iter();
        let mut pending_docs = docs[doc_seed..].iter();
        loop {
            match (pending_tables.next(), pending_docs.next()) {
                (None, None) => break,
                (t, d) => {
                    if let Some(t) = t {
                        incremental.ingest_table(t.clone()).unwrap();
                    }
                    if let Some(d) = d {
                        incremental.ingest_document(d.clone()).unwrap();
                    }
                }
            }
        }
        for &ti in &removed_tables {
            incremental.remove_table(&format!("t{ti}")).unwrap();
        }
        for &di in &removed_docs {
            incremental.remove_document(di).unwrap();
        }

        // Batch build over the survivors only.
        let surviving_tables: Vec<Table> = tables
            .iter()
            .enumerate()
            .filter(|(i, _)| !removed_tables.contains(i))
            .map(|(_, t)| t.clone())
            .collect();
        let surviving_docs: Vec<Document> = docs
            .iter()
            .enumerate()
            .filter(|(i, _)| !removed_docs.contains(i))
            .map(|(_, d)| d.clone())
            .collect();
        let batch = Cmdl::build(build_mini_lake(&surviving_tables, &surviving_docs), config);

        prop_assert_eq!(batch.profiled.len(), incremental.profiled.len());

        // Query workload: vocabulary drawn from the surviving data.
        let mut queries: Vec<String> = surviving_tables
            .iter()
            .take(2)
            .flat_map(|t| t.columns.first())
            .flat_map(|c| c.values.first())
            .map(|v| v.as_text())
            .collect();
        queries.extend(surviving_docs.first().map(|d| d.text.clone()));

        // Tombstone correctness + exact BM25 parity *before* compaction.
        for (qi, query) in queries.iter().enumerate() {
            let delta: Vec<(String, f64)> = incremental
                .content_search(query, SearchMode::All, 10)
                .into_iter()
                .map(|r| (r.label, r.score))
                .collect();
            for (label, _) in &delta {
                for &ti in &removed_tables {
                    prop_assert!(
                        !label.starts_with(&format!("t{ti}.")),
                        "tombstoned column surfaced: {label}"
                    );
                }
                for &di in &removed_docs {
                    prop_assert!(label != &format!("d{di}"), "tombstoned document surfaced");
                }
            }
            let fresh: Vec<(String, f64)> = batch
                .content_search(query, SearchMode::All, 10)
                .into_iter()
                .map(|r| (r.label, r.score))
                .collect();
            common::assert_result_parity(&format!("pre-compact content[{qi}]"), &fresh, &delta);
        }

        // Full-surface parity after compaction.
        incremental.compact();
        for (qi, query) in queries.iter().enumerate() {
            let delta: Vec<(String, f64)> = incremental
                .content_search(query, SearchMode::All, 10)
                .into_iter()
                .map(|r| (r.label, r.score))
                .collect();
            let fresh: Vec<(String, f64)> = batch
                .content_search(query, SearchMode::All, 10)
                .into_iter()
                .map(|r| (r.label, r.score))
                .collect();
            common::assert_result_parity(&format!("post-compact content[{qi}]"), &fresh, &delta);

            let delta_cm: Vec<(String, f64)> = incremental
                .cross_modal_search_text(query, 5)
                .unwrap()
                .into_iter()
                .map(|r| (r.label, r.score))
                .collect();
            let fresh_cm: Vec<(String, f64)> = batch
                .cross_modal_search_text(query, 5)
                .unwrap()
                .into_iter()
                .map(|r| (r.label, r.score))
                .collect();
            common::assert_result_parity(&format!("cross_modal[{qi}]"), &fresh_cm, &delta_cm);
        }
        for table in &surviving_tables {
            let delta: Vec<(String, f64)> = incremental
                .joinable(&table.name, 5)
                .unwrap()
                .into_iter()
                .map(|r| (r.label, r.score))
                .collect();
            let fresh: Vec<(String, f64)> = batch
                .joinable(&table.name, 5)
                .unwrap()
                .into_iter()
                .map(|r| (r.label, r.score))
                .collect();
            common::assert_result_parity(&format!("joinable[{}]", table.name), &fresh, &delta);
        }
    }
}
