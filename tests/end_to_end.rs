//! Workspace-level integration tests: the full CMDL pipeline over synthetic
//! lakes, cross-crate interactions, and the paper's qualitative claims at a
//! small scale.

use cmdl::core::{Cmdl, CmdlConfig, SearchMode};
use cmdl::datalake::benchmarks::{
    doc_to_table_benchmark, pkfk_benchmark, syntactic_join_benchmark, unionable_benchmark,
};
use cmdl::datalake::{synth, BenchmarkId, DeKind};
use cmdl::eval::{
    evaluate_doc2table, evaluate_join, evaluate_pkfk, evaluate_union, Doc2TableMethod,
    StructuredSystem,
};

fn pharma_system() -> (Cmdl, synth::SyntheticLake) {
    let synth_lake = synth::pharma::generate(&synth::pharma::PharmaConfig::tiny());
    let cmdl = Cmdl::build(synth_lake.lake.clone(), CmdlConfig::fast());
    (cmdl, synth_lake)
}

#[test]
fn full_pipeline_q1_to_q5_returns_planted_answers() {
    let (mut cmdl, synth_lake) = pharma_system();
    cmdl.train_joint(None);

    // Q1: keyword search over documents for an enzyme name.
    let enzyme = synth_lake
        .lake
        .table("Enzymes")
        .unwrap()
        .column("Target")
        .unwrap()
        .values[0]
        .as_text();
    let docs = cmdl.content_search(&enzyme, SearchMode::Text, 3);
    assert!(!docs.is_empty(), "Q1 should return documents");
    for d in &docs {
        let kind = cmdl.profiled.profile(d.element.unwrap()).unwrap().kind;
        assert_eq!(kind, DeKind::Document);
    }

    // Q2: cross-modal search for the first document.
    let doc_idx = cmdl
        .profiled
        .lake
        .document_index(docs[0].element.unwrap())
        .unwrap();
    let tables = cmdl.cross_modal_search(doc_idx, 4).unwrap();
    assert!(!tables.is_empty(), "Q2 should return tables");
    let expected = synth_lake.truth.tables_for_doc(doc_idx).unwrap();
    assert!(
        tables
            .iter()
            .any(|t| expected.contains(t.table.as_deref().unwrap_or(""))),
        "Q2 should hit at least one ground-truth table: got {:?}, expected {:?}",
        tables.iter().map(|t| &t.label).collect::<Vec<_>>(),
        expected
    );

    // Q4: joinable tables with Drugs must include an FK partner.
    let joins = cmdl.joinable("Drugs", 4).unwrap();
    let join_names: Vec<&str> = joins.iter().map(|j| j.label.as_str()).collect();
    assert!(
        join_names
            .iter()
            .any(|n| ["Enzyme_Targets", "Drug_Interactions", "Dosages", "Trials"].contains(n)),
        "Q4 should find a drug-key table, got {join_names:?}"
    );

    // Q5: unionable tables with Drugs should surface the planted projections.
    let unions = cmdl.unionable("Drugs", 5).unwrap();
    assert!(
        unions.iter().any(|u| u.table.starts_with("Drugs_proj_")
            || u.table == "Compounds"
            || u.table == "Chemical_Entities"),
        "Q5 should find projection or name-aligned tables, got {:?}",
        unions.iter().map(|u| &u.table).collect::<Vec<_>>()
    );
}

#[test]
fn cmdl_outperforms_schema_only_keyword_baseline_on_doc_to_table() {
    let (cmdl, synth_lake) = pharma_system();
    let benchmark = doc_to_table_benchmark(BenchmarkId::B1B, &synth_lake);
    let ks = [4, 8];
    let cmdl_eval = evaluate_doc2table(&cmdl, &benchmark, Doc2TableMethod::CmdlSolo, &ks);
    let schema_eval =
        evaluate_doc2table(&cmdl, &benchmark, Doc2TableMethod::ElasticSchemaOnly, &ks);
    let cmdl_recall: f64 = cmdl_eval.curve.iter().map(|p| p.recall).sum();
    let schema_recall: f64 = schema_eval.curve.iter().map(|p| p.recall).sum();
    assert!(
        cmdl_recall >= schema_recall,
        "CMDL ({cmdl_recall:.3}) should not lose to schema-only keyword search ({schema_recall:.3})"
    );
    assert!(cmdl_recall > 0.0);
}

#[test]
fn joint_training_does_not_degrade_below_random() {
    let (mut cmdl, synth_lake) = pharma_system();
    cmdl.train_joint(None);
    let benchmark = doc_to_table_benchmark(BenchmarkId::B1B, &synth_lake);
    let joint = evaluate_doc2table(&cmdl, &benchmark, Doc2TableMethod::CmdlJoint, &[6]);
    let point = joint.curve[0];
    // 6 of ~17 tables are related per query; random precision would be ~0.35.
    assert!(
        point.precision > 0.2,
        "joint model precision collapsed: {point:?}"
    );
}

#[test]
fn syntactic_join_containment_beats_jaccard_under_skew() {
    let (cmdl, synth_lake) = pharma_system();
    let benchmark = syntactic_join_benchmark(BenchmarkId::B2B, &synth_lake);
    let ours = evaluate_join(&cmdl, &benchmark, StructuredSystem::Cmdl);
    let aurum = evaluate_join(&cmdl, &benchmark, StructuredSystem::Aurum);
    let d3l = evaluate_join(&cmdl, &benchmark, StructuredSystem::D3l);
    assert!(ours.r_precision >= aurum.r_precision - 1e-9);
    assert!(ours.r_precision >= d3l.r_precision - 1e-9);
    assert!(
        ours.r_precision > 0.3,
        "CMDL join R-precision: {}",
        ours.r_precision
    );
}

#[test]
fn pkfk_recall_shape_matches_table_4() {
    let (cmdl, synth_lake) = pharma_system();
    let benchmark = pkfk_benchmark(BenchmarkId::B2D, &synth_lake);
    let ours = evaluate_pkfk(&cmdl, &benchmark, StructuredSystem::Cmdl);
    let aurum = evaluate_pkfk(&cmdl, &benchmark, StructuredSystem::Aurum);
    assert!(ours.recall >= aurum.recall);
    assert!(
        ours.recall > 0.4,
        "CMDL PK-FK recall too low: {}",
        ours.recall
    );
    // The paper reports CMDL trading precision for recall on DrugBank
    // (Table 4: 0.33 precision, 0.91 recall); symmetric 1:1 key coverage in
    // the synthetic lake produces reverse-direction false positives, so only
    // a loose lower bound is asserted here.
    assert!(
        ours.precision > 0.1,
        "CMDL PK-FK precision too low: {}",
        ours.precision
    );
}

#[test]
fn unionability_cmdl_and_d3l_beat_aurum_on_ukopen() {
    let synth_lake = synth::ukopen::generate(&synth::ukopen::UkOpenConfig::tiny());
    let benchmark = unionable_benchmark(BenchmarkId::B3A, &synth_lake);
    let cmdl = Cmdl::build(synth_lake.lake.clone(), CmdlConfig::fast());
    let ks = [3];
    let ours = evaluate_union(&cmdl, &benchmark, StructuredSystem::Cmdl, &ks, "ensemble");
    let aurum = evaluate_union(&cmdl, &benchmark, StructuredSystem::Aurum, &ks, "ensemble");
    assert!(
        ours.curve[0].recall >= aurum.curve[0].recall - 0.15,
        "CMDL union recall {} should be roughly >= Aurum {}",
        ours.curve[0].recall,
        aurum.curve[0].recall
    );
    assert!(ours.curve[0].recall > 0.2);
}

#[test]
fn bm25_heap_matches_exhaustive_on_pharma_lake() {
    // The optimized query path must return the same ranked set as the
    // pre-optimization exhaustive scorer over the real (synthetic pharma)
    // catalog, for every document-profile query.
    use cmdl::index::ScoringFunction;
    let (cmdl, _) = pharma_system();
    for doc_id in &cmdl.profiled.doc_ids {
        let profile = cmdl.profiled.profile(*doc_id).unwrap();
        for scoring in [
            ScoringFunction::default(),
            ScoringFunction::LmDirichlet { mu: 2000.0 },
        ] {
            let heap = cmdl
                .indexes
                .content
                .search_with(&profile.content, 10, scoring);
            let exhaustive = cmdl
                .indexes
                .content
                .search_exhaustive(&profile.content, 10, scoring);
            assert_eq!(heap.len(), exhaustive.len());
            for (h, e) in heap.iter().zip(exhaustive.iter()) {
                assert!(
                    (h.1 - e.1).abs() < 1e-9,
                    "ranked scores diverge for doc {doc_id:?}: {h:?} vs {e:?}"
                );
            }
        }
    }
}

#[test]
fn containment_probe_matches_brute_force_on_pharma_lake() {
    let (cmdl, _) = pharma_system();
    for doc_id in cmdl.profiled.doc_ids.iter().take(20) {
        let profile = cmdl.profiled.profile(*doc_id).unwrap();
        let probe = cmdl.indexes.containment.query_top_k(&profile.minhash, 10);
        let brute = cmdl
            .indexes
            .containment
            .query_top_k_brute(&profile.minhash, 10);
        assert_eq!(probe.len(), brute.len());
        for (p, b) in probe.iter().zip(brute.iter()) {
            assert!(
                (p.1 - b.1).abs() < 1e-9,
                "containment scores diverge for doc {doc_id:?}: {p:?} vs {b:?}"
            );
        }
    }
}

#[test]
fn kind_filtered_search_fills_top_k() {
    // The streaming kind filter must deliver `top_k` results whenever that
    // many elements of the kind match — the seed's over-fetch post-filter
    // could come up short under heavy filters.
    use cmdl::index::ScoringFunction;
    let (cmdl, _) = pharma_system();
    let doc_id = cmdl.profiled.doc_ids[0];
    let profile = cmdl.profiled.profile(doc_id).unwrap();
    let k = 15;
    let filtered = cmdl.indexes.content_search(
        &cmdl.profiled,
        &profile.content,
        Some(DeKind::Column),
        k,
        ScoringFunction::default(),
    );
    // Reference: exhaustively score everything, post-filter by kind.
    let all = cmdl.indexes.content.search_exhaustive(
        &profile.content,
        100_000,
        ScoringFunction::default(),
    );
    let expected = all
        .iter()
        .filter(|(id, _)| {
            cmdl.profiled
                .profile(cmdl::datalake::DeId(*id))
                .map(|p| p.kind == DeKind::Column)
                .unwrap_or(false)
        })
        .count()
        .min(k);
    assert_eq!(
        filtered.len(),
        expected,
        "kind-filtered search must fill top_k when enough columns match"
    );
}

#[test]
fn mlopen_lake_end_to_end_smoke() {
    let synth_lake = synth::mlopen(synth::MlOpenScale::Small);
    let cmdl = Cmdl::build(synth_lake.lake, CmdlConfig::fast());
    // Cross-modal search for a review document should surface its dataset's
    // split tables or the catalog.
    let results = cmdl.cross_modal_search(0, 3).unwrap();
    assert!(!results.is_empty());
    let links = cmdl.pkfk().unwrap();
    assert!(
        links
            .iter()
            .any(|l| l.pk_name.starts_with("dataset_catalog")),
        "catalog PK-FK links should be discovered"
    );
}
