//! Incremental-ingestion parity: building the pharma lake in one batch and
//! building it as a seed subset plus `ingest_*` deltas (with a final
//! `compact()`) must yield identical discovery results.
//!
//! This is the guard that keeps the delta path honest: every index delta
//! (BM25 postings with lazy IDF, LSH pending inserts and tombstones, ANN
//! delta tails, document-frequency flip patching) must fold back into a
//! catalog that is indistinguishable from a batch build over the same
//! elements. The CI `incremental-parity` job runs this test at bench scale
//! (`PARITY_SCALE=bench`); the default scale keeps it cheap enough for the
//! tier-1 suite.
//!
//! Results are compared modulo reordering within exact score ties (element
//! ids differ between the two systems, so equal-scored elements may be
//! enumerated in a different order; see `common::assert_result_parity`).

mod common;

use cmdl::core::{Cmdl, CmdlConfig, SearchMode};
use cmdl::datalake::{synth, DataLake, Document, Table};
use common::assert_result_parity;

fn parity_config() -> synth::PharmaConfig {
    if std::env::var("PARITY_SCALE").as_deref() == Ok("bench") {
        synth::PharmaConfig {
            num_drugs: 60,
            num_enzymes: 30,
            num_documents: 80,
            num_interactions: 120,
            num_synthetic_tables: 10,
            ..Default::default()
        }
    } else {
        synth::PharmaConfig::tiny()
    }
}

/// The full pharma lake plus its raw tables and documents (for replay).
fn full_lake() -> (DataLake, Vec<Table>, Vec<Document>) {
    let lake = synth::pharma::generate(&parity_config()).lake;
    let tables = lake.tables().to_vec();
    let documents = lake.documents().to_vec();
    (lake, tables, documents)
}

/// A lake containing `tables` then `documents`, in order.
fn lake_of(name: &str, tables: &[Table], documents: &[Document]) -> DataLake {
    let mut lake = DataLake::new(name);
    for t in tables {
        lake.add_table(t.clone());
    }
    for d in documents {
        lake.add_document(d.clone());
    }
    lake
}

/// Deterministic query workload derived from the raw lake data (identical
/// strings for both systems, independent of either system's ids).
fn query_workload(tables: &[Table], documents: &[Document]) -> Vec<String> {
    let mut queries = Vec::new();
    for table in tables.iter().take(6) {
        for column in table.columns.iter().take(2) {
            if let Some(v) = column.values.first() {
                let text = v.as_text();
                if !text.is_empty() {
                    queries.push(text);
                }
            }
        }
    }
    for doc in documents.iter().take(6) {
        queries.push(doc.title.clone());
        queries.push(doc.text.chars().take(60).collect());
    }
    queries.push("drug enzyme inhibitor target".to_string());
    queries
}

/// Collect every discovery surface of a system as comparable
/// `(tag, results)` pairs.
fn discovery_surface(cmdl: &Cmdl, queries: &[String]) -> Vec<(String, Vec<(String, f64)>)> {
    let mut surfaces = Vec::new();
    for (qi, query) in queries.iter().enumerate() {
        for (mode, mode_name) in [
            (SearchMode::All, "all"),
            (SearchMode::Text, "text"),
            (SearchMode::Tables, "tables"),
        ] {
            let results = cmdl
                .content_search(query, mode, 10)
                .into_iter()
                .map(|r| (r.label, r.score))
                .collect();
            surfaces.push((format!("content[{qi}][{mode_name}]"), results));
        }
        let results = cmdl
            .cross_modal_search_text(query, 5)
            .unwrap()
            .into_iter()
            .map(|r| (r.label, r.score))
            .collect();
        surfaces.push((format!("cross_modal[{qi}]"), results));
    }
    let mut table_names: Vec<String> = cmdl
        .profiled
        .lake
        .tables()
        .iter()
        .enumerate()
        .filter(|&(i, _)| !cmdl.profiled.lake.is_table_removed(i))
        .map(|(_, t)| t.name.clone())
        .collect();
    table_names.sort();
    for name in &table_names {
        let joins = cmdl
            .joinable(name, 5)
            .unwrap()
            .into_iter()
            .map(|r| (r.label, r.score))
            .collect();
        surfaces.push((format!("joinable[{name}]"), joins));
        let unions = cmdl
            .unionable(name, 5)
            .unwrap()
            .into_iter()
            .map(|u| (u.table, u.score))
            .collect();
        surfaces.push((format!("unionable[{name}]"), unions));
    }
    let pkfk = cmdl
        .pkfk()
        .unwrap()
        .into_iter()
        .map(|l| (format!("{}->{}", l.pk_name, l.fk_name), l.score))
        .collect();
    surfaces.push(("pkfk".to_string(), pkfk));
    surfaces
}

fn assert_systems_agree(batch: &Cmdl, incremental: &Cmdl, queries: &[String]) {
    let batch_surface = discovery_surface(batch, queries);
    let incremental_surface = discovery_surface(incremental, queries);
    assert_eq!(batch_surface.len(), incremental_surface.len());
    for ((tag_a, results_a), (tag_b, results_b)) in
        batch_surface.iter().zip(incremental_surface.iter())
    {
        assert_eq!(tag_a, tag_b);
        assert_result_parity(tag_a, results_a, results_b);
    }
}

#[test]
fn batch_and_incremental_builds_agree() {
    let (lake, tables, documents) = full_lake();
    let config = CmdlConfig::fast();
    let batch = Cmdl::build(lake, config.clone());

    // Seed with ~90% of the lake, ingest the remainder element by element.
    let table_seed = (tables.len() * 9).div_ceil(10);
    let doc_seed = (documents.len() * 9).div_ceil(10);
    let mut incremental = Cmdl::build(
        lake_of("pharma-seed", &tables[..table_seed], &documents[..doc_seed]),
        config,
    );
    for table in &tables[table_seed..] {
        incremental.ingest_table(table.clone()).unwrap();
    }
    for doc in &documents[doc_seed..] {
        incremental.ingest_document(doc.clone()).unwrap();
    }
    incremental.compact();

    assert_eq!(
        batch.profiled.len(),
        incremental.profiled.len(),
        "element counts must agree"
    );
    assert_eq!(
        batch.profiled.doc_df.num_docs(),
        incremental.profiled.doc_df.num_docs(),
        "corpus statistics must agree"
    );
    let queries = query_workload(&tables, &documents);
    assert_systems_agree(&batch, &incremental, &queries);
}

#[test]
fn removal_then_compact_matches_batch_of_survivors() {
    let (lake, tables, documents) = full_lake();
    let config = CmdlConfig::fast();

    // Incremental: build everything, then remove the last two tables and the
    // last two documents.
    let mut incremental = Cmdl::build(lake, config.clone());
    let removed_tables: Vec<String> = tables
        .iter()
        .rev()
        .take(2)
        .map(|t| t.name.clone())
        .collect();
    for name in &removed_tables {
        incremental.remove_table(name).unwrap();
    }
    for index in (documents.len() - 2..documents.len()).rev() {
        incremental.remove_document(index).unwrap();
    }
    incremental.compact();

    // Batch: build only the survivors.
    let surviving_tables: Vec<Table> = tables
        .iter()
        .filter(|t| !removed_tables.contains(&t.name))
        .cloned()
        .collect();
    let surviving_docs: Vec<Document> = documents[..documents.len() - 2].to_vec();
    let batch = Cmdl::build(
        lake_of("pharma-survivors", &surviving_tables, &surviving_docs),
        config,
    );

    assert_eq!(batch.profiled.len(), incremental.profiled.len());
    let queries = query_workload(&surviving_tables, &surviving_docs);
    assert_systems_agree(&batch, &incremental, &queries);
}
