//! Hot-path parity suite: the fast layouts must be *bit-identical* to
//! their exact baselines.
//!
//! * Block-max-pruned BM25/LM top-k == the unpruned DAAT heap scan == the
//!   pre-optimization exhaustive HashMap scan, over randomized corpora
//!   including tombstoned documents and post-finalize delta tails.
//! * `i8` scalar-quantized ANN pre-rank + `f32` rerank == the pure-`f32`
//!   path, both at the index level and through the full cross-modal query
//!   path on the pharma lake (set `HOTPATH_SCALE=bench` for the
//!   benchmark-scale lake; the default is the fast tiny lake so plain
//!   `cargo test` stays quick).

use proptest::prelude::*;

use cmdl::core::{Cmdl, CmdlConfig, QueryBuilder};
use cmdl::datalake::synth::{self, PharmaConfig};
use cmdl::index::{Bm25Params, InvertedIndex, ScoringFunction};
use cmdl::text::BagOfWords;

/// Turn term indexes into a bag of words over the shared tiny vocabulary.
fn bow_of(terms: &[usize]) -> BagOfWords {
    BagOfWords::from_tokens(terms.iter().map(|t| VOCAB[t % VOCAB.len()]))
}

const VOCAB: [&str; 12] = [
    "alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta", "iota", "kappa",
    "lambda", "mu",
];

const SCORINGS: [ScoringFunction; 3] = [
    ScoringFunction::Bm25(Bm25Params { k1: 1.2, b: 0.75 }),
    ScoringFunction::Bm25(Bm25Params { k1: 0.6, b: 0.3 }),
    ScoringFunction::LmDirichlet { mu: 150.0 },
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Pruned top-k (ids *and* scores) must equal the unpruned DAAT scan
    /// and the exhaustive reference exactly — including under tombstones
    /// and a delta tail, where the block bounds must stay conservative.
    #[test]
    fn blockmax_pruned_matches_exhaustive(
        docs in prop::collection::vec(prop::collection::vec(0usize..12, 1..24), 40..300),
        removals in prop::collection::vec(0usize..300, 0..25),
        delta in prop::collection::vec(prop::collection::vec(0usize..12, 1..16), 0..20),
        query in prop::collection::vec(0usize..12, 1..5),
        k in 1usize..12,
    ) {
        let mut idx = InvertedIndex::new();
        for (i, terms) in docs.iter().enumerate() {
            idx.add(i as u64, &bow_of(terms));
        }
        idx.finalize();
        for &r in &removals {
            // Unknown ids are no-ops, which is part of the contract.
            idx.remove(r as u64);
        }
        // Post-finalize adds land in the per-term delta tails.
        for (i, terms) in delta.iter().enumerate() {
            idx.add(10_000 + i as u64, &bow_of(terms));
        }
        let query = bow_of(&query);
        for scoring in SCORINGS {
            let pruned = idx.search_pruned(&query, k, scoring);
            let unpruned = idx.search_unpruned(&query, k, scoring);
            prop_assert_eq!(&pruned, &unpruned);
            let exhaustive = idx.search_exhaustive(&query, k, scoring);
            prop_assert_eq!(&pruned, &exhaustive);
        }
    }

    /// Compaction preserves the pruned/unpruned agreement (block metadata
    /// is rebuilt from scratch).
    #[test]
    fn blockmax_parity_survives_compaction(
        docs in prop::collection::vec(prop::collection::vec(0usize..12, 1..20), 150..400),
        removals in prop::collection::vec(0usize..400, 5..60),
        query in prop::collection::vec(0usize..12, 1..4),
        k in 1usize..10,
    ) {
        let mut idx = InvertedIndex::new();
        for (i, terms) in docs.iter().enumerate() {
            idx.add(i as u64, &bow_of(terms));
        }
        idx.finalize();
        for &r in &removals {
            idx.remove(r as u64);
        }
        idx.compact();
        let query = bow_of(&query);
        for scoring in SCORINGS {
            let pruned = idx.search_pruned(&query, k, scoring);
            let unpruned = idx.search_unpruned(&query, k, scoring);
            prop_assert_eq!(&pruned, &unpruned);
        }
    }
}

/// The pharma lake the quantization parity runs on: tiny by default, the
/// benchmark-scale lake under `HOTPATH_SCALE=bench` (the CI bench-smoke
/// job sets it; release builds make it cheap).
fn pharma_config() -> PharmaConfig {
    if std::env::var("HOTPATH_SCALE").as_deref() == Ok("bench") {
        PharmaConfig {
            num_drugs: 60,
            num_enzymes: 30,
            num_documents: 80,
            num_interactions: 120,
            num_synthetic_tables: 10,
            ..Default::default()
        }
    } else {
        PharmaConfig::tiny()
    }
}

/// `i8` pre-rank + `f32` rerank must return the identical top-k (ids and
/// scores) as the pure-`f32` path, across the whole cross-modal surface of
/// the pharma lake.
///
/// This is an *empirical* contract on the pinned lake/seed/config — scalar
/// quantization has no mathematical exactness guarantee; the rerank pool
/// (`ann_rerank_factor × top_k`) is what absorbs the ~1/127 per-row
/// quantization error in practice. If a legitimate future change to
/// embedding training or lake synthesis trips this assert with no ANN code
/// change, widen `ann_rerank_factor` here (and in the bench) rather than
/// weakening the equality.
#[test]
fn quantized_ann_matches_exact_on_pharma_lake() {
    let lake = synth::pharma::generate(&pharma_config()).lake;
    let exact_cfg = CmdlConfig {
        ann_quantize: false,
        ..CmdlConfig::fast()
    };
    let quant_cfg = CmdlConfig {
        ann_quantize: true,
        ann_rerank_factor: 4,
        ..CmdlConfig::fast()
    };
    let exact = Cmdl::build(lake.clone(), exact_cfg);
    let quant = Cmdl::build(lake, quant_cfg);
    let (snap_exact, snap_quant) = (exact.snapshot(), quant.snapshot());

    // Index-level parity: every profiled embedding queried against both
    // solo ANN indexes (identical trees — the seed and the insertion order
    // are the same — so any divergence is the pre-rank).
    let mut probes = 0usize;
    for (_, profile) in snap_exact.profiled.profiles.iter() {
        let a = snap_exact.indexes.solo_search(&profile.solo.content, 10);
        let b = snap_quant.indexes.solo_search(&profile.solo.content, 10);
        assert_eq!(a, b, "solo ANN diverged for {:?}", profile.id);
        probes += 1;
    }
    assert!(probes > 20, "expected a real probe workload, got {probes}");

    // Query-level parity: the blended cross-modal hits must match exactly
    // (the embedding signal is the only path through the ANN index).
    for doc in 0..snap_exact.profiled.lake.num_documents() {
        let query = QueryBuilder::cross_modal_doc(doc).top_k(8).build();
        let a = snap_exact.execute(&query).expect("exact");
        let b = snap_quant.execute(&query).expect("quantized");
        assert_eq!(a.hits, b.hits, "cross-modal hits diverged for doc {doc}");
    }
}
