//! Chaos harness over the replicated serving backend.
//!
//! The protocol-level tests in `cmdl-core` exercise the delta stream in
//! isolation; this suite drives the whole serving stack — `CmdlService`
//! with `Backend::Replicated` — while the loopback links misbehave:
//! batches are dropped, duplicated, delayed out of order, bit-flipped in
//! flight, and ships fail outright to exercise the retry backoff. Replica
//! processes are killed mid-stream and revived later.
//!
//! The contracts asserted throughout:
//!
//! 1. **No torn generations** — a replica's published snapshot only ever
//!    moves forward, and only to generations the writer actually
//!    published (never past the writer, never backwards).
//! 2. **Bit-parity convergence** — once the faults stop, every replica
//!    converges to the writer's exact state: same generation, same
//!    stats, same search results bit for bit.
//! 3. **Reads never error** — with replicas lagging, dead, or all of
//!    them down at once, queries still answer from the freshest eligible
//!    source (falling back to the writer's own snapshot).

use std::sync::Arc;
use std::time::Duration;

use cmdl::core::{
    Cmdl, CmdlConfig, LinkChaos, LinkFault, LoopbackLink, QueryBuilder, Replica, ReplicationConfig,
    ReplicationGroup, SearchMode,
};
use cmdl::datalake::{synth, Column, Document, Table};
use cmdl::server::{CmdlService, ResponsePayload, ServiceRequest};

// ---------------------------------------------------------------------
// Rig
// ---------------------------------------------------------------------

/// A replicated service plus the handles the chaos tests steer it with.
/// `CmdlService::replicated` takes the group by value, so every handle is
/// cloned out before the hand-off.
struct Rig {
    service: CmdlService,
    replicas: Vec<Arc<Replica>>,
    chaos: Vec<Arc<LinkChaos>>,
    links: Vec<Arc<LoopbackLink>>,
}

fn rig(replicas: usize) -> Rig {
    let lake = synth::pharma::generate(&synth::PharmaConfig::tiny()).lake;
    // Auto-compaction off so each mutation bumps the generation exactly
    // once — the lag arithmetic below counts generations.
    let config = CmdlConfig {
        compaction_ratio: 1e9,
        ..CmdlConfig::fast()
    };
    let cmdl = Cmdl::build(lake, config);
    let replication = ReplicationConfig {
        replicas,
        lag_bound: 2,
        resync_lag: 3,
        reorder_window: 2,
        suspect_after: Duration::from_millis(30),
        down_after: Duration::from_millis(90),
        heartbeat_interval: Duration::from_millis(1),
        retry_base: Duration::from_micros(100),
        retry_cap: Duration::from_millis(1),
        ..ReplicationConfig::default()
    };
    let group = ReplicationGroup::new(&cmdl, replication);
    let replica_handles = (0..replicas).map(|i| group.replica(i)).collect();
    let chaos = (0..replicas)
        .map(|i| group.chaos(i).expect("loopback chaos"))
        .collect();
    let links = (0..replicas)
        .map(|i| group.loopback(i).expect("loopback link"))
        .collect();
    Rig {
        service: CmdlService::replicated(cmdl, group),
        replicas: replica_handles,
        chaos,
        links,
    }
}

impl Rig {
    /// Kill replica `i` the way `ReplicationGroup::kill` does: the
    /// process dies (in-flight batches lost) and its link refuses ships.
    fn kill(&self, i: usize) {
        self.replicas[i].kill();
        self.links[i].set_down(true);
    }

    /// Revive replica `i`: the link answers again and the process rejoins
    /// with its pre-kill catalog and a hole in its delta stream.
    fn revive(&self, i: usize) {
        self.links[i].set_down(false);
        self.replicas[i].revive();
    }
}

/// Apply scripted mutation `i` through the service (table, document, or an
/// explicit compaction — all three delta-record shapes ship).
fn mutate(service: &CmdlService, i: usize) {
    if i % 7 == 6 {
        assert!(service.handle(ServiceRequest::Compact).ok);
    } else if i % 3 == 2 {
        let document = Document::new(
            format!("chaos-note-{i}"),
            "Chaos",
            format!("replication delta note number {i} mentions alpha and beta"),
        );
        assert!(service.ingest_document(document).ok);
    } else {
        let table = Table::new(
            format!("Chaos_Feed_{i}"),
            vec![
                Column::from_texts("Id", [format!("cf-{i}-a"), format!("cf-{i}-b")]),
                Column::from_texts(
                    "Label",
                    [format!("alpha batch {i}"), format!("beta batch {i}")],
                ),
            ],
        );
        assert!(service.ingest_table(table).ok);
    }
}

/// Bit-parity probe: the replica's discovery surface answers identically
/// to the writer's published snapshot.
fn assert_replica_parity(service: &CmdlService, replica: &Replica) {
    let ours = service.snapshot();
    let theirs = replica.snapshot();
    assert_eq!(
        ours.generation,
        theirs.generation,
        "replica {} generation parity",
        replica.name()
    );
    assert_eq!(ours.stats(), theirs.stats(), "stats parity");
    for query in ["alpha", "beta batch", "enzyme", "inhibitor"] {
        assert_eq!(
            ours.content_search(query, SearchMode::All, 10),
            theirs.content_search(query, SearchMode::All, 10),
            "content search parity for {query:?}"
        );
    }
}

// ---------------------------------------------------------------------
// The sweep
// ---------------------------------------------------------------------

#[test]
fn chaos_sweep_converges_to_bit_parity_with_no_torn_generations() {
    let rig = rig(2);
    // Arm a battery across both links. Occurrences are 0-based per-link
    // ship counts (retries included), one batch ships per mutation.
    rig.chaos[0].arm(2, LinkFault::Drop);
    rig.chaos[0].arm(5, LinkFault::Flip { offset: 33 });
    rig.chaos[0].arm(8, LinkFault::Fail);
    rig.chaos[1].arm(3, LinkFault::Delay { ticks: 2 });
    rig.chaos[1].arm(6, LinkFault::Duplicate);
    rig.chaos[1].arm(9, LinkFault::Drop);

    let mut floors = vec![0u64; rig.replicas.len()];
    for i in 0..24 {
        mutate(&rig.service, i);
        // Reads keep answering mid-chaos.
        let response = rig.service.handle(ServiceRequest::Query(
            QueryBuilder::keyword("alpha").build(),
        ));
        assert!(response.ok, "reads must never error under link chaos");
        // No torn generations: each replica's published snapshot moves
        // monotonically and never past the writer.
        let writer_generation = rig.service.snapshot().generation;
        for (r, replica) in rig.replicas.iter().enumerate() {
            let generation = replica.snapshot().generation;
            assert!(
                generation >= floors[r],
                "replica r{r} generation regressed: {} -> {generation}",
                floors[r]
            );
            assert!(
                generation <= writer_generation,
                "replica r{r} ran ahead of the writer"
            );
            floors[r] = generation;
        }
    }
    assert_eq!(
        rig.chaos[0].hits() + rig.chaos[1].hits(),
        6,
        "every armed fault fired"
    );
    // The stream self-heals (reorder buffer) or the writer resyncs from
    // checkpoint (drop/flip); a short clean tail flushes any residual lag.
    for i in 24..30 {
        mutate(&rig.service, i);
    }
    for replica in &rig.replicas {
        assert_replica_parity(&rig.service, replica);
    }
    assert!(
        rig.replicas.iter().any(|r| r.resyncs() > 0),
        "the drop/flip faults must have forced at least one resync"
    );
}

#[test]
fn killed_replica_decays_and_rejoins_via_resync() {
    let rig = rig(2);
    for i in 0..4 {
        mutate(&rig.service, i);
    }
    rig.kill(0);
    // Writes keep flowing; ships to the dead link fail and are retried
    // through the jittered backoff, then abandoned — that is just lag.
    for i in 4..10 {
        mutate(&rig.service, i);
    }
    // The dead replica's lag is visible and excludes it from routing.
    let status = rig.service.replica_status();
    assert!(
        status[0].lag > 2,
        "dead replica must trail past the lag bound, got {}",
        status[0].lag
    );
    assert_eq!(status[1].health, "healthy");
    // Silence decays the dead replica through Suspect to Down.
    std::thread::sleep(Duration::from_millis(150));
    let status = rig.service.replica_status();
    assert_eq!(
        status[0].health, "down",
        "silence past down_after must mark the replica Down"
    );
    // Reads still answer, at the writer's current generation.
    let response = rig.service.handle(ServiceRequest::Query(
        QueryBuilder::keyword("alpha").build(),
    ));
    assert!(response.ok);
    // Revive: gap/lag detection walks it through resync back to parity.
    rig.revive(0);
    for i in 10..16 {
        mutate(&rig.service, i);
    }
    assert!(
        rig.replicas[0].resyncs() >= 1,
        "the rejoin must go through resync, not silent catch-up"
    );
    for replica in &rig.replicas {
        assert_replica_parity(&rig.service, replica);
    }
    let status = rig.service.replica_status();
    assert!(status.iter().all(|s| s.health == "healthy" && s.lag == 0));
}

#[test]
fn reads_fall_back_to_writer_with_every_replica_down() {
    let rig = rig(2);
    for i in 0..3 {
        mutate(&rig.service, i);
    }
    rig.kill(0);
    rig.kill(1);
    // Push the survivors' stale snapshots past the lag bound so routing
    // cannot use them even while health detection still says Healthy.
    for i in 3..8 {
        mutate(&rig.service, i);
    }
    let writer_generation = rig.service.snapshot().generation;
    let response = rig.service.handle(ServiceRequest::Query(
        QueryBuilder::keyword("alpha").build(),
    ));
    assert!(
        response.ok,
        "total replica loss degrades reads, never errors"
    );
    match response.payload {
        Some(ResponsePayload::Query(inner)) => assert_eq!(
            inner.generation, writer_generation,
            "fallback reads serve the writer's snapshot, not a stale replica"
        ),
        other => panic!("wrong payload: {other:?}"),
    }
    // Health still reports ok (the writer is fine) with both replicas
    // visibly lagging.
    match rig.service.handle(ServiceRequest::Health).payload {
        Some(ResponsePayload::Health(h)) => {
            assert_eq!(h.status, "ok");
            assert_eq!(h.replicas.len(), 2);
            assert!(h.replicas.iter().all(|r| r.lag > 2));
        }
        other => panic!("wrong payload: {other:?}"),
    }
}
